"""Figure 5 — the generic splitting deformation of an r-component LAP.

The paper's Figure 5 shows a link with two components being split.  This
bench applies the deformation to synthetic fan tasks with a controlled
number of link components ``r`` and strip length ``m``, measuring the
deformation cost and checking Lemma 4.1's guarantees (LAP removed, copies
link-connected, no new LAPs).
"""

import pytest

from repro.splitting import local_articulation_points, split_lap
from repro.tasks.zoo import fan_task


@pytest.mark.parametrize("r", [2, 3, 4, 6])
def test_split_r_components(benchmark, r, report):
    task = fan_task(components=r, strip_length=2)
    (lap,) = [
        l for l in local_articulation_points(task) if l.vertex.value == "hub"
    ]
    assert lap.n_components == r

    step = benchmark(split_lap, task, lap)
    remaining_here = [
        l for l in local_articulation_points(step.after)
        if l.vertex in step.copies
    ]
    assert not remaining_here  # each copy's link is one (connected) strip
    report.row(
        r=r,
        strip=2,
        copies=len(step.copies),
        facets_before=len(task.output_complex.facets),
        facets_after=len(step.after.output_complex.facets),
        lemma_4_1="copy links connected",
    )


@pytest.mark.parametrize("m", [1, 2, 4, 8])
def test_split_scaling_with_link_length(benchmark, m, report):
    task = fan_task(components=2, strip_length=m)
    (lap,) = [
        l for l in local_articulation_points(task) if l.vertex.value == "hub"
    ]
    step = benchmark(split_lap, task, lap)
    assert len(step.copies) == 2
    report.row(
        r=2,
        strip=m,
        output_facets=len(task.output_complex.facets),
        facets_after=len(step.after.output_complex.facets),
    )
