"""Corpus throughput: serial vs sharded streaming census.

The streaming corpus (:mod:`repro.analysis.corpus`) exists to make
Section 7-scale populations cheap: isomorphism dedup decides one task per
renaming class and sharding spreads the classes over a pool.  This bench
measures what that buys — tasks/second for the same seed range run as a
single serial shard vs a sharded pooled run, with aggregate parity
asserted between every contender (scheduling must stay invisible).

Results land in ``benchmarks/BENCH_census.json`` (schema ``repro-perf/1``)
so the corpus throughput trajectory is diffable across PRs; each sharded
measurement carries a ``time_vs_serial`` counter the CI perf-smoke job can
gate on.  Smoke runs shrink the population and write to a scratch file:

    pytest benchmarks/bench_corpus.py -m perf --benchmark-smoke
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.analysis import run_census
from repro.analysis.corpus import CorpusConfig, run_corpus
from repro.perf import PerfHarness, validate_report
from repro.topology import cache_clear, diskstore

pytestmark = pytest.mark.perf

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_census.json")

_HARNESS = PerfHarness("census_corpus")


def _corpus_run(config, root, workers):
    # every repeat is a fresh corpus from cold caches: remove the previous
    # repeat's shards (resume would otherwise no-op the measurement) and
    # the verdict store warmed by it
    cache_clear()
    shutil.rmtree(root, ignore_errors=True)
    return run_corpus(config, root, workers=workers)


def test_corpus_serial_vs_sharded(report, smoke, tmp_path):
    population = 120 if smoke else 400
    serial_config = CorpusConfig(seed_start=0, seed_stop=population, shards=1)
    serial_name = f"corpus:{population}:serial"

    with diskstore.store_disabled():
        serial, m_serial = _HARNESS.measure(
            serial_name,
            _corpus_run,
            serial_config,
            str(tmp_path / "serial"),
            None,
            repeat=3,
            meta={"population": population, "shards": 1, "workers": 1},
        )
    dedup = serial.manifest["dedup"]
    m_serial.counters["tasks_per_second"] = round(population / m_serial.best, 2)
    m_serial.counters["dedup_rate"] = round(dedup["rate"], 4)

    # the corpus engine must agree with the in-memory census exactly
    with diskstore.store_disabled():
        assert serial.census.as_tuple() == run_census(range(population)).as_tuple()

    for shards, workers in ((4, 2), (4, 4)):
        contender = f"corpus:{population}:shards{shards}-w{workers}"
        config = CorpusConfig(seed_start=0, seed_stop=population, shards=shards)
        with diskstore.store_disabled():
            sharded, m_sharded = _HARNESS.measure(
                contender,
                _corpus_run,
                config,
                str(tmp_path / contender),
                workers,
                repeat=3,
                meta={"population": population, "shards": shards, "workers": workers},
            )
        assert sharded.census.as_tuple() == serial.census.as_tuple()

        m_sharded.counters["tasks_per_second"] = round(
            population / m_sharded.best, 2
        )
        m_sharded.counters["dedup_rate"] = round(
            sharded.manifest["dedup"]["rate"], 4
        )
        m_sharded.counters["time_vs_serial"] = round(
            m_sharded.best / m_serial.best, 4
        )
        report.row(
            workload=f"corpus:{population}",
            serial_s=round(m_serial.best, 4),
            sharded_s=round(m_sharded.best, 4),
            shards=shards,
            workers=workers,
            speedup=f"{_HARNESS.speedup(serial_name, contender):.2f}x",
            dedup_rate=f"{dedup['rate']:.1%}",
        )


def test_emit_json_report(report, smoke, tmp_path):
    """Write + validate ``BENCH_census.json`` (runs after the workloads)."""
    assert _HARNESS.measurements, "corpus benches must run before emission"
    env_path = os.environ.get("REPRO_BENCH_JSON")
    if env_path:
        path = env_path
    else:
        path = str(tmp_path / "BENCH_census.smoke.json") if smoke else JSON_PATH
    payload = _HARNESS.write(path)
    assert validate_report(payload) == []
    report.row(
        workload="emit",
        results=len(payload["results"]),
        json=os.path.basename(path),
        smoke=smoke,
    )
