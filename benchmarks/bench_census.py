"""Population census — the obstruction species over random tasks.

Not a paper figure per se, but the quantitative backdrop of the paper's
Section 7 discussion: among random chromatic tasks, how often does each
obstruction fire, and how deep do the solvability witnesses sit?
"""

from repro.analysis import run_census, sparse_census


def test_census_dense(benchmark, report):
    census = benchmark(run_census, range(20))
    assert census.unknown == 0 or census.unknown < census.population
    report.row(
        family="dense-random",
        population=census.population,
        solvable=census.solvable,
        unsolvable=census.unsolvable,
        unknown=census.unknown,
        certificates=dict(census.certificates),
    )


def test_census_sparse(benchmark, report):
    census = benchmark(sparse_census, range(15))
    report.row(
        family="sparse-random",
        population=census.population,
        solvable=census.solvable,
        unsolvable=census.unsolvable,
        unknown=census.unknown,
        certificates=dict(census.certificates),
    )
