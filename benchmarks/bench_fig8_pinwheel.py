"""Figure 8 — the pinwheel task.

Paper claims reproduced here:

* the pinwheel is a subtask of (inputless) 2-set agreement with all
  output edges intact; every output vertex is a LAP;
* splitting all nine LAPs leaves **three** connected components, none of
  which contains copies of all three solo-decision vertices ("neither of
  the copies of output vertex 3 is in the yellow component");
* the task is unsolvable; with the paper's (unpruned) Δ' the argument is
  Corollary 5.6's cycle argument — with the monotonized Δ' used here the
  obstruction is already visible at the edge level (see EXPERIMENTS.md).
"""

import pytest

from repro import decide_solvability, link_connected_form
from repro.solvability import Status, corollary_5_6
from repro.splitting import local_articulation_points
from repro.tasks.zoo import pinwheel_task


@pytest.fixture(scope="module")
def task():
    return pinwheel_task()


def test_lap_inventory(benchmark, task, report):
    laps = benchmark(local_articulation_points, task)
    assert len(laps) == 9
    report.row(
        stage="laps",
        laps=len(laps),
        components_each=sorted({l.n_components for l in laps}),
        paper_claim="splitting affects all three dimensions (Sect. 6.2)",
    )


def test_split_three_components(benchmark, task, report):
    res = benchmark(link_connected_form, task)
    comps = res.task.output_complex.connected_components()
    assert len(comps) == 3
    solo_coverage = []
    for comp in comps:
        diag = {
            res.project_vertex(v).color
            for v in comp
            if res.project_vertex(v).color == res.project_vertex(v).value
        }
        solo_coverage.append(len(diag))
    assert solo_coverage == [2, 2, 2]
    report.row(
        stage="split",
        n_splits=res.n_splits,
        components=len(comps),
        solo_vertices_per_component=solo_coverage,
        paper_claim="3 components, each missing one solo vertex (Fig 8)",
        match=True,
    )


def test_corollary_5_6_pre_split(benchmark, task, report):
    witness = benchmark(corollary_5_6, task)
    assert witness is not None
    report.row(
        stage="cor-5.6",
        fires=witness is not None,
        paper_claim="every cycle in Δ(Skel¹I) crosses a LAP",
    )


def test_decide_unsolvable(benchmark, task, report):
    verdict = benchmark(decide_solvability, task)
    assert verdict.status is Status.UNSOLVABLE
    report.row(
        stage="decide",
        verdict=verdict.status.value,
        obstruction=verdict.obstruction.kind,
        paper_claim="unsolvable (subtask of 2-set agreement)",
        match=True,
    )
