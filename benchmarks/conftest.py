"""Benchmark-suite plumbing.

Each benchmark file reproduces one figure/experiment of the paper (see
DESIGN.md's per-experiment index).  Besides timing via pytest-benchmark,
benches record the *structural* results the paper reports (component
counts, split counts, verdicts…) through the ``report`` fixture; a summary
table is printed at the end of the session so the run regenerates the
paper's rows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

import pytest

_ROWS: "OrderedDict[str, List[Dict]]" = OrderedDict()


class Reporter:
    """Collects experiment rows for the end-of-session summary."""

    def __init__(self, experiment: str):
        self.experiment = experiment

    def row(self, **fields) -> None:
        _ROWS.setdefault(self.experiment, []).append(fields)


@pytest.fixture
def report(request) -> Reporter:
    """Experiment reporter named after the bench module."""
    module = request.module.__name__
    name = module.replace("bench_", "").replace("benchmarks.", "")
    return Reporter(name)


def pytest_terminal_summary(terminalreporter):
    if not _ROWS:
        return
    tr = terminalreporter
    tr.section("paper-reproduction results")
    for experiment, rows in _ROWS.items():
        tr.write_line("")
        tr.write_line(f"[{experiment}]")
        if not rows:
            continue
        keys = list(rows[0].keys())
        for row in rows:
            for k in row:
                if k not in keys:
                    keys.append(k)
        widths = {
            k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows)) for k in keys
        }
        header = "  ".join(str(k).ljust(widths[k]) for k in keys)
        tr.write_line("  " + header)
        tr.write_line("  " + "-" * len(header))
        for row in rows:
            tr.write_line(
                "  " + "  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys)
            )
