"""Conformance experiment: schedule enumeration and campaign throughput.

Two workload families, each run both ways with result parity asserted:

* **explore** — exhaustive schedule enumeration of executable protocols
  (a deep synthetic protocol and a synthesized Figure 7 protocol) through
  the prefix-tree enumerator (``explore_schedules``, forks ``Execution``
  state incrementally) vs the old replay-from-scratch DFS kept as
  ``_explore_schedules_replay``;
* **campaign** — a zoo slice through :func:`repro.runtime.run_campaign`
  serially vs over a worker pool.

Results go through :class:`repro.perf.PerfHarness` into
``benchmarks/BENCH_conformance.json`` (schema ``repro-perf/1``).
``--benchmark-smoke`` shrinks every budget so tier 2 can exercise the
harness and validate the emitted schema in seconds:

    pytest benchmarks -m perf --benchmark-smoke
"""

from __future__ import annotations

import os

import pytest

from repro.perf import PerfHarness, validate_report
from repro.runtime.conformance import ConformanceConfig, run_campaign
from repro.runtime.scheduler import _explore_schedules_replay, explore_schedules
from repro.runtime.synthesis import synthesize_protocol
from repro.tasks.zoo import identity_task

pytestmark = pytest.mark.perf

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_conformance.json")

_HARNESS = PerfHarness("conformance")


def deep_factories(n: int, depth: int):
    """``n`` processes that scan ``depth`` times before deciding — a deep
    schedule tree where the replay DFS pays the full prefix at every node."""

    def make_factory(pid):
        def body():
            yield ("update", "S", pid)
            views = []
            for _ in range(depth):
                views.append((yield ("scan", "S")))
            yield ("decide", tuple(views[-1]))

        return body()

    return {pid: make_factory for pid in range(n)}


def _drain(enumerate_fn, n, factories, limit):
    traces = list(enumerate_fn(n, factories, max_executions=limit))
    return [(tuple(t.schedule), t.decisions) for t in traces]


def _bench_enumeration(report, label, n, factories, limit, meta):
    replay, m_replay = _HARNESS.measure(
        f"explore:{label}:replay",
        _drain,
        _explore_schedules_replay,
        n,
        factories,
        limit,
        meta=dict(meta, enumerator="replay"),
    )
    prefix, m_prefix = _HARNESS.measure(
        f"explore:{label}:prefix-tree",
        _drain,
        explore_schedules,
        n,
        factories,
        limit,
        meta=dict(meta, enumerator="prefix-tree"),
    )

    # the enumerators must agree trace for trace, in order
    assert prefix == replay
    m_prefix.counters["executions"] = float(len(prefix))
    m_replay.counters["executions"] = float(len(replay))

    ratio = _HARNESS.speedup(
        f"explore:{label}:replay", f"explore:{label}:prefix-tree"
    )
    report.row(
        workload=f"explore:{label}",
        executions=len(prefix),
        replay_s=round(m_replay.best, 4),
        prefix_tree_s=round(m_prefix.best, 4),
        speedup=f"{ratio:.2f}x",
    )
    return ratio


def test_explore_deep_synthetic(report, smoke):
    depth = 4 if smoke else 10
    limit = 60 if smoke else 600
    ratio = _bench_enumeration(
        report,
        f"deep-d{depth}",
        3,
        deep_factories(3, depth),
        limit,
        {"depth": depth, "limit": limit, "smoke": smoke},
    )
    if not smoke:
        # the headline claim: forking beats replaying shared prefixes
        assert ratio > 1.0


def test_explore_figure7_protocol(report, smoke):
    task = identity_task(3)
    protocol = synthesize_protocol(task, prefer_direct=False)
    sigma = task.input_complex.facets[0]
    limit = 20 if smoke else 200
    _bench_enumeration(
        report,
        "identity-fig7",
        3,
        protocol.factories(sigma),
        limit,
        {"mode": protocol.mode, "limit": limit, "smoke": smoke},
    )


def test_campaign_serial_vs_parallel(report, smoke):
    names = ["path", "figure3"] if smoke else [
        "identity", "constant", "path", "figure3", "3-set-agreement",
        "approx-agreement", "fork", "fan", "majority", "consensus",
    ]
    config = (
        ConformanceConfig(random_runs=2, exhaustive_limit=10, max_rounds=1)
        if smoke
        else ConformanceConfig()
    )
    workers = 2 if smoke else 4

    serial, m_serial = _HARNESS.measure(
        f"campaign:{len(names)}:serial",
        run_campaign,
        names,
        config,
        workers=1,
        meta={"tasks": len(names), "workers": 1, "smoke": smoke},
    )
    parallel, m_par = _HARNESS.measure(
        f"campaign:{len(names)}:parallel",
        run_campaign,
        names,
        config,
        workers=workers,
        meta={"tasks": len(names), "workers": workers, "smoke": smoke},
    )

    # scheduling must be invisible to the verdicts and run counts
    assert serial.ok and parallel.ok
    assert [t.as_dict() | {"seconds": None} for t in serial.tasks] == [
        t.as_dict() | {"seconds": None} for t in parallel.tasks
    ]
    m_serial.counters["runs"] = float(serial.total_runs)
    m_par.counters["runs"] = float(parallel.total_runs)

    ratio = _HARNESS.speedup(
        f"campaign:{len(names)}:serial", f"campaign:{len(names)}:parallel"
    )
    report.row(
        workload=f"campaign:{len(names)}",
        runs=serial.total_runs,
        serial_s=round(m_serial.best, 4),
        parallel_s=round(m_par.best, 4),
        workers=workers,
        speedup=f"{ratio:.2f}x",
    )


def test_emit_json_report(report, smoke, tmp_path):
    """Write + validate the JSON report (runs after the workloads).

    Smoke runs exercise the full emission path but write to a scratch file
    so they never clobber the committed full-size ``BENCH_conformance.json``.
    """
    assert _HARNESS.measurements, "workload benches must run before emission"
    path = str(tmp_path / "BENCH_conformance.smoke.json") if smoke else JSON_PATH
    payload = _HARNESS.write(path)
    assert validate_report(payload) == []
    report.row(
        workload="emit",
        results=len(payload["results"]),
        json=os.path.basename(path),
        smoke=smoke,
    )
