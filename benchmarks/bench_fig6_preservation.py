"""Figure 6 / Lemma 4.2 — splitting preserves solvability, both directions.

For the zoo's unsolvable chromatic tasks and a batch of random tasks, the
decision verdict is computed on the original and on the link-connected
transform; they must agree whenever both are decided.  The bench times the
paired decision.
"""

import pytest

from repro import decide_solvability, link_connected_form
from repro.tasks.zoo import (
    hourglass_task,
    majority_consensus_task,
    pinwheel_task,
    random_single_input_task,
)


@pytest.mark.parametrize(
    "name,make",
    [
        ("hourglass", hourglass_task),
        ("pinwheel", pinwheel_task),
        ("majority", majority_consensus_task),
    ],
)
def test_zoo_preservation(benchmark, name, make, report):
    task = make()

    def decide_both():
        res = link_connected_form(task)
        return (
            decide_solvability(task, max_rounds=1),
            decide_solvability(res.task, max_rounds=1),
        )

    before, after = benchmark(decide_both)
    assert before.solvable == after.solvable
    report.row(
        task=name,
        before=before.status.value,
        after=after.status.value,
        agree=before.solvable == after.solvable,
        lemma_4_2="preserved",
    )


def test_random_batch_preservation(benchmark, report):
    seeds = list(range(10))

    def run_batch():
        agreements = 0
        decided = 0
        for seed in seeds:
            task = random_single_input_task(seed)
            res = link_connected_form(task)
            v1 = decide_solvability(task, max_rounds=1)
            v2 = decide_solvability(res.task, max_rounds=1)
            if v1.solvable is not None and v2.solvable is not None:
                decided += 1
                agreements += v1.solvable == v2.solvable
        return decided, agreements

    decided, agreements = benchmark(run_batch)
    assert decided == agreements
    report.row(
        task=f"random x{len(seeds)}",
        decided_pairs=decided,
        agreements=agreements,
        lemma_4_2="preserved",
    )
