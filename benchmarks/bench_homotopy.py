"""The contractibility obstruction, measured (Section 7's discussion).

The paper's second obstruction species is loop contractibility —
undecidable in general, budgeted here.  This bench builds π₁ presentations
of the zoo's output complexes and runs the budgeted null-homotopy decision
on the canonical loops: the hourglass boundary walk (contractible — the
geometric content of its colorless-ACT compatibility), the annulus core
(refuted by infinite order) and the projective-plane loop (refuted by
2-torsion, needing integer homology).
"""

import pytest

from repro.tasks.zoo import (
    annulus_loop,
    hourglass_task,
    pinwheel_task,
    projective_plane_loop,
)
from repro.topology.homotopy import is_null_homotopic, pi1_presentation
from repro.topology.simplex import Vertex


def test_presentations(benchmark, report):
    hourglass = hourglass_task().output_complex
    pinwheel = pinwheel_task().output_complex

    def run():
        return pi1_presentation(hourglass), pi1_presentation(pinwheel)

    hg, pw = benchmark(run)
    report.row(complex="hourglass-O", generators=hg.rank, relators=len(hg.relators))
    report.row(complex="pinwheel-O", generators=pw.rank, relators=len(pw.relators))


def test_hourglass_boundary_walk(benchmark, report):
    o = hourglass_task().output_complex
    a0, a1 = Vertex(0, 0), Vertex(0, 1)
    b0, b1, b2 = Vertex(1, 0), Vertex(1, 1), Vertex(1, 2)
    c0, c1, c2 = Vertex(2, 0), Vertex(2, 1), Vertex(2, 2)
    walk = [a0, b1, a1, b0, c2, b2, c0, a1, c1, a0]
    verdict = benchmark(is_null_homotopic, o, walk)
    assert verdict is True
    report.row(
        loop="hourglass boundary walk",
        verdict="contractible",
        paper_claim="colorless-ACT condition holds (Sect. 6.1)",
    )


@pytest.mark.parametrize(
    "name,make",
    [("annulus core", annulus_loop), ("RP2 generator", projective_plane_loop)],
)
def test_non_contractible_loops(benchmark, name, make, report):
    loop = make()
    verdict = benchmark(is_null_homotopic, loop.complex, list(loop.full_cycle()))
    assert verdict is False
    report.row(
        loop=name,
        verdict="not contractible",
        refuted_by="integral homology"
        + (" (2-torsion)" if name.startswith("RP2") else ""),
    )
