"""Service experiment: the verdict server under duplicate-heavy load.

One real run of :func:`repro.service.bench.run_service_bench` — the same
entry point behind ``repro serve-bench`` — against an in-process
:class:`~repro.service.server.ServerThread`:

* a zipf-skewed seeded stream over the heavy half of the zoo, replayed
  twice; the **cold** pass measures end-to-end uncached decides over
  HTTP, the **steady** pass measures the memo-store regime the server
  actually runs in (hit rate, p50/p99, throughput);
* the headline ``speedup:cached_hit/uncached_decide`` derived ratio is
  p50-over-p50 of the two latency populations.

The emitted ``benchmarks/BENCH_service.json`` is ``repro-perf/1`` like
every other bench here, so ``repro obs ingest`` / ``obs diff`` track the
service's latency trajectory across PRs.  The committed report must
clear the acceptance floors asserted below: >= 10x workload duplication,
steady hit rate >= 0.9, and a cached hit at least 10x faster than an
uncached decide.

Smoke runs shrink the stream and write to a scratch file::

    pytest benchmarks/bench_service.py -m perf --benchmark-smoke
"""

from __future__ import annotations

import os

import pytest

from repro.perf import validate_report
from repro.service.bench import check_gates, format_summary, run_service_bench
from repro.service.server import ServerConfig

pytestmark = pytest.mark.perf

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_service.json")

#: (requests, concurrency, pool_size) per mode — full is the committed run
SIZES = {"full": (240, 4, 6), "smoke": (24, 2, 2)}

_STATE: dict = {}


def test_service_load(report, smoke):
    requests, concurrency, pool_size = SIZES["smoke" if smoke else "full"]
    bench = run_service_bench(
        requests=requests,
        concurrency=concurrency,
        pool_size=pool_size,
        seed=0,
        passes=2,
        # persistence off: the cold pass must measure real decides, not
        # hits against a verdict store warmed by an earlier local run
        server_config=ServerConfig(persist=False),
    )
    _STATE["bench"] = bench
    derived = bench["report"]["derived"]

    assert check_gates(bench, min_hit_rate=0.9) == []
    assert derived["workload_duplication"] >= 10.0
    if not smoke:
        # the smoke stream is too small for a stable ratio; the committed
        # full-size run must clear the 10x floor
        assert derived["speedup:cached_hit/uncached_decide"] >= 10.0

    report.row(
        workload=f"{requests} reqs / {bench['workload']['distinct']} specs",
        duplication=f"{derived['workload_duplication']:.1f}x",
        hit_rate=f"{derived['steady_hit_rate']:.3f}",
        p99_ms=f"{derived['steady_p99_ms']:.2f}",
        rps=f"{derived['steady_throughput_rps']:.0f}",
        speedup=f"{derived.get('speedup:cached_hit/uncached_decide', 0):.1f}x",
    )
    for line in format_summary(bench).splitlines():
        print(line)


def test_emit_json_report(report, smoke, tmp_path):
    """Write + validate the JSON report (runs after the load test).

    Smoke runs exercise the emission path into a scratch file so they
    never clobber the committed full-size ``BENCH_service.json``.
    """
    bench = _STATE.get("bench")
    assert bench is not None, "the load bench must run before emission"
    env_path = os.environ.get("REPRO_BENCH_JSON")
    if env_path:
        path = env_path
    else:
        path = str(tmp_path / "BENCH_service.smoke.json") if smoke else JSON_PATH
    payload = bench["harness"].write(path)
    assert validate_report(payload) == []
    report.row(
        workload="emit",
        results=len(payload["results"]),
        json=os.path.basename(path),
        smoke=smoke,
    )
