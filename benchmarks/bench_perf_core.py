"""Perf-core experiment: measure the fast-topology layer end to end.

Two workload families, each run both ways with verdict parity asserted:

* **decision** — zoo tasks through ``decide_solvability`` with the caching
  layer disabled (the honest baseline: no interning, no memoized complex
  queries) vs enabled-but-cold; the persistent disk store is off for both
  sides, so these rows isolate the in-memory layer;
* **census** — a seeded random population through the serial engine
  (cold, disk store off: the no-accelerator baseline) vs the
  ``repro.analysis.parallel`` engine at 2 and 4 workers running in the
  production configuration — a warm persistent tower/transform store
  (:mod:`repro.topology.diskstore`).  A ``serial-warm`` row records the
  warm single-process time too, so the parallel rows' gains decompose
  into store vs pool.  Each parallel row carries a ``time_vs_serial``
  counter (parallel best / serial best, < 1 is a win); ``repro obs
  ingest`` turns it into a gateable metric for the CI perf-smoke job.

Results go through :class:`repro.perf.PerfHarness` into
``benchmarks/BENCH_perf_core.json`` (schema ``repro-perf/1``) so the perf
trajectory is diffable across PRs.  ``--benchmark-smoke`` shrinks every
population so tier 2 can exercise the harness and validate the emitted
schema in seconds (set ``REPRO_BENCH_JSON`` to keep the smoke report):

    pytest benchmarks -m perf --benchmark-smoke
"""

from __future__ import annotations

import os

import pytest

from repro import decide_solvability
from repro.analysis import parallel_census, run_census
from repro.perf import PerfHarness, cache_counters, validate_report
from repro.tasks.zoo import (
    hourglass_task,
    majority_consensus_task,
    path_task,
    pinwheel_task,
    two_process_fork_task,
)
from repro.topology import cache_clear, caching_disabled, diskstore

pytestmark = pytest.mark.perf

JSON_PATH = os.path.join(os.path.dirname(__file__), "BENCH_perf_core.json")

#: (name, constructor, max_rounds) decision workloads per mode
DECISION_ZOO = {
    "full": [
        ("majority", majority_consensus_task, 1),
        ("hourglass", hourglass_task, 1),
        ("pinwheel", pinwheel_task, 1),
        ("path3", lambda: path_task(3), 2),
    ],
    "smoke": [
        ("path3", lambda: path_task(3), 2),
        ("fork-2p", two_process_fork_task, 1),
    ],
}

_HARNESS = PerfHarness("perf_core")


def _decide(make, max_rounds):
    return decide_solvability(make(), max_rounds=max_rounds)


def _census_run(seeds, workers=None):
    # each repeat starts from cold in-memory caches, so best-of-N times a
    # full pass rather than a memoized no-op (the disk store's state is
    # what the surrounding context fixes: off, or warm)
    cache_clear()
    if workers is None:
        return run_census(seeds)
    return parallel_census(seeds, workers=workers)


def test_decision_cached_vs_uncached(report, smoke):
    mode = "smoke" if smoke else "full"
    for name, make, max_rounds in DECISION_ZOO[mode]:
        cache_clear()
        with caching_disabled():
            baseline, m_off = _HARNESS.measure(
                f"decision:{name}:uncached",
                _decide,
                make,
                max_rounds,
                meta={"caching": False, "max_rounds": max_rounds, "mode": mode},
            )
        m_off.counters["search_nodes"] = baseline.stats.get("search_nodes", 0.0)

        cache_clear()
        with diskstore.store_disabled():
            verdict, m_on = _HARNESS.measure(
                f"decision:{name}:cached",
                _decide,
                make,
                max_rounds,
                meta={"caching": True, "max_rounds": max_rounds, "mode": mode},
            )
        m_on.counters["search_nodes"] = verdict.stats.get("search_nodes", 0.0)
        m_on.counters.update(cache_counters())

        # the caching layer must be invisible to the mathematics
        assert verdict.status is baseline.status
        assert verdict.witness_rounds == baseline.witness_rounds
        assert (verdict.obstruction is None) == (baseline.obstruction is None)

        ratio = _HARNESS.speedup(
            f"decision:{name}:uncached", f"decision:{name}:cached"
        )
        report.row(
            workload=f"decision:{name}",
            uncached_s=round(m_off.best, 4),
            cached_s=round(m_on.best, 4),
            speedup=f"{ratio:.2f}x",
            verdict=verdict.status.value,
        )


def test_census_serial_vs_parallel(report, smoke, tmp_path):
    # the smoke population stays large enough for the engine ratio to be
    # meaningful — pool startup swamps tiny populations, and the CI
    # perf-smoke job gates on the time_vs_serial counters recorded here
    population = 100 if smoke else 200
    seeds = range(population)
    serial_name = f"census:{population}:serial"

    # baseline: one process, cold in-memory caches, no persistent store —
    # what a census cost before any accelerator existed
    with diskstore.store_disabled():
        serial, m_serial = _HARNESS.measure(
            serial_name,
            _census_run,
            seeds,
            repeat=3,
            meta={"population": population, "workers": 1, "store": "off"},
        )

    with diskstore.store_at(str(tmp_path / "towers")):
        # warm the persistent tower/transform/verdict store once (not
        # measured); afterwards every contender runs in the production
        # configuration
        cache_clear()
        run_census(seeds)

        warm, m_warm = _HARNESS.measure(
            f"census:{population}:serial-warm",
            _census_run,
            seeds,
            repeat=3,
            meta={"population": population, "workers": 1, "store": "warm"},
        )
        assert warm.as_tuple() == serial.as_tuple()

        for workers in (2, 4):
            contender = f"census:{population}:parallel-w{workers}"
            parallel, m_par = _HARNESS.measure(
                contender,
                _census_run,
                seeds,
                workers=workers,
                repeat=3,
                meta={
                    "population": population,
                    "workers": workers,
                    "chunksize": "adaptive",
                    "store": "warm",
                },
            )

            # scheduling must be invisible: identical aggregates,
            # any worker count
            assert parallel.as_tuple() == serial.as_tuple()

            ratio = _HARNESS.speedup(serial_name, contender)
            # gateable ratio (< 1 means the parallel engine wins); the CI
            # perf-smoke job fails when this counter grows past tolerance
            m_par.counters["time_vs_serial"] = round(m_par.best / m_serial.best, 4)
            report.row(
                workload=f"census:{population}",
                serial_s=round(m_serial.best, 4),
                parallel_s=round(m_par.best, 4),
                workers=workers,
                speedup=f"{ratio:.2f}x",
                solvable=serial.solvable,
                unsolvable=serial.unsolvable,
            )

    report.row(
        workload=f"census:{population}",
        serial_s=round(m_serial.best, 4),
        parallel_s=round(m_warm.best, 4),
        workers="1 (warm)",
        speedup=f"{_HARNESS.speedup(serial_name, m_warm.name):.2f}x",
        solvable=serial.solvable,
        unsolvable=serial.unsolvable,
    )


def test_emit_json_report(report, smoke, tmp_path):
    """Write + validate the JSON report (runs after the workloads).

    Smoke runs exercise the full emission path but write to a scratch file
    so they never clobber the committed full-size ``BENCH_perf_core.json``.
    """
    assert _HARNESS.measurements, "workload benches must run before emission"
    env_path = os.environ.get("REPRO_BENCH_JSON")
    if env_path:
        path = env_path
    else:
        path = str(tmp_path / "BENCH_perf_core.smoke.json") if smoke else JSON_PATH
    payload = _HARNESS.write(path)
    assert validate_report(payload) == []
    report.row(
        workload="emit",
        results=len(payload["results"]),
        json=os.path.basename(path),
        smoke=smoke,
    )
