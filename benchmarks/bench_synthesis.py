"""Section 5.2 — protocol synthesis and execution.

For the solvable zoo, synthesize an executable wait-free protocol (both
the direct ACT mode and the Figure 7 mode) and validate it on the
shared-memory substrate; report modes, subdivision depths and execution
step statistics.
"""

import pytest

from repro.runtime import synthesize_protocol, validate_protocol
from repro.tasks.zoo import (
    constant_task,
    identity_task,
    loop_agreement_task,
    path_task,
    set_agreement_task,
    triangle_loop,
)

SOLVABLE = [
    ("identity", lambda: identity_task(3)),
    ("constant", lambda: constant_task(3)),
    ("3-set", lambda: set_agreement_task(3, 3)),
    ("loop-filled", lambda: loop_agreement_task(triangle_loop(True))),
    ("path", lambda: path_task(3)),
]


@pytest.mark.parametrize("name,make", SOLVABLE, ids=[s[0] for s in SOLVABLE])
def test_synthesize_direct(benchmark, name, make, report):
    task = make()
    protocol = benchmark(synthesize_protocol, task)
    rep = validate_protocol(task, protocol.factories, participation="facets",
                            random_runs=2)
    assert rep.ok
    report.row(
        task=name,
        mode=protocol.mode,
        rounds=protocol.rounds,
        runs=rep.runs,
        ok=rep.ok,
        mean_steps=round(rep.mean_steps, 1),
    )


@pytest.mark.parametrize(
    "name,make",
    [(n, m) for n, m in SOLVABLE if n != "path"],
    ids=[s[0] for s in SOLVABLE if s[0] != "path"],
)
def test_execute_figure7(benchmark, name, make, report):
    task = make()
    protocol = synthesize_protocol(task, prefer_direct=False)
    assert protocol.mode == "figure-7"

    def campaign():
        return validate_protocol(
            task, protocol.factories, participation="facets", random_runs=3
        )

    rep = benchmark(campaign)
    assert rep.ok
    report.row(
        task=name,
        mode=protocol.mode,
        rounds=protocol.rounds,
        runs=rep.runs,
        ok=rep.ok,
        max_steps=rep.max_steps,
    )
