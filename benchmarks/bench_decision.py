"""Section 5 — the decision procedure across the task zoo, with ablations.

Reports the verdict, the certifying obstruction / witness depth, and the
cost for every task the paper discusses, plus the DESIGN.md ablations:

* subdivision engine (chromatic vs barycentric) on a solvable task;
* obstructions-first vs pure-search on an unsolvable task.
"""

import pytest

from repro import decide_solvability
from repro.solvability import Status
from repro.tasks.zoo import (
    consensus_task,
    constant_task,
    hourglass_task,
    identity_task,
    inputless_set_agreement_task,
    loop_agreement_task,
    majority_consensus_task,
    pinwheel_task,
    set_agreement_task,
    triangle_loop,
)

ZOO = [
    ("identity", lambda: identity_task(3), True),
    ("constant", lambda: constant_task(3), True),
    ("3-set", lambda: set_agreement_task(3, 3), True),
    ("loop-filled", lambda: loop_agreement_task(triangle_loop(True)), True),
    ("consensus", lambda: consensus_task(3), False),
    ("2-set", lambda: inputless_set_agreement_task(3, 2), False),
    ("loop-hollow", lambda: loop_agreement_task(triangle_loop(False)), False),
    ("majority", majority_consensus_task, False),
    ("hourglass", hourglass_task, False),
    ("pinwheel", pinwheel_task, False),
]


@pytest.mark.parametrize("name,make,expected", ZOO, ids=[z[0] for z in ZOO])
def test_decide_zoo(benchmark, name, make, expected, report):
    task = make()
    verdict = benchmark(decide_solvability, task, max_rounds=1)
    assert verdict.solvable is expected
    report.row(
        task=name,
        verdict=verdict.status.value,
        certificate=(
            verdict.obstruction.kind
            if verdict.obstruction
            else f"map@r={verdict.witness_rounds}"
        ),
        splits=verdict.stats.get("n_splits", 0),
        expected="unsolvable" if not expected else "solvable",
        match=True,
    )


@pytest.mark.parametrize("k", [1, 2])
def test_approximate_agreement_depth(benchmark, k, report):
    """Witness depth grows with the resolution 1/k (iterative deepening)."""
    from repro.tasks.zoo import approximate_agreement_task

    task = approximate_agreement_task(k)
    verdict = benchmark(decide_solvability, task, max_rounds=2)
    assert verdict.solvable is True
    report.row(
        task=f"approx(1/{k})",
        verdict=verdict.status.value,
        certificate=f"map@r={verdict.witness_rounds}",
        splits=verdict.stats.get("n_splits", 0),
        expected="solvable",
        match=True,
    )


@pytest.mark.parametrize("engine", ["chromatic", "barycentric"])
def test_ablation_engine(benchmark, engine, report):
    from repro.tasks.zoo import path_task

    task = path_task(3)
    verdict = benchmark(
        decide_solvability, task, max_rounds=2, engine=engine
    )
    assert verdict.solvable is True
    report.row(
        ablation="engine",
        engine=engine,
        witness_depth=verdict.witness_rounds,
        nodes=int(verdict.stats.get("search_nodes", 0)),
    )


@pytest.mark.parametrize("obstructions", [True, False])
def test_ablation_obstructions_first(benchmark, obstructions, report):
    task = hourglass_task()
    verdict = benchmark(
        decide_solvability, task, max_rounds=1, run_obstructions=obstructions
    )
    if obstructions:
        assert verdict.status is Status.UNSOLVABLE
    else:
        assert verdict.status is Status.UNKNOWN  # search alone can't refute
    report.row(
        ablation="obstructions-first",
        enabled=obstructions,
        verdict=verdict.status.value,
        nodes=int(verdict.stats.get("search_nodes", 0)),
    )
