"""The paper's punchline, measured: after splitting, chromatic = colorless.

Theorem 5.1 says a (transformed, link-connected) task is solvable iff its
*colorless* condition holds — a color-agnostic map suffices, with Figure 7
restoring colors at run time.  The classical ACT instead needs a
*color-preserving* map.  This bench finds, for each solvable zoo task, the
minimal subdivision depth of both witness kinds: the agnostic witness is
never deeper than the chromatic one, and Figure 7 closes the gap without
any extra subdivision rounds.
"""

import pytest

from repro.solvability.map_search import SearchBudgetExceeded, find_map
from repro.tasks.zoo import (
    approximate_agreement_task,
    constant_task,
    identity_task,
    loop_agreement_task,
    set_agreement_task,
    triangle_loop,
)
from repro.topology.subdivision import iterated_chromatic_subdivision

SOLVABLE = [
    ("identity", lambda: identity_task(3)),
    ("constant", lambda: constant_task(3)),
    ("3-set", lambda: set_agreement_task(3, 3)),
    ("loop-filled", lambda: loop_agreement_task(triangle_loop(True))),
    ("approx(1/2)", lambda: approximate_agreement_task(2)),
]


def minimal_depth(task, chromatic: bool, max_rounds: int = 2):
    for r in range(max_rounds + 1):
        sub = iterated_chromatic_subdivision(task.input_complex, r)
        try:
            if find_map(sub, task.delta, chromatic=chromatic) is not None:
                return r
        except SearchBudgetExceeded:
            return None
    return None


@pytest.mark.parametrize("name,make", SOLVABLE, ids=[s[0] for s in SOLVABLE])
def test_witness_depths(benchmark, name, make, report):
    task = make()

    def run():
        return minimal_depth(task, False), minimal_depth(task, True)

    agnostic_r, chromatic_r = benchmark(run)
    assert agnostic_r is not None
    assert chromatic_r is None or agnostic_r <= chromatic_r
    report.row(
        task=name,
        agnostic_depth=agnostic_r,
        chromatic_depth=chromatic_r,
        gap=(chromatic_r - agnostic_r) if chromatic_r is not None else "n/a",
    )
