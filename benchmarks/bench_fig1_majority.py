"""Figure 1 — the majority consensus task.

Paper claims reproduced here:

* majority consensus satisfies the colorless-ACT condition (its colorless
  relaxation has a continuous map) yet is wait-free **unsolvable**;
* the task is not canonical; after canonicalization the LAP pipeline fires
  and Corollary 5.5 certifies the impossibility.
"""

import pytest

from repro import decide_solvability, link_connected_form
from repro.solvability import Status
from repro.tasks.canonical import canonicalize, is_canonical
from repro.tasks.zoo import majority_consensus_task


@pytest.fixture(scope="module")
def task():
    return majority_consensus_task()


def test_build_task(benchmark, task, report):
    built = benchmark(majority_consensus_task)
    assert len(built.output_complex.facets) == 5
    report.row(
        stage="build",
        input_facets=len(built.input_complex.facets),
        output_facets=len(built.output_complex.facets),
        canonical=is_canonical(built),
    )


def test_canonicalize(benchmark, task, report):
    cf = benchmark(canonicalize, task)
    assert is_canonical(cf.task)
    report.row(
        stage="canonicalize",
        output_facets=len(cf.task.output_complex.facets),
        output_vertices=len(cf.task.output_complex.vertices),
    )


def test_split_pipeline(benchmark, task, report):
    res = benchmark(link_connected_form, task)
    report.row(
        stage="split",
        n_splits=res.n_splits,
        o_prime_facets=len(res.task.output_complex.facets),
        o_prime_components=len(res.task.output_complex.connected_components()),
    )


def test_decide_unsolvable(benchmark, task, report):
    verdict = benchmark(decide_solvability, task)
    assert verdict.status is Status.UNSOLVABLE
    report.row(
        stage="decide",
        verdict=verdict.status.value,
        obstruction=verdict.obstruction.kind,
        paper_claim="unsolvable (Sect. 5.3)",
        match=verdict.status is Status.UNSOLVABLE,
    )
