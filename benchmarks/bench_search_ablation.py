"""Ablation of the map-search design choices (DESIGN.md §5).

The decision procedure's workhorse is the backtracking search for a
simplicial map carried by Δ.  Two design choices keep it fast:

* support-based domain pruning to fixpoint before the search;
* adjacency-driven variable ordering.

This bench measures search nodes and wall time with each knob toggled, on
a solvable instance (identity at Ch¹) and on an unsolvable one (colorless
consensus at Ch¹, where the whole search must be exhausted).
"""

import pytest

from repro.solvability.map_search import (
    SearchBudgetExceeded,
    SearchStats,
    prepare_problem,
    search_map,
)
from repro.tasks.zoo import consensus_task, identity_task
from repro.topology.subdivision import iterated_chromatic_subdivision

CONFIGS = [
    ("full", True, True),
    ("no-prune", False, True),
    ("no-adjacency", True, False),
    ("naive", False, False),
]


@pytest.mark.parametrize("name,prune,adjacency", CONFIGS, ids=[c[0] for c in CONFIGS])
def test_solvable_instance(benchmark, name, prune, adjacency, report):
    task = identity_task(3)
    sub = iterated_chromatic_subdivision(task.input_complex, 1)

    def run():
        stats = SearchStats()
        problem = prepare_problem(
            sub, task.delta, chromatic=False, prune=prune, adjacency_order=adjacency
        )
        found = search_map(problem, stats=stats, max_nodes=500_000)
        return found, stats

    found, stats = benchmark(run)
    assert found is not None
    report.row(
        instance="identity@Ch1 (solvable)",
        config=name,
        nodes=stats.nodes,
        backtracks=stats.backtracks,
    )


@pytest.mark.parametrize(
    "name,prune,adjacency",
    CONFIGS[:2],  # the no-ordering variants are too slow to exhaust here
    ids=[c[0] for c in CONFIGS[:2]],
)
def test_unsolvable_instance(benchmark, name, prune, adjacency, report):
    task = consensus_task(3)
    sub = iterated_chromatic_subdivision(task.input_complex, 1)

    def run():
        stats = SearchStats()
        problem = prepare_problem(
            sub, task.delta, chromatic=False, prune=prune, adjacency_order=adjacency
        )
        try:
            found = search_map(problem, stats=stats, max_nodes=3_000_000)
        except SearchBudgetExceeded:
            found = "budget"
        return found, stats

    found, stats = benchmark(run)
    assert found is None or found == "budget"
    report.row(
        instance="consensus@Ch1 (unsolvable)",
        config=name,
        nodes=stats.nodes,
        backtracks=stats.backtracks,
        exhausted=found is None,
    )
