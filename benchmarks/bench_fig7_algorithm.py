"""Figure 7 — the chromatic agreement algorithm.

Lemma 5.3 claims each process returns "in time at most proportional to the
length of the longest link in the output complex".  This bench runs the
algorithm (with an adversarial color-agnostic front end) on fan tasks of
growing link length and reports the measured per-process step counts next
to the predictor, plus throughput over random schedules on the identity
task.
"""

import pytest

from repro.runtime.chromatic_agreement import (
    first_completion,
    make_chromatic_agreement_factories,
    spread_completion,
)
from repro.runtime.scheduler import run_random
from repro.runtime.simulation import check_trace
from repro.tasks.zoo import fan_task, identity_task
from repro.topology.links import longest_link_size
from repro.topology.simplex import Simplex


def snapshot_first_agnostic(task):
    def agnostic(pid, x_vertex):
        yield ("update", "_AG", x_vertex)
        state = yield ("scan", "_AG")
        tau = Simplex(x for x in state if x is not None)
        return task.delta(tau).vertices[0]

    return agnostic


def _run_campaign(task, seeds, picker=first_completion):
    sigma = task.input_complex.facets[0]
    factories = make_chromatic_agreement_factories(
        task, sigma, snapshot_first_agnostic(task), picker=picker
    )
    max_steps = 0
    for seed in seeds:
        trace = run_random(task.n_processes, factories, seed=seed)
        assert check_trace(task, sigma, trace) is None
        max_steps = max(max_steps, max(trace.steps.values()))
    return max_steps


def test_identity_throughput(benchmark, report):
    task = identity_task(3)
    max_steps = benchmark(_run_campaign, task, range(20))
    report.row(
        task="identity",
        picker="nearest",
        longest_link=longest_link_size(task.output_complex),
        max_steps_per_process=max_steps,
        runs=20,
    )


@pytest.mark.parametrize("m", [1, 3, 6, 10])
def test_steps_track_link_length(benchmark, m, report):
    """Longer links -> longer negotiations, linearly (Lemma 5.3).

    The adversarial `spread` picker starts the two non-pivots at opposite
    ends of the hub's link, so the step-(14) negotiation has to walk the
    whole path; the nearest picker is reported for contrast.
    """
    from repro.splitting import link_connected_form

    # Figure 7 requires a link-connected task: use the split fan, whose hub
    # copies each carry one strip of the link
    task = link_connected_form(fan_task(components=2, strip_length=m)).task
    link_len = longest_link_size(task.output_complex)
    near = _run_campaign(task, range(30), picker=first_completion)
    far = benchmark(_run_campaign, task, range(30), spread_completion)
    assert far <= 20 + 4 * link_len
    report.row(
        task=f"split-fan(m={m})",
        longest_link=link_len,
        steps_nearest=near,
        steps_spread=far,
        bound="20 + 4*link",
        within_bound=True,
    )
