"""Tracing-overhead experiment: what does ``repro.obs`` cost?

Two questions, answered with numbers in the session summary table:

* **disabled** — the instrumented hot paths pay one attribute load +
  branch per call site while tracing is off (the default).  Measured two
  ways: a micro-bench of the disabled ``span()`` / ``counter_add()``
  call sites themselves, and full ``decide_solvability`` runs (same
  workloads as ``bench_perf_core.py``) whose wall clock is dominated by
  the mathematics — the instrumentation must stay within noise (< 5 %).
* **enabled** — full tracing (span tree + counters + cache deltas) on
  the same decisions, reported as a ratio against the untraced run, with
  the exported ``repro-trace/1`` payload schema-validated.

Run with the tier-2 suite::

    pytest benchmarks/bench_obs.py -m perf --benchmark-smoke
"""

from __future__ import annotations

import pytest

from repro import decide_solvability
from repro.obs import (
    build_trace,
    counter_add,
    reset_recorder,
    set_tracing,
    span,
    tracing,
    validate_trace,
)
from repro.perf import PerfHarness, validate_report
from repro.tasks.zoo import hourglass_task, path_task, pinwheel_task
from repro.topology import cache_clear

pytestmark = pytest.mark.perf

#: (name, constructor, max_rounds) — a cheap and a splitting-heavy decision
WORKLOADS = {
    "full": [
        ("hourglass", hourglass_task, 1),
        ("pinwheel", pinwheel_task, 1),
    ],
    "smoke": [
        ("path3", lambda: path_task(3), 2),
    ],
}

_HARNESS = PerfHarness("obs_overhead")


def _decide(make, max_rounds):
    return decide_solvability(make(), max_rounds=max_rounds)


def _spin_callsites(n: int) -> int:
    """The disabled hot-path pattern, n times: one span + one counter."""
    for _ in range(n):
        with span("bench.noop", idx=0):
            counter_add("bench.noop")
    return n


def test_disabled_callsite_microbench(report, smoke):
    set_tracing(False)
    n = 10_000 if smoke else 200_000
    _, m = _HARNESS.measure(
        "callsites:disabled", _spin_callsites, n, repeat=3, meta={"n": n}
    )
    ns_per_site = m.best / n * 1e9
    m.counters["ns_per_callsite"] = ns_per_site
    report.row(workload="callsites:disabled", n=n, ns_per_site=round(ns_per_site, 1))


def test_decision_overhead_disabled_vs_enabled(report, smoke):
    mode = "smoke" if smoke else "full"
    repeat = 2 if smoke else 3
    for name, make, max_rounds in WORKLOADS[mode]:
        set_tracing(False)
        cache_clear()
        untraced, m_off = _HARNESS.measure(
            f"decide:{name}:untraced",
            _decide,
            make,
            max_rounds,
            repeat=repeat,
            meta={"tracing": False, "mode": mode},
        )

        reset_recorder()
        cache_clear()
        with tracing():
            traced, m_on = _HARNESS.measure(
                f"decide:{name}:traced",
                _decide,
                make,
                max_rounds,
                repeat=repeat,
                meta={"tracing": True, "mode": mode},
            )
            payload = build_trace(meta={"command": f"bench decide {name}"})
        assert validate_trace(payload) == []
        assert traced.status is untraced.status

        overhead = m_on.best / m_off.best - 1.0
        m_on.counters["overhead_fraction"] = overhead
        m_on.counters["spans"] = float(
            sum(1 for root in payload["spans"] for _ in _walk(root))
        )
        report.row(
            workload=f"decide:{name}",
            untraced_s=round(m_off.best, 4),
            traced_s=round(m_on.best, 4),
            overhead=f"{overhead * 100:+.1f}%",
            verdict=traced.status.value,
        )


def _walk(span_dict):
    yield span_dict
    for child in span_dict["children"]:
        yield from _walk(child)


def _spin_histogram(hist, n: int) -> int:
    """The /metrics hot path, n times: one bounded-bucket record."""
    for i in range(n):
        hist.record(0.0001 * (1 + (i & 7)))
    return n


def _spin_registry(registry, n: int) -> int:
    """The server's per-request pattern: labelled lookup + record."""
    for _ in range(n):
        registry.histogram("request_latency_seconds", op="decide").record(0.001)
    return n


def test_live_metrics_hot_path(report, smoke):
    """Per-request cost of /metrics being on: a locked dict increment.

    Two shapes: a bare histogram record (the soak load workers' path)
    and the server's full labelled-registry lookup + record.  Both must
    stay in the sub-microsecond regime that makes instrumenting every
    HTTP request a non-decision.
    """
    from repro.obs import LatencyHistogram, MetricsRegistry

    n = 10_000 if smoke else 200_000
    hist = LatencyHistogram()
    _, m_hist = _HARNESS.measure(
        "metrics:histogram_record", _spin_histogram, hist, n, repeat=3,
        meta={"n": n},
    )
    registry = MetricsRegistry()
    _, m_reg = _HARNESS.measure(
        "metrics:registry_record", _spin_registry, registry, n, repeat=3,
        meta={"n": n},
    )
    assert hist.count >= n  # the work really happened
    for m, label in ((m_hist, "histogram_record"), (m_reg, "registry_record")):
        ns_per_record = m.best / n * 1e9
        m.counters["ns_per_record"] = ns_per_record
        report.row(
            workload=f"metrics:{label}", n=n, ns_per_record=round(ns_per_record, 1)
        )


def test_emit_report(report, smoke, tmp_path):
    assert _HARNESS.measurements, "workload benches must run before emission"
    payload = _HARNESS.write(str(tmp_path / "BENCH_obs.json"))
    assert validate_report(payload) == []
    report.row(workload="emit", results=len(payload["results"]), smoke=smoke)
