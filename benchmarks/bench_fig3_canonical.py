"""Figures 3 and 4 — the running-example task and its canonical form.

Paper claims reproduced here:

* the Figure 3 task is *not* canonical (a green facet shared by two input
  facets; its black vertex has two Δ-preimages);
* the product construction of Figure 4 yields a canonical task whose
  shared facet is duplicated, one copy per input facet, and whose output
  vertices carry (input, output) pairs.
"""

import pytest

from repro.tasks.canonical import (
    canonicalize,
    is_canonical,
    split_product_vertex,
    vertex_preimages,
)
from repro.tasks.zoo import figure3_task


@pytest.fixture(scope="module")
def task():
    return figure3_task()


def test_is_canonical_check(benchmark, task, report):
    result = benchmark(is_canonical, task)
    assert result is False
    shared = [
        w for w in task.output_complex.vertices
        if len(vertex_preimages(task, w)) > 1
    ]
    report.row(
        stage="check",
        canonical=result,
        shared_vertices=len(shared),
        paper_claim="green facet in Δ(σ) ∩ Δ(σ') (Fig 3)",
    )


def test_canonicalize(benchmark, task, report):
    cf = benchmark(canonicalize, task)
    assert is_canonical(cf.task)
    green_copies = [
        f
        for f in cf.task.output_complex.facets
        if {split_product_vertex(w)[1].value for w in f.vertices}
        == {"g0", "g1", "g2"}
    ]
    report.row(
        stage="canonicalize",
        o_star_facets=len(cf.task.output_complex.facets),
        green_copies=len(green_copies),
        canonical=True,
        paper_claim="green facet duplicated per input facet (Fig 4)",
        match=len(green_copies) == 2,
    )


def test_projection_roundtrip(benchmark, task, report):
    cf = canonicalize(task)

    def roundtrip():
        return [cf.project_vertex(w) for w in cf.task.output_complex.vertices]

    images = benchmark(roundtrip)
    assert set(images) <= set(task.output_complex.vertices)
    report.row(stage="projection", vertices=len(images), all_valid=True)
