"""Section 2.4 — protocol complexes as chromatic subdivisions.

Measures the growth of ``Ch^r`` and ``Bary^r`` (the paper's ``13^r``
triangles per input facet) and verifies that the shared-memory
full-information protocol's reachable views really live in ``Ch^r``.
"""

import pytest

from repro.runtime.full_information import make_full_information_factories
from repro.runtime.scheduler import run_random
from repro.tasks.zoo import single_facet_input
from repro.topology.simplex import Simplex, chrom
from repro.topology.subdivision import (
    iterated_barycentric_subdivision,
    iterated_chromatic_subdivision,
)


@pytest.mark.parametrize("r", [1, 2, 3])
def test_chromatic_growth(benchmark, r, report):
    base = single_facet_input(3)
    sub = benchmark(iterated_chromatic_subdivision, base, r)
    assert len(sub.complex.facets) == 13 ** r
    report.row(
        engine="Ch",
        r=r,
        facets=len(sub.complex.facets),
        vertices=len(sub.complex.vertices),
        expected=13 ** r,
    )


@pytest.mark.parametrize("r", [1, 2, 3])
def test_barycentric_growth(benchmark, r, report):
    base = single_facet_input(3)
    sub = benchmark(iterated_barycentric_subdivision, base, r)
    assert len(sub.complex.facets) == 6 ** r
    report.row(
        engine="Bary",
        r=r,
        facets=len(sub.complex.facets),
        vertices=len(sub.complex.vertices),
        expected=6 ** r,
    )


@pytest.mark.parametrize("r", [1, 2])
def test_fi_protocol_realizes_subdivision(benchmark, r, report):
    inputs = chrom((0, "x"), (1, "y"), (2, "z"))
    from repro.topology.chromatic import ChromaticComplex

    sub = iterated_chromatic_subdivision(ChromaticComplex([inputs]), r)
    factories, n = make_full_information_factories(inputs, rounds=r)

    def campaign():
        reached = set()
        for seed in range(60):
            trace = run_random(n, factories, seed=seed)
            facet = Simplex(trace.decisions.values())
            assert facet in sub.complex
            reached.add(facet)
        return reached

    reached = benchmark(campaign)
    report.row(
        engine="FI-protocol",
        r=r,
        reachable_facets_sampled=len(reached),
        subdivision_facets=len(sub.complex.facets),
        all_in_subdivision=True,
    )
