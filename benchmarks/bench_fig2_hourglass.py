"""Figure 2 — the hourglass task.

Paper claims reproduced here:

* a single LAP (P0's value-1 vertex, the "waist") whose link has two
  connected components, one containing P1's value-1 vertex;
* splitting it once yields a two-component output complex;
* the colorless continuous-map condition holds pre-split (map found on a
  barycentric subdivision) yet the task is unsolvable — post-split the
  impossibility is a consensus-style Corollary 5.5 argument.
"""

import pytest

from repro import decide_solvability, link_connected_form
from repro.solvability import Status
from repro.solvability.map_search import find_map
from repro.splitting import local_articulation_points
from repro.tasks.zoo import hourglass_articulation_vertex, hourglass_task
from repro.topology.simplex import Vertex
from repro.topology.subdivision import iterated_barycentric_subdivision


@pytest.fixture(scope="module")
def task():
    return hourglass_task()


def test_lap_detection(benchmark, task, report):
    laps = benchmark(local_articulation_points, task)
    assert len(laps) == 1
    (lap,) = laps
    assert lap.vertex == hourglass_articulation_vertex()
    b1_side = next(c for c in lap.components if Vertex(1, 1) in c)
    report.row(
        stage="laps",
        laps=len(laps),
        waist=str(lap.vertex),
        components=lap.n_components,
        b1_component_size=len(b1_side),
        paper_claim="waist link has 2 components (Fig 2 right)",
    )


def test_split(benchmark, task, report):
    res = benchmark(link_connected_form, task)
    comps = res.task.output_complex.connected_components()
    assert res.n_splits == 1
    assert len(comps) == 2
    report.row(
        stage="split",
        n_splits=res.n_splits,
        components=len(comps),
        component_sizes=sorted(len(c) for c in comps),
        paper_claim="splitting disconnects O (Fig 2 center-right)",
    )


def test_colorless_map_exists(benchmark, task, report):
    sub = iterated_barycentric_subdivision(task.input_complex, 2)

    def run():
        return find_map(sub, task.delta, chromatic=False)

    witness = benchmark(run)
    assert witness is not None
    report.row(
        stage="colorless-map",
        subdivision="Bary^2",
        domain_facets=len(sub.complex.facets),
        found=witness is not None,
        paper_claim="continuous map exists despite unsolvability (Sect. 1.1)",
    )


def test_decide_unsolvable(benchmark, task, report):
    verdict = benchmark(decide_solvability, task)
    assert verdict.status is Status.UNSOLVABLE
    report.row(
        stage="decide",
        verdict=verdict.status.value,
        obstruction=verdict.obstruction.kind,
        paper_claim="unsolvable via articulation points (Sect. 6.1)",
        match=True,
    )
