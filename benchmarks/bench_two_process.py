"""Proposition 5.4 — the exact two-process characterization.

A two-process task is solvable iff a component-consistent choice of solo
outputs exists.  The bench decides the two-process zoo plus a family of
growing path tasks (checking that solvability does not degrade with output
size) and reports verdicts.
"""

import pytest

from repro import decide_solvability
from repro.solvability import two_process_solvable
from repro.tasks.zoo import consensus_task, identity_task, path_task, two_process_fork_task


@pytest.mark.parametrize(
    "name,make,expected",
    [
        ("identity", lambda: identity_task(2), True),
        ("consensus", lambda: consensus_task(2), False),
        ("fork", two_process_fork_task, False),
        ("path-3", lambda: path_task(3), True),
        ("path-9", lambda: path_task(9), True),
    ],
)
def test_two_process_zoo(benchmark, name, make, expected, report):
    task = make()
    result = benchmark(two_process_solvable, task)
    assert result is expected
    report.row(
        task=name,
        solvable=result,
        expected=expected,
        match=result is expected,
    )


@pytest.mark.parametrize("length", [3, 7, 15, 31])
def test_path_scaling(benchmark, length, report):
    task = path_task(length)
    verdict = benchmark(decide_solvability, task, max_rounds=0)
    assert verdict.solvable is True
    report.row(task=f"path-{length}", output_edges=length, verdict=verdict.status.value)
