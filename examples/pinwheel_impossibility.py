"""The pinwheel task (Figure 8): impossibility through three components.

Reproduces the paper's Section 6.2: the pinwheel is 2-set agreement with
some output triangles removed (all edges intact).  Every output vertex is
a local articulation point; after the nine splits the output complex falls
into three connected components, and since no component contains copies of
all three solo-decision vertices, no wait-free protocol can exist.

Run:  python examples/pinwheel_impossibility.py
"""

from repro import decide_solvability, link_connected_form
from repro.splitting import local_articulation_points
from repro.tasks.zoo import inputless_set_agreement_task, pinwheel_task


def main() -> None:
    task = pinwheel_task()
    two_set = inputless_set_agreement_task(3, 2)
    print(f"task: {task}")
    removed = len(two_set.output_complex.facets) - len(task.output_complex.facets)
    print(
        f"subtask of 2-set agreement: kept "
        f"{len(task.output_complex.facets)}/{len(two_set.output_complex.facets)} "
        f"triangles ({removed} removed), all "
        f"{len(task.output_complex.simplices(dim=1))} edges intact"
    )

    print("\n-- articulation structure --")
    laps = local_articulation_points(task)
    print(f"every output vertex is a LAP: {len(laps)} LAPs, "
          f"{sorted({l.n_components for l in laps})} link components each")

    print("\n-- splitting --")
    result = link_connected_form(task)
    comps = result.task.output_complex.connected_components()
    print(f"splits: {result.n_splits}; O' components: {len(comps)}")
    names = ["yellow", "red", "blue"]
    for name, comp in zip(names, comps):
        solos = sorted(
            f"P{result.project_vertex(v).color}'s {result.project_vertex(v).value}"
            for v in comp
            if result.project_vertex(v).color == result.project_vertex(v).value
        )
        print(f"  {name}: {len(comp)} vertices; solo-decision copies: {solos}")
    print("(each component misses one solo vertex -> the Section 6.2 argument)")

    print("\n-- verdict --")
    verdict = decide_solvability(task)
    print(f"{verdict.status.value}; obstruction: {verdict.obstruction}")


if __name__ == "__main__":
    main()
