"""Check *your own* task: a worked example of defining a task from scratch.

Defines a custom three-process task directly through the public API — a
"weak-leader" task: every process outputs a process id it believes could be
the leader; solo runs elect themselves; any simplex where at most two
distinct leaders are named, one of whom is a participant, is legal for the
full run.  The script then runs the complete analysis report:

* validation of the (I, O, Δ) triple,
* canonicity check,
* LAP inventory and splitting,
* the solvability verdict with its certificate,
* protocol synthesis and simulation when solvable.

Use this file as a template for your own tasks.

Run:  python examples/custom_task_checker.py
"""

import itertools

from repro import decide_solvability, link_connected_form, synthesize_protocol
from repro.runtime import validate_protocol
from repro.solvability import Status
from repro.splitting import local_articulation_points
from repro.tasks import Task, is_canonical, task_from_function
from repro.tasks.zoo import single_facet_input
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import Simplex, Vertex


def weak_leader_task() -> Task:
    """Each process names a possible leader among the participants."""
    inputs = single_facet_input(3, name="I_leader")

    out_facets = []
    for combo in itertools.product(range(3), repeat=3):
        if len(set(combo)) <= 2:
            out_facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    outputs = ChromaticComplex(out_facets, name="O_leader")

    def rule(sigma):
        ids = sorted(sigma.colors())
        for combo in itertools.product(ids, repeat=len(ids)):
            if len(set(combo)) <= 2:
                yield Simplex(Vertex(i, v) for i, v in zip(ids, combo))

    return task_from_function(inputs, outputs, rule, name="weak-leader")


def analyze(task: Task) -> None:
    print(f"task: {task}")
    task.validate()
    print("validation: OK (chromatic carrier map, rigid, strict, monotone)")
    print(f"canonical: {is_canonical(task)}")

    laps = local_articulation_points(task)
    print(f"local articulation points: {len(laps)}")
    result = link_connected_form(task)
    print(
        f"after splitting: {result.n_splits} splits, "
        f"{len(result.task.output_complex.connected_components())} component(s)"
    )

    verdict = decide_solvability(task, max_rounds=2)
    print(f"verdict: {verdict.status.value}")
    if verdict.status is Status.UNSOLVABLE:
        print(f"  certificate: {verdict.obstruction}")
    elif verdict.status is Status.SOLVABLE:
        print(f"  witness: simplicial map on Ch^{verdict.witness_rounds}(I)")
        protocol = synthesize_protocol(task, verdict=verdict)
        report = validate_protocol(
            task, protocol.factories, participation="facets", random_runs=5
        )
        print(
            f"  synthesized {protocol.mode} protocol (r={protocol.rounds}); "
            f"{report.runs} simulated executions, "
            f"{'all legal' if report.ok else 'VIOLATIONS!'}"
        )
    else:
        print("  undecided within the subdivision budget (raise max_rounds)")


def lazy_leader_task() -> Task:
    """The relaxation: any participant may be named, no agreement bound.

    Dropping the two-leader bound makes the task trivially solvable —
    a useful contrast when reading the two reports.
    """
    inputs = single_facet_input(3, name="I_lazy")
    out_facets = [
        Simplex(Vertex(i, v) for i, v in enumerate(combo))
        for combo in itertools.product(range(3), repeat=3)
    ]
    outputs = ChromaticComplex(out_facets, name="O_lazy")

    def rule(sigma):
        ids = sorted(sigma.colors())
        for combo in itertools.product(ids, repeat=len(ids)):
            yield Simplex(Vertex(i, v) for i, v in zip(ids, combo))

    return task_from_function(inputs, outputs, rule, name="lazy-leader")


if __name__ == "__main__":
    analyze(weak_leader_task())
    print("\n" + "=" * 70 + "\n")
    analyze(lazy_leader_task())
