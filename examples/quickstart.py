"""Quickstart: decide wait-free solvability of a three-process task.

This walks the library's main loop on two tasks from the paper:

1. **majority consensus** (Figure 1) — looks innocent, has a continuous
   map from inputs to outputs, yet is wait-free *unsolvable*; the decision
   procedure finds the local-articulation-point obstruction after
   canonicalizing and splitting.
2. **3-set agreement** — solvable; we synthesize an executable wait-free
   protocol from the witness and run it on the shared-memory simulator.

Run:  python examples/quickstart.py
"""

from repro import decide_solvability, synthesize_protocol
from repro.runtime import validate_protocol
from repro.solvability import Status
from repro.tasks.zoo import majority_consensus_task, set_agreement_task


def main() -> None:
    print("=" * 70)
    print("1. Majority consensus (Figure 1)")
    print("=" * 70)
    task = majority_consensus_task()
    print(f"task: {task}")
    verdict = decide_solvability(task)
    print(f"verdict: {verdict.status.value}")
    print(f"splits performed: {verdict.stats['n_splits']}")
    print(f"obstruction: {verdict.obstruction}")
    assert verdict.status is Status.UNSOLVABLE

    print()
    print("=" * 70)
    print("2. 3-set agreement: solvable, synthesized and executed")
    print("=" * 70)
    task = set_agreement_task(3, 3)
    verdict = decide_solvability(task)
    print(f"verdict: {verdict.status.value} "
          f"(witness at subdivision depth r={verdict.witness_rounds})")
    protocol = synthesize_protocol(task, verdict=verdict)
    print(f"protocol mode: {protocol.mode}, rounds: {protocol.rounds}")
    report = validate_protocol(task, protocol.factories,
                               participation="facets", random_runs=5)
    print(f"simulation: {report.runs} executions, "
          f"{'all legal' if report.ok else 'VIOLATIONS'}")
    print(f"mean steps per execution: {report.mean_steps:.1f}")
    assert report.ok


if __name__ == "__main__":
    main()
