"""Inspecting a protocol at the operation level.

The scheduler can record every atomic operation of an execution, which
turns protocol debugging from guesswork into reading a transcript.  This
script runs the Figure 7 algorithm under an adversarial schedule designed
to force a long step-(14) negotiation, then prints the negotiation as it
appeared in shared memory (`M_decisions` writes).

Run:  python examples/protocol_debugging.py
"""

import random

from repro.runtime import Execution
from repro.runtime.chromatic_agreement import (
    make_chromatic_agreement_factories,
    spread_completion,
)
from repro.runtime.simulation import check_trace
from repro.splitting import link_connected_form
from repro.tasks.zoo import fan_task
from repro.topology.simplex import Simplex


def snapshot_first_agnostic(task):
    def agnostic(pid, x_vertex):
        yield ("update", "_AG", x_vertex)
        state = yield ("scan", "_AG")
        tau = Simplex(x for x in state if x is not None)
        return task.delta(tau).vertices[0]

    return agnostic


def main() -> None:
    # a split fan with a long strip: the two rim processes will negotiate
    # along the hub copy's link path
    task = link_connected_form(fan_task(components=2, strip_length=6)).task
    sigma = task.input_complex.facets[0]
    factories = make_chromatic_agreement_factories(
        task, sigma, snapshot_first_agnostic(task),
        picker=spread_completion, check=False,
    )

    execution = Execution(
        3, {pid: f(pid) for pid, f in factories.items()}, record_ops=True
    )
    step = 0
    while not execution.done():
        # starve-then-alternate: p0 decides first, then p1/p2 alternate
        runnable = execution.runnable()
        pid = 0 if 0 in runnable else [p for p in (1, 2) if p in runnable][
            step % max(1, len([p for p in (1, 2) if p in runnable]))
        ]
        execution.step(pid)
        step += 1

    trace = execution.trace
    assert check_trace(task, sigma, trace) is None

    print(f"total steps: {trace.total_steps()}  "
          f"(per process: { {p: trace.steps[p] for p in sorted(trace.steps)} })")
    print("\nnegotiation transcript (writes to M_decisions):")
    for pid, payload in trace.writes_to("M_decisions"):
        v_first, v_current, core = payload
        print(f"  p{pid}: proposes {v_current}   (first={v_first}, core size {len(core)})")

    print("\nfinal decisions:")
    for pid in sorted(trace.decisions):
        print(f"  p{pid} -> {trace.decisions[pid]}")


if __name__ == "__main__":
    main()
