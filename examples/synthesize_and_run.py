"""Synthesize wait-free protocols from solvability witnesses and race them.

For each solvable task: decide, synthesize in both modes — the direct ACT
protocol ("run r rounds of immediate snapshot, decide δ(view)") and the
paper's Figure 7 construction (color-agnostic solution + chromatic repair)
— then execute both over hundreds of adversarial schedules on the
shared-memory simulator and compare step counts.

Run:  python examples/synthesize_and_run.py
"""

from repro import decide_solvability, synthesize_protocol
from repro.runtime import validate_protocol
from repro.tasks.zoo import (
    identity_task,
    loop_agreement_task,
    set_agreement_task,
    triangle_loop,
)

TASKS = [
    ("identity", identity_task(3)),
    ("3-set agreement", set_agreement_task(3, 3)),
    ("loop agreement (filled)", loop_agreement_task(triangle_loop(True))),
]


def main() -> None:
    header = f"{'task':<26}{'mode':<10}{'rounds':<8}{'runs':<7}{'mean steps':<12}{'max steps':<10}"
    print(header)
    print("-" * len(header))
    for name, task in TASKS:
        verdict = decide_solvability(task)
        assert verdict.solvable, f"{name} should be solvable"
        for prefer_direct in (True, False):
            protocol = synthesize_protocol(
                task, verdict=verdict, prefer_direct=prefer_direct
            )
            report = validate_protocol(
                task, protocol.factories, participation="facets", random_runs=10
            )
            assert report.ok, report.violations[:1]
            print(
                f"{name:<26}{protocol.mode:<10}{protocol.rounds:<8}"
                f"{report.runs:<7}{report.mean_steps:<12.1f}{report.max_steps:<10}"
            )
    print("\nall executions produced legal, properly colored outputs")


if __name__ == "__main__":
    main()
