"""The hourglass task (Figure 2): a guided impossibility proof.

Reproduces, step by step, the paper's Section 6.1:

* the output complex is contractible, and a continuous map |I| -> |O|
  respecting Δ exists (colorless-ACT condition holds);
* nevertheless the task is unsolvable: the waist vertex is a local
  articulation point; splitting it disconnects the output complex, and
  Corollary 5.5 reduces the task to (im)possible consensus.

Run:  python examples/hourglass_impossibility.py [--dot out.dot]
"""

import argparse

from repro import decide_solvability, link_connected_form
from repro.solvability import corollary_5_5
from repro.solvability.map_search import find_map
from repro.splitting import local_articulation_points
from repro.tasks.zoo import hourglass_articulation_vertex, hourglass_task
from repro.topology.dot import write_dot
from repro.topology.homology import betti_numbers
from repro.topology.subdivision import iterated_barycentric_subdivision


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dot", help="write the output complexes as DOT files")
    args = parser.parse_args()

    task = hourglass_task()
    print(f"task: {task}")
    print(f"output Betti numbers: {betti_numbers(task.output_complex)} "
          "(contractible: b0=1, b1=0)")

    print("\n-- colorless-ACT condition --")
    sub = iterated_barycentric_subdivision(task.input_complex, 2)
    witness = find_map(sub, task.delta, chromatic=False)
    print(f"continuous map |I| -> |O| respecting Δ: "
          f"{'EXISTS' if witness else 'does not exist'} "
          f"(simplicial witness on Bary², {len(sub.complex.facets)} facets)")

    print("\n-- articulation structure --")
    (lap,) = local_articulation_points(task)
    print(f"LAP: {lap.vertex} (the waist, P0 deciding 1)")
    for i, comp in enumerate(lap.components):
        print(f"  link component {i}: {sorted(map(str, comp))}")

    print("\n-- splitting --")
    result = link_connected_form(task)
    comps = result.task.output_complex.connected_components()
    print(f"splits: {result.n_splits}; O' components: {len(comps)}")
    for i, comp in enumerate(comps):
        print(f"  component {i}: {len(comp)} vertices")

    print("\n-- impossibility --")
    witness = corollary_5_5(result.task)
    print(f"Corollary 5.5 witness: {witness}")
    verdict = decide_solvability(task)
    print(f"final verdict: {verdict.status.value}")
    print(f"  waist vertex was {hourglass_articulation_vertex()}")

    if args.dot:
        write_dot(task.output_complex, args.dot, name="hourglass-O")
        split_path = args.dot.replace(".dot", "") + "-split.dot"
        write_dot(result.task.output_complex, split_path, name="hourglass-O-split")
        print(f"\nwrote {args.dot} and {split_path}")


if __name__ == "__main__":
    main()
