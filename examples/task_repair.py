"""Task repair: watch a specification cross the solvability frontier.

The majority consensus task (Figure 1) is unsolvable because its
full-participation constraint ("all equal, or more 0s than 1s") pinches
the output complex.  This script relaxes the specification step by step
and re-runs the characterization after each repair, showing exactly which
relaxation removes the obstruction:

1. *majority consensus* — unsolvable (LAP obstruction after splitting);
2. *mirrored majority* — all equal, or more 1s than 0s: still unsolvable
   (the obstruction does not care about the chirality of the constraint);
3. *weak validity* — any combination of input values: solvable with zero
   rounds, and we synthesize and run the protocol.

Run:  python examples/task_repair.py
"""

import itertools

from repro import decide_solvability, synthesize_protocol
from repro.runtime import validate_protocol
from repro.solvability import Status
from repro.tasks import Task, task_from_function
from repro.tasks.zoo import full_input_complex, majority_consensus_task, simplex_values
from repro.topology.chromatic import ChromaticComplex
from repro.topology.simplex import Simplex, Vertex


def variant_task(allowed_triple, name: str) -> Task:
    """Binary-input three-process task with a configurable triple rule."""
    inputs = full_input_complex(3, (0, 1), name=f"I_{name}")
    out_facets = [
        Simplex(Vertex(i, v) for i, v in enumerate(combo))
        for combo in itertools.product((0, 1), repeat=3)
        if allowed_triple(combo)
    ]
    outputs = ChromaticComplex(out_facets, name=f"O_{name}")

    def rule(sigma):
        ids = sorted(sigma.colors())
        vals = sorted(simplex_values(sigma))
        for combo in itertools.product(vals, repeat=len(ids)):
            if len(ids) == 3 and not allowed_triple(combo):
                continue
            candidate = Simplex(Vertex(i, v) for i, v in zip(ids, combo))
            if candidate in outputs:
                yield candidate

    return task_from_function(inputs, outputs, rule, name=name)


def mirrored_majority(combo) -> bool:
    ones = combo.count(1)
    return len(set(combo)) == 1 or ones > len(combo) - ones


def weak_validity(combo) -> bool:
    return True


def describe(task) -> None:
    verdict = decide_solvability(task)
    print(f"\n=== {task.name} ===")
    print(f"output facets: {len(task.output_complex.facets)}")
    print(f"verdict: {verdict.status.value}")
    if verdict.status is Status.UNSOLVABLE:
        print(f"  obstruction: {verdict.obstruction}")
        print(f"  splits performed: {verdict.stats.get('n_splits')}")
    elif verdict.status is Status.SOLVABLE:
        protocol = synthesize_protocol(task, verdict=verdict)
        report = validate_protocol(
            task, protocol.factories, participation="facets", random_runs=4
        )
        print(
            f"  synthesized {protocol.mode} protocol (r={protocol.rounds}); "
            f"{report.runs} executions, {'all legal' if report.ok else 'BROKEN'}"
        )


def main() -> None:
    describe(majority_consensus_task())
    describe(variant_task(mirrored_majority, "mirrored-majority"))
    describe(variant_task(weak_validity, "weak-validity"))


if __name__ == "__main__":
    main()
