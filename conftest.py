"""Repo-level pytest plumbing shared by the test and benchmark trees.

``--benchmark-smoke`` shrinks the perf-core benchmark to tiny populations
so the harness itself (and its JSON schema) is exercised on every PR —
tier 2 runs ``pytest benchmarks -m perf --benchmark-smoke`` — without the
full-size measurement cost.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--benchmark-smoke",
        action="store_true",
        default=False,
        help="run perf benchmarks on tiny populations (schema/no-crash check)",
    )


@pytest.fixture
def smoke(request) -> bool:
    """True when ``--benchmark-smoke`` asked for the down-scaled perf run."""
    return bool(request.config.getoption("--benchmark-smoke"))
