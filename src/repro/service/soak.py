"""The sustained-soak harness: growth-gated long-haul load.

``serve-bench`` answers "how fast is a warm cache?" with two passes.
This module answers the operational question the ROADMAP's soak item
asks — **does the server leak?** — which two passes cannot: RSS,
keymap and cache growth only separate from warmup noise over a
sustained run.  The methodology:

1. drive a seeded zipf workload (the same duplicate-heavy stream the
   bench uses) from ``concurrency`` client threads that *cycle* the
   stream until the deadline — a fixed request count would make the
   observed duration depend on server speed, and growth slopes need a
   controlled time axis;
2. scrape ``GET /metrics?format=json`` every ``scrape_interval``
   seconds throughout, validating each snapshot against
   ``repro-metrics/1`` (a soak that silently collected garbage scrapes
   would gate on nothing);
3. after the deadline, fit least-squares growth slopes over the final
   snapshot's ``resources`` time series — the server-side sampler ring,
   so the numbers are identical whether the server is in-process or
   across the network — excluding the warmup fraction;
4. compare each declared budget against its slope and exit nonzero on
   any excess.

Per-request latencies are folded straight into a
:class:`repro.obs.metrics.LatencyHistogram` (bounded memory: an
hours-long soak must not accumulate a per-request list), and the report
is schema-validated ``repro-soak/1`` — ingestable into the telemetry
store via ``repro obs ingest`` so ``obs trend`` tracks slopes across
commits.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..obs.metrics import (
    LatencyHistogram,
    quantile_from_snapshot,
    validate_metrics,
)
from ..obs.sampler import series_slopes
from .client import (
    DEFAULT_SPEC_POOL,
    ServiceClient,
    make_workload,
    workload_duplication,
)
from .server import ServerConfig, ServerThread

#: soak report format identifier
SCHEMA = "repro-soak/1"

#: budget name -> the sampler series its slope is fitted from
BUDGET_SOURCES = {
    "rss_bytes_per_s": "rss_bytes",
    "keymap_entries_per_s": "keymap_entries",
    "cache_entries_per_s": "cache_memory_entries",
}


@dataclass
class SoakBudgets:
    """Declared per-second growth ceilings; ``None`` = not gated.

    Units are the series' own (bytes/s for RSS, entries/s for keymap
    and cache).  A *negative* budget always trips on a non-negative
    slope — the trick the exit-1 tests and a deliberate canary job use.
    """

    rss_bytes_per_s: Optional[float] = None
    keymap_entries_per_s: Optional[float] = None
    cache_entries_per_s: Optional[float] = None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "rss_bytes_per_s": self.rss_bytes_per_s,
            "keymap_entries_per_s": self.keymap_entries_per_s,
            "cache_entries_per_s": self.cache_entries_per_s,
        }

    def violations(self, slopes: Dict[str, float]) -> List[str]:
        """Human-readable budget excesses (empty = under budget)."""
        problems: List[str] = []
        for budget_name, series in BUDGET_SOURCES.items():
            ceiling = self.as_dict()[budget_name]
            if ceiling is None:
                continue
            slope = slopes.get(series)
            if slope is None:
                problems.append(
                    f"{budget_name}: no {series!r} series to gate on"
                )
            elif slope > ceiling:
                problems.append(
                    f"{budget_name}: growth {slope:.3f}/s exceeds the "
                    f"{ceiling:.3f}/s budget"
                )
        return problems


class _LoadState:
    """Shared counters the client threads fold results into."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.histogram = LatencyHistogram()
        self.requests = 0
        self.ok = 0
        self.errors = 0
        self.cached = 0


def _load_worker(
    url: str,
    stream: List[Dict[str, Any]],
    offset: int,
    deadline: float,
    state: _LoadState,
) -> None:
    """Cycle the stream (starting at ``offset``) until the deadline."""
    client = ServiceClient(url)
    index = offset % len(stream)
    try:
        while time.monotonic() < deadline:
            started = time.perf_counter()
            try:
                response = client.solve(stream[index])
            except Exception:
                with state.lock:
                    state.requests += 1
                    state.errors += 1
                return  # a dead connection ends this worker, not the soak
            latency = time.perf_counter() - started
            state.histogram.record(latency)
            with state.lock:
                state.requests += 1
                if response.get("ok"):
                    state.ok += 1
                else:
                    state.errors += 1
                if response.get("cached"):
                    state.cached += 1
            index = (index + 1) % len(stream)
    finally:
        client.close()


def run_soak(
    *,
    duration: float = 20.0,
    concurrency: int = 4,
    requests: int = 200,
    pool_size: int = 6,
    skew: float = 1.2,
    seed: int = 0,
    scrape_interval: float = 2.0,
    warmup_fraction: float = 0.25,
    budgets: Optional[SoakBudgets] = None,
    url: Optional[str] = None,
    server_config: Optional[ServerConfig] = None,
    scrapes_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one soak; returns a validated ``repro-soak/1`` report.

    With ``url=None`` an in-process :class:`ServerThread` is started and
    torn down around the run (CI's mode: the sampler, access log and
    metrics all live in this process); otherwise the load and scrapes
    target the external server.  ``scrapes_path`` appends every scrape
    as one JSONL line — the artifact CI uploads.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if scrape_interval <= 0:
        raise ValueError(
            f"scrape_interval must be positive, got {scrape_interval}"
        )
    budgets = budgets or SoakBudgets()
    stream = make_workload(
        requests, pool=DEFAULT_SPEC_POOL[: max(1, pool_size)], skew=skew, seed=seed
    )

    owned_server: Optional[ServerThread] = None
    if url is None:
        owned_server = ServerThread(server_config or ServerConfig())
        owned_server.start()
        url = owned_server.url
    state = _LoadState()
    scrape_count = 0
    scrape_failures = 0
    scrapes_fh = open(scrapes_path, "a", encoding="utf-8") if scrapes_path else None
    try:
        started = time.monotonic()
        deadline = started + duration
        threads = [
            threading.Thread(
                target=_load_worker,
                args=(url, stream, i * len(stream) // max(1, concurrency),
                      deadline, state),
                name=f"repro-soak-{i}",
            )
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()

        scraper = ServiceClient(url)
        try:
            while time.monotonic() < deadline:
                time.sleep(min(scrape_interval, max(0.0, deadline - time.monotonic())))
                try:
                    snapshot = scraper.metrics()
                except Exception:
                    scrape_failures += 1
                    continue
                scrape_count += 1
                if scrapes_fh is not None:
                    scrapes_fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
                    scrapes_fh.flush()
            for thread in threads:
                thread.join(timeout=30.0)
            # the final scrape, after the load drained, carries the full
            # resource ring the slopes are fitted over
            final = scraper.metrics()
            final_stats = scraper.stats()
        finally:
            scraper.close()
        elapsed = time.monotonic() - started
    finally:
        if scrapes_fh is not None:
            scrapes_fh.close()
        if owned_server is not None:
            owned_server.stop()

    problems = validate_metrics(final)
    if problems:  # pragma: no cover - client.metrics() already validates
        raise ValueError(f"final scrape is not valid repro-metrics/1: {problems}")
    resources = final.get("resources") or {"samples": []}
    slopes = series_slopes(resources, warmup_fraction=warmup_fraction)
    over_budget = budgets.violations(slopes)
    latency = state.histogram.snapshot()
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "duration_seconds": elapsed,
        "config": {
            "duration": duration,
            "concurrency": concurrency,
            "requests": requests,
            "distinct_specs": round(
                len(stream) / max(workload_duplication(stream), 1e-9)
            ),
            "skew": skew,
            "seed": seed,
            "scrape_interval": scrape_interval,
            "warmup_fraction": warmup_fraction,
            "url": url,
        },
        "requests": state.requests,
        "ok": state.ok,
        "errors": state.errors,
        "hit_rate": (state.cached / state.requests) if state.requests else 0.0,
        "throughput_rps": (state.requests / elapsed) if elapsed > 0 else 0.0,
        "latency": latency,
        "latency_ms": {
            "p50": quantile_from_snapshot(latency, 0.50) * 1000.0,
            "p99": quantile_from_snapshot(latency, 0.99) * 1000.0,
        },
        "scrapes": scrape_count,
        "scrape_failures": scrape_failures,
        "resources": resources,
        "slopes": slopes,
        "budgets": budgets.as_dict(),
        "over_budget": over_budget,
        "passed": not over_budget,
        "server_stats": final_stats,
    }
    problems = validate_soak_report(report)
    if problems:  # pragma: no cover - construction bug, not runtime state
        raise AssertionError(f"built an invalid soak report: {problems}")
    return report


def validate_soak_report(payload: Any) -> List[str]:
    """Problems with one ``repro-soak/1`` document (empty = valid)."""
    if not isinstance(payload, dict):
        return ["soak report must be an object"]
    errors: List[str] = []
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    for field in ("created_unix", "duration_seconds", "hit_rate", "throughput_rps"):
        if not isinstance(payload.get(field), (int, float)):
            errors.append(f"{field} must be a number")
    for field in ("requests", "ok", "errors", "scrapes"):
        value = payload.get(field)
        if isinstance(value, bool) or not isinstance(value, int):
            errors.append(f"{field} must be an integer")
    if not isinstance(payload.get("passed"), bool):
        errors.append("passed must be a boolean")
    slopes = payload.get("slopes")
    if not isinstance(slopes, dict) or not all(
        isinstance(v, (int, float)) for v in slopes.values()
    ):
        errors.append("slopes must map series names to numbers")
    budgets = payload.get("budgets")
    if not isinstance(budgets, dict) or not all(
        v is None or isinstance(v, (int, float)) for v in budgets.values()
    ):
        errors.append("budgets must map budget names to numbers or null")
    if not isinstance(payload.get("over_budget"), list):
        errors.append("over_budget must be a list")
    latency = payload.get("latency")
    if not isinstance(latency, dict) or not isinstance(
        latency.get("buckets"), list
    ):
        errors.append("latency must be a histogram snapshot with buckets")
    resources = payload.get("resources")
    if not isinstance(resources, dict) or not isinstance(
        resources.get("samples"), list
    ):
        errors.append("resources must hold a samples list")
    if (
        isinstance(payload.get("passed"), bool)
        and isinstance(payload.get("over_budget"), list)
        and payload["passed"] != (not payload["over_budget"])
    ):
        errors.append("passed must agree with over_budget")
    return errors


def format_soak_summary(report: Dict[str, Any]) -> str:
    """A human-readable digest of one soak run."""
    lines = [
        f"soak:       {report['duration_seconds']:.1f}s, "
        f"{report['requests']} requests "
        f"({report['throughput_rps']:.0f} req/s, "
        f"hit rate {report['hit_rate']:.3f}, "
        f"{report['errors']} errors)",
        f"latency:    p50 {report['latency_ms']['p50']:.2f}ms, "
        f"p99 {report['latency_ms']['p99']:.2f}ms "
        f"(conservative bucket bounds)",
        f"scrapes:    {report['scrapes']} ok, "
        f"{report['scrape_failures']} failed",
    ]
    slopes = report.get("slopes", {})
    budgets = report.get("budgets", {})
    for budget_name, series in BUDGET_SOURCES.items():
        slope = slopes.get(series)
        if slope is None:
            continue
        ceiling = budgets.get(budget_name)
        gate = f" (budget {ceiling:.3f}/s)" if ceiling is not None else ""
        lines.append(f"growth:     {series} {slope:+.3f}/s{gate}")
    if report.get("over_budget"):
        lines.append("OVER BUDGET:")
        lines.extend(f"  - {problem}" for problem in report["over_budget"])
    else:
        lines.append("verdict:    growth within budget")
    return "\n".join(lines)


__all__ = [
    "BUDGET_SOURCES",
    "SCHEMA",
    "SoakBudgets",
    "format_soak_summary",
    "run_soak",
    "validate_soak_report",
]
