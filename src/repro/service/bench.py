"""The service benchmark: duplicate-heavy load, cache-split latency.

One entry point, :func:`run_service_bench`, shared by the ``repro
serve-bench`` CLI and ``benchmarks/bench_service.py``.  The methodology:

1. build (or replay) a zipf-skewed, seeded request stream — duplication
   is the point, the service's whole value is that repeated specs are
   served from the memo store;
2. **cold pass** — replay the stream against an empty cache and split
   per-request latencies by the envelope's ``cached`` flag, so the
   uncached sample measures real decide work over HTTP;
3. **steady pass(es)** — replay the same stream again; now essentially
   every request is a hit and the hit-rate / p50 / p99 numbers describe
   the regime the server actually runs in.

The report is ``repro-perf/1`` (the same schema every other bench in
``benchmarks/`` emits, so ``repro obs ingest`` and ``obs diff`` work on
it unchanged) with one measurement per pass plus the cached/uncached
latency samples, and a derived ``speedup:cached_hit/uncached_decide``
ratio — the headline number.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..perf import Measurement, PerfHarness
from .client import (
    DEFAULT_SPEC_POOL,
    LoadResult,
    make_workload,
    percentile,
    run_load,
    workload_duplication,
)
from .server import ServerConfig, ServerThread


def load_replay_file(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL request stream (one payload object per line)."""
    requests: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(payload, dict):
                raise ValueError(f"{path}:{lineno}: payload must be an object")
            requests.append(payload)
    if not requests:
        raise ValueError(f"{path}: replay file holds no requests")
    return requests


def _pass_measurement(
    name: str, result: LoadResult, meta: Dict[str, Any]
) -> Measurement:
    return Measurement(
        name=name,
        seconds_each=list(result.latencies),
        counters={
            "requests": float(result.n_requests),
            "ok": float(result.ok_count),
            "errors": float(result.error_count),
            "hit_rate": result.hit_rate,
            "throughput_rps": result.throughput,
            "p50_ms": result.percentile(50) * 1000.0,
            "p99_ms": result.percentile(99) * 1000.0,
        },
        meta=meta,
    )


def _split_latencies(result: LoadResult, cached: bool) -> List[float]:
    return [
        latency
        for latency, flag in zip(result.latencies, result.cached_flags)
        if flag is cached
    ]


def run_service_bench(
    *,
    requests: int = 200,
    concurrency: int = 4,
    pool_size: int = 6,
    skew: float = 1.2,
    seed: int = 0,
    passes: int = 2,
    replay: Optional[str] = None,
    url: Optional[str] = None,
    server_config: Optional[ServerConfig] = None,
) -> Dict[str, Any]:
    """Run the bench; returns ``{"report", "passes", "workload"}``.

    With ``url=None`` an in-process :class:`ServerThread` is started and
    torn down around the run; otherwise the stream is replayed against
    the given external server (the CI smoke job's mode).
    """
    if passes < 2:
        raise ValueError(
            f"need at least 2 passes (cold + steady), got {passes}"
        )
    if replay is not None:
        stream = load_replay_file(replay)
    else:
        stream = make_workload(
            requests,
            pool=DEFAULT_SPEC_POOL[: max(1, pool_size)],
            skew=skew,
            seed=seed,
        )
    duplication = workload_duplication(stream)

    owned_server: Optional[ServerThread] = None
    if url is None:
        owned_server = ServerThread(server_config or ServerConfig())
        owned_server.start()
        url = owned_server.url
    try:
        results = [
            run_load(url, stream, concurrency=concurrency)
            for _ in range(passes)
        ]
    finally:
        if owned_server is not None:
            owned_server.stop()

    cold, steady = results[0], results[-1]
    harness = PerfHarness("service")
    workload_meta = {
        "requests": len(stream),
        "distinct": round(len(stream) / duplication) if duplication else 0,
        "duplication": duplication,
        "concurrency": concurrency,
        "replay": replay,
        "seed": seed,
        "skew": skew,
    }
    for index, result in enumerate(results):
        kind = "cold" if index == 0 else "steady"
        harness.measurements.append(
            _pass_measurement(
                f"pass_{index}_{kind}",
                result,
                dict(workload_meta, pass_index=index),
            )
        )

    uncached = _split_latencies(cold, cached=False)
    cached = _split_latencies(steady, cached=True)
    if uncached:
        harness.measurements.append(
            Measurement(
                name="uncached_decide",
                seconds_each=uncached,
                counters={"p50_ms": percentile(uncached, 50) * 1000.0},
                meta={"source": "cold-pass misses, end-to-end over HTTP"},
            )
        )
    if cached:
        harness.measurements.append(
            Measurement(
                name="cached_hit",
                seconds_each=cached,
                counters={"p50_ms": percentile(cached, 50) * 1000.0},
                meta={"source": "steady-pass hits, end-to-end over HTTP"},
            )
        )

    harness.derived["workload_duplication"] = duplication
    harness.derived["steady_hit_rate"] = steady.hit_rate
    harness.derived["steady_p99_ms"] = steady.percentile(99) * 1000.0
    harness.derived["steady_throughput_rps"] = steady.throughput
    if uncached and cached:
        # p50-over-p50, not best-over-best: the memo store's value is the
        # typical request, and a single lucky uncached run must not
        # deflate the headline ratio
        harness.derived["speedup:cached_hit/uncached_decide"] = percentile(
            uncached, 50
        ) / max(percentile(cached, 50), 1e-9)

    return {
        "report": harness.to_report(),
        "harness": harness,
        "passes": results,
        "workload": workload_meta,
        "url": url,
    }


def check_gates(
    bench: Dict[str, Any],
    *,
    min_hit_rate: Optional[float] = None,
    max_p99_ms: Optional[float] = None,
) -> List[str]:
    """Acceptance-gate violations for a finished bench run (CI's hook)."""
    problems: List[str] = []
    derived = bench["report"]["derived"]
    if min_hit_rate is not None:
        rate = derived.get("steady_hit_rate", 0.0)
        if rate < min_hit_rate:
            problems.append(
                f"steady-state hit rate {rate:.3f} is below the "
                f"{min_hit_rate:.3f} floor"
            )
    if max_p99_ms is not None:
        p99 = derived.get("steady_p99_ms", float("inf"))
        if p99 > max_p99_ms:
            problems.append(
                f"steady-state p99 of {p99:.1f}ms exceeds the "
                f"{max_p99_ms:.1f}ms ceiling"
            )
    return problems


def format_summary(bench: Dict[str, Any]) -> str:
    """A human-readable digest of one bench run."""
    derived = bench["report"]["derived"]
    workload = bench["workload"]
    lines = [
        f"workload:   {workload['requests']} requests over "
        f"{workload['distinct']} distinct specs "
        f"({derived['workload_duplication']:.1f}x duplication, "
        f"concurrency {workload['concurrency']})",
        f"steady:     hit rate {derived['steady_hit_rate']:.3f}, "
        f"p99 {derived['steady_p99_ms']:.2f}ms, "
        f"{derived['steady_throughput_rps']:.0f} req/s",
    ]
    speedup = derived.get("speedup:cached_hit/uncached_decide")
    if speedup is not None:
        lines.append(f"cache win:  cached p50 is {speedup:.1f}x faster "
                     "than an uncached decide")
    return "\n".join(lines)


__all__ = [
    "check_gates",
    "format_summary",
    "load_replay_file",
    "run_service_bench",
]
