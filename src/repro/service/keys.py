"""Shared content-addressed keys for every cache, store and the service.

Three subsystems independently grew content hashing: the telemetry store
derives run ids from record bodies (:mod:`repro.obs.store`), the tower
diskstore hashes canonical facet text (:mod:`repro.topology.diskstore`),
and the census corpus hashes isomorphism-canonical task text.  The
service's verdict cache needs the same discipline — a spec must hash
identically whether it arrives from the CLI, an HTTP request, or a pool
worker — so the primitive operations live here, dependency-free, and the
older modules delegate to them.

Two invariants are load-bearing and must never drift:

* :func:`content_hash` is ``sha256(text)`` truncated to 40 hex chars —
  the exact digest the tower store and the committed corpus golden
  manifests already embed;
* :func:`canonical_dumps` is ``json.dumps(payload, sort_keys=True,
  default=str)`` — the exact serialization telemetry run ids have always
  hashed, so historical ``run_id`` values stay reproducible.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable

#: full sha256 is overkill for cache keys; 40 hex chars (160 bits) keeps
#: collision odds negligible while staying filename- and eyeball-friendly
DEFAULT_KEY_LENGTH = 40

#: telemetry run ids predate this module at 12 chars; kept for stability
RUN_ID_LENGTH = 12


def content_hash(text: str, length: int = DEFAULT_KEY_LENGTH) -> str:
    """Stable hex digest of a canonical text description."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


def canonical_dumps(payload: Any) -> str:
    """Deterministic JSON text of a JSON-safe payload.

    Keys are sorted and non-JSON values fall back to ``str`` — byte-for-
    byte the serialization :func:`record_id` has hashed since the
    telemetry store landed, so it must not change.
    """
    return json.dumps(payload, sort_keys=True, default=str)


def json_hash(payload: Any, length: int = DEFAULT_KEY_LENGTH) -> str:
    """Content hash of a JSON-safe payload via :func:`canonical_dumps`."""
    return content_hash(canonical_dumps(payload), length=length)


def record_id(
    record: Dict[str, Any],
    exclude: Iterable[str] = ("run_id",),
    length: int = RUN_ID_LENGTH,
) -> str:
    """Content hash over a record body, excluding the id field(s) itself.

    This is the telemetry store's ``run_id`` derivation: stable across
    processes, collision-safe, and independent of insertion order.
    """
    skip = frozenset(exclude)
    body = {k: v for k, v in record.items() if k not in skip}
    return json_hash(body, length=length)


__all__ = [
    "DEFAULT_KEY_LENGTH",
    "RUN_ID_LENGTH",
    "canonical_dumps",
    "content_hash",
    "json_hash",
    "record_id",
]
