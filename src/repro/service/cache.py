"""The content-addressed verdict memo store behind the service.

Two levels, both keyed by the canonical request key from
:func:`repro.service.protocol.request_key`:

* an in-process dict — the steady-state fast path a hot key is served
  from with no I/O at all;
* the persistent :mod:`repro.topology.diskstore` (namespace
  ``"service"``) — survives server restarts and is shared with every
  other process pointing at the same store directory, so a verdict
  computed once on a machine is never recomputed there.

Values are complete ``repro-service/1`` response envelopes (JSON-safe
dicts), not verdict objects: a hit is served byte-for-byte without
re-rendering, which is also what makes the CLI/service bit-identical
guarantee cheap to keep.

Counters: ``service.cache.hit.memory`` / ``service.cache.hit.disk`` /
``service.cache.miss`` feed ``repro obs diff`` like every other cache in
the tree.  :meth:`VerdictCache.size_stats` adds the accounting half of
the ROADMAP eviction item: per-tier entry counts plus approximate byte
footprints (memory bytes are estimated from the canonical JSON length —
cheap, stable across processes, and a sound relative signal for the
soak growth gate even though the true ``dict`` overhead is larger).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..obs import counter_add
from ..topology import diskstore
from .keys import canonical_dumps
from .protocol import SCHEMA

#: diskstore namespace holding persisted response envelopes
NAMESPACE = "service"


def _disk_get(key: str) -> Optional[Any]:
    """Probe the persistent layer (kept tiny: a persisted entry point)."""
    return diskstore.load(NAMESPACE, key)


def _disk_put(key: str, response: Dict[str, Any]) -> None:
    """Persist one response envelope (kept tiny: a persisted entry point)."""
    diskstore.store(NAMESPACE, key, response)


class VerdictCache:
    """Two-level content-addressed response cache (memory + diskstore)."""

    def __init__(self, persist: bool = True) -> None:
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._persist = persist
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0
        self._memory_bytes = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """A cached response envelope, or ``None`` on miss."""
        response, _tier = self.get_with_tier(key)
        return response

    def get_with_tier(
        self, key: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """A cached envelope plus the tier that served it.

        The tier (``"memory"``, ``"disk"``, or ``None`` on miss) is what
        the access log and the per-tier latency histograms record.  Disk
        hits are promoted into memory; a stored value that is not a
        plausible envelope (schema drift, a foreign object under the
        same namespace) is treated as a miss rather than served.
        """
        response = self._memory.get(key)
        if response is not None:
            self.hits_memory += 1
            counter_add("service.cache.hit.memory")
            return response, "memory"
        if self._persist:
            stored = _disk_get(key)
            if (
                isinstance(stored, dict)
                and stored.get("schema") == SCHEMA
                and stored.get("ok")
            ):
                self._remember(key, stored)
                self.hits_disk += 1
                counter_add("service.cache.hit.disk")
                return stored, "disk"
        self.misses += 1
        counter_add("service.cache.miss")
        return None, None

    def put(self, key: str, response: Dict[str, Any]) -> None:
        """Memoize one response; only successes are worth persisting.

        Failed responses (budget exhaustion, preflight rejections) stay
        out of both levels: budgets and code change, and a cached
        failure would outlive the condition that produced it.
        """
        if not response.get("ok"):
            return
        self._remember(key, response)
        if self._persist:
            _disk_put(key, response)

    def _remember(self, key: str, response: Dict[str, Any]) -> None:
        if key not in self._memory:
            self._memory_bytes += len(canonical_dumps(response))
        self._memory[key] = response

    def stats(self) -> Dict[str, Any]:
        """Hit/miss totals and the end-to-end hit rate."""
        hits = self.hits_memory + self.hits_disk
        total = hits + self.misses
        return {
            "entries": len(self._memory),
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "hit_rate": (hits / total) if total else 0.0,
        }

    def memory_size_stats(self) -> Dict[str, int]:
        """The in-process tier's entry count and approximate bytes.

        O(1) — safe for per-scrape gauges and per-second samplers.
        Bytes are the summed canonical-JSON lengths of the stored
        envelopes (an underestimate of true ``dict`` footprint, but
        monotone in it).
        """
        return {
            "entries": len(self._memory),
            "approx_bytes": self._memory_bytes,
        }

    def size_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tier entry counts and approximate byte footprints.

        Disk numbers come from
        :func:`repro.topology.diskstore.namespace_stats` — an
        O(entries) directory walk over the whole shared namespace, not
        just this process's writes — so this belongs in ``/v1/stats``
        and the sampler tick, not per-request hot paths.
        """
        disk = (
            diskstore.namespace_stats(NAMESPACE)
            if self._persist
            else {"entries": 0, "approx_bytes": 0}
        )
        return {"memory": self.memory_size_stats(), "disk": disk}


__all__ = ["NAMESPACE", "VerdictCache"]
