"""The content-addressed verdict memo store behind the service.

Two levels, both keyed by the canonical request key from
:func:`repro.service.protocol.request_key`:

* an in-process dict — the steady-state fast path a hot key is served
  from with no I/O at all;
* the persistent :mod:`repro.topology.diskstore` (namespace
  ``"service"``) — survives server restarts and is shared with every
  other process pointing at the same store directory, so a verdict
  computed once on a machine is never recomputed there.

Values are complete ``repro-service/1`` response envelopes (JSON-safe
dicts), not verdict objects: a hit is served byte-for-byte without
re-rendering, which is also what makes the CLI/service bit-identical
guarantee cheap to keep.

Counters: ``service.cache.hit.memory`` / ``service.cache.hit.disk`` /
``service.cache.miss`` feed ``repro obs diff`` like every other cache in
the tree.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs import counter_add
from ..topology import diskstore
from .protocol import SCHEMA

#: diskstore namespace holding persisted response envelopes
NAMESPACE = "service"


def _disk_get(key: str) -> Optional[Any]:
    """Probe the persistent layer (kept tiny: a persisted entry point)."""
    return diskstore.load(NAMESPACE, key)


def _disk_put(key: str, response: Dict[str, Any]) -> None:
    """Persist one response envelope (kept tiny: a persisted entry point)."""
    diskstore.store(NAMESPACE, key, response)


class VerdictCache:
    """Two-level content-addressed response cache (memory + diskstore)."""

    def __init__(self, persist: bool = True) -> None:
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._persist = persist
        self.hits_memory = 0
        self.hits_disk = 0
        self.misses = 0

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """A cached response envelope, or ``None`` on miss.

        Disk hits are promoted into memory; a stored value that is not a
        plausible envelope (schema drift, a foreign object under the
        same namespace) is treated as a miss rather than served.
        """
        response = self._memory.get(key)
        if response is not None:
            self.hits_memory += 1
            counter_add("service.cache.hit.memory")
            return response
        if self._persist:
            stored = _disk_get(key)
            if (
                isinstance(stored, dict)
                and stored.get("schema") == SCHEMA
                and stored.get("ok")
            ):
                self._memory[key] = stored
                self.hits_disk += 1
                counter_add("service.cache.hit.disk")
                return stored
        self.misses += 1
        counter_add("service.cache.miss")
        return None

    def put(self, key: str, response: Dict[str, Any]) -> None:
        """Memoize one response; only successes are worth persisting.

        Failed responses (budget exhaustion, preflight rejections) stay
        out of both levels: budgets and code change, and a cached
        failure would outlive the condition that produced it.
        """
        if not response.get("ok"):
            return
        self._memory[key] = response
        if self._persist:
            _disk_put(key, response)

    def stats(self) -> Dict[str, Any]:
        """Hit/miss totals and the end-to-end hit rate."""
        hits = self.hits_memory + self.hits_disk
        total = hits + self.misses
        return {
            "entries": len(self._memory),
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "misses": self.misses,
            "hit_rate": (hits / total) if total else 0.0,
        }


__all__ = ["NAMESPACE", "VerdictCache"]
