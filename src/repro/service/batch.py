"""Per-shard batch queues between the asyncio front end and the pool.

Cache misses do not hit the executor one by one.  Each request key is
assigned to a shard (a stable function of the key's leading hex), every
shard owns an :class:`asyncio.Queue` plus one dispatcher task, and a
dispatcher drains its queue into batches of up to ``batch_size``
requests before handing the batch to the worker pool in a single
executor hop — so a thundering herd of distinct specs costs
``ceil(n / batch_size)`` dispatches per shard, not ``n``.

Duplicate keys never reach the pool twice: a key with a batch already in
flight **coalesces** onto the in-flight future
(``service.coalesced`` counter), which is what drives the end-to-end
cache hit rate toward 1 under duplicate-heavy traffic even before the
first response lands in the memo store.

Queue depth is exported as the ``service.queue_depth`` gauge (``max``
policy: a high-water mark) and every dispatch counts
``service.batches`` / ``service.batched_requests``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import counter_add, gauge_set
from .cache import VerdictCache
from .protocol import make_response

#: sentinel that tells a shard dispatcher to exit
_SHUTDOWN = object()

#: one queued unit of work:
#: (key, raw payload, future to resolve, enqueue time, shared SubmitInfo)
_Item = Tuple[
    str,
    Dict[str, Any],
    "asyncio.Future[Dict[str, Any]]",
    float,
    "SubmitInfo",
]


@dataclass
class SubmitInfo:
    """Per-request dispatch facts the access log records.

    Filled in by the dispatcher at batch-formation time; a coalesced
    submit shares the original item's info object, so every waiter on
    one in-flight key reports the same queue wait and batch size.
    """

    coalesced: bool = False
    queue_wait_seconds: Optional[float] = None
    batch_size: Optional[int] = None


def shard_of(key: str, shards: int) -> int:
    """The stable shard index of a content key."""
    return int(key[:8], 16) % shards


class BatchQueue:
    """Sharded batching dispatcher with in-flight key coalescing."""

    def __init__(
        self,
        backend: Callable[[List[Dict[str, Any]]], List[Dict[str, Any]]],
        pool: Optional[Any],
        *,
        shards: int = 2,
        batch_size: int = 8,
        cache: Optional[VerdictCache] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        self._backend = backend
        self._pool = pool
        self.shards = shards
        self.batch_size = batch_size
        self._memo = cache
        self._queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._pending: Dict[str, Tuple[asyncio.Future, SubmitInfo]] = {}
        self.dispatched_batches = 0
        self.dispatched_requests = 0
        self.coalesced = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Create the per-shard queues and dispatcher tasks."""
        self._queues = [asyncio.Queue() for _ in range(self.shards)]
        self._tasks = [
            asyncio.create_task(self._dispatch_loop(i), name=f"shard-{i}")
            for i in range(self.shards)
        ]

    async def stop(self) -> None:
        """Drain-free shutdown: wake every dispatcher and await it."""
        for q in self._queues:
            q.put_nowait(_SHUTDOWN)
        for task in self._tasks:
            await task
        self._tasks = []

    # -- submission --------------------------------------------------------

    def queue_depth(self) -> int:
        """Requests currently enqueued across all shards."""
        return sum(q.qsize() for q in self._queues)

    async def submit(self, key: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve one keyed request through the batch pipeline."""
        response, _info = await self.submit_ex(key, payload)
        return response

    async def submit_ex(
        self, key: str, payload: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], SubmitInfo]:
        """Like :meth:`submit`, plus the dispatch facts for this request.

        The pending-check plus enqueue is synchronous (no ``await``
        between them), so two coroutines submitting the same key cannot
        race past each other on a single event loop.  A coalesced
        submit's info is the *original* item's (shared object): the
        queue wait and batch size it reports are those of the dispatch
        that actually computed the response.
        """
        pending = self._pending.get(key)
        if pending is not None:
            future, info = pending
            self.coalesced += 1
            counter_add("service.coalesced")
            response = await asyncio.shield(future)
            return response, SubmitInfo(
                coalesced=True,
                queue_wait_seconds=info.queue_wait_seconds,
                batch_size=info.batch_size,
            )
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        info = SubmitInfo()
        self._pending[key] = (future, info)
        self._queues[shard_of(key, self.shards)].put_nowait(
            (key, payload, future, time.perf_counter(), info)
        )
        gauge_set("service.queue_depth", float(self.queue_depth()))
        response = await asyncio.shield(future)
        return response, info

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                return
            batch: List[_Item] = [first]
            while len(batch) < self.batch_size:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    queue.put_nowait(_SHUTDOWN)
                    break
                batch.append(item)
            await self._run_batch(shard, batch)

    async def _run_batch(self, shard: int, batch: List[_Item]) -> None:
        self.dispatched_batches += 1
        self.dispatched_requests += len(batch)
        counter_add("service.batches")
        counter_add("service.batched_requests", len(batch))
        dispatch_at = time.perf_counter()
        for _key, _payload, _fut, enqueued_at, info in batch:
            info.queue_wait_seconds = dispatch_at - enqueued_at
            info.batch_size = len(batch)
        payloads = [payload for (_key, payload, _fut, _t, _info) in batch]
        loop = asyncio.get_running_loop()
        try:
            if self._pool is None:
                results = self._backend(payloads)
            else:
                results = await loop.run_in_executor(
                    self._pool, self._backend, payloads
                )
        except Exception as exc:
            # the transport boundary: a defect in one batch must not kill
            # the shard dispatcher (the server maps these to HTTP 500;
            # the CLI path never goes through a BatchQueue, so nothing
            # is silently swallowed there)
            counter_add("service.errors.internal", len(batch))
            for key, payload, future, _enqueued_at, _info in batch:
                self._pending.pop(key, None)
                if not future.done():
                    op = payload.get("op")
                    future.set_result(
                        make_response(
                            key,
                            op if isinstance(op, str) else "decide",
                            error=(
                                "internal-error",
                                f"{type(exc).__name__}: {exc}",
                            ),
                        )
                    )
            return
        for (key, _payload, future, _t, _info), response in zip(batch, results):
            if self._memo is not None:
                self._memo.put(key, response)
            self._pending.pop(key, None)
            if not future.done():
                future.set_result(response)


__all__ = ["BatchQueue", "SubmitInfo", "shard_of"]
