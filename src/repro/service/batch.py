"""Per-shard batch queues between the asyncio front end and the pool.

Cache misses do not hit the executor one by one.  Each request key is
assigned to a shard (a stable function of the key's leading hex), every
shard owns an :class:`asyncio.Queue` plus one dispatcher task, and a
dispatcher drains its queue into batches of up to ``batch_size``
requests before handing the batch to the worker pool in a single
executor hop — so a thundering herd of distinct specs costs
``ceil(n / batch_size)`` dispatches per shard, not ``n``.

Duplicate keys never reach the pool twice: a key with a batch already in
flight **coalesces** onto the in-flight future
(``service.coalesced`` counter), which is what drives the end-to-end
cache hit rate toward 1 under duplicate-heavy traffic even before the
first response lands in the memo store.

Queue depth is exported as the ``service.queue_depth`` gauge (``max``
policy: a high-water mark) and every dispatch counts
``service.batches`` / ``service.batched_requests``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import counter_add, gauge_set
from .cache import VerdictCache
from .protocol import make_response

#: sentinel that tells a shard dispatcher to exit
_SHUTDOWN = object()

#: one queued unit of work: (key, raw payload, future to resolve)
_Item = Tuple[str, Dict[str, Any], "asyncio.Future[Dict[str, Any]]"]


def shard_of(key: str, shards: int) -> int:
    """The stable shard index of a content key."""
    return int(key[:8], 16) % shards


class BatchQueue:
    """Sharded batching dispatcher with in-flight key coalescing."""

    def __init__(
        self,
        backend: Callable[[List[Dict[str, Any]]], List[Dict[str, Any]]],
        pool: Optional[Any],
        *,
        shards: int = 2,
        batch_size: int = 8,
        cache: Optional[VerdictCache] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size}")
        self._backend = backend
        self._pool = pool
        self.shards = shards
        self.batch_size = batch_size
        self._memo = cache
        self._queues: List[asyncio.Queue] = []
        self._tasks: List[asyncio.Task] = []
        self._pending: Dict[str, asyncio.Future] = {}
        self.dispatched_batches = 0
        self.dispatched_requests = 0
        self.coalesced = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Create the per-shard queues and dispatcher tasks."""
        self._queues = [asyncio.Queue() for _ in range(self.shards)]
        self._tasks = [
            asyncio.create_task(self._dispatch_loop(i), name=f"shard-{i}")
            for i in range(self.shards)
        ]

    async def stop(self) -> None:
        """Drain-free shutdown: wake every dispatcher and await it."""
        for q in self._queues:
            q.put_nowait(_SHUTDOWN)
        for task in self._tasks:
            await task
        self._tasks = []

    # -- submission --------------------------------------------------------

    def queue_depth(self) -> int:
        """Requests currently enqueued across all shards."""
        return sum(q.qsize() for q in self._queues)

    async def submit(self, key: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Resolve one keyed request through the batch pipeline.

        The pending-check plus enqueue is synchronous (no ``await``
        between them), so two coroutines submitting the same key cannot
        race past each other on a single event loop.
        """
        pending = self._pending.get(key)
        if pending is not None:
            self.coalesced += 1
            counter_add("service.coalesced")
            return await asyncio.shield(pending)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[key] = future
        self._queues[shard_of(key, self.shards)].put_nowait(
            (key, payload, future)
        )
        gauge_set("service.queue_depth", float(self.queue_depth()))
        return await asyncio.shield(future)

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            first = await queue.get()
            if first is _SHUTDOWN:
                return
            batch: List[_Item] = [first]
            while len(batch) < self.batch_size:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _SHUTDOWN:
                    queue.put_nowait(_SHUTDOWN)
                    break
                batch.append(item)
            await self._run_batch(shard, batch)

    async def _run_batch(self, shard: int, batch: List[_Item]) -> None:
        self.dispatched_batches += 1
        self.dispatched_requests += len(batch)
        counter_add("service.batches")
        counter_add("service.batched_requests", len(batch))
        payloads = [payload for (_key, payload, _fut) in batch]
        loop = asyncio.get_running_loop()
        try:
            if self._pool is None:
                results = self._backend(payloads)
            else:
                results = await loop.run_in_executor(
                    self._pool, self._backend, payloads
                )
        except Exception as exc:
            # the transport boundary: a defect in one batch must not kill
            # the shard dispatcher (the server maps these to HTTP 500;
            # the CLI path never goes through a BatchQueue, so nothing
            # is silently swallowed there)
            counter_add("service.errors.internal", len(batch))
            for key, payload, future in batch:
                self._pending.pop(key, None)
                if not future.done():
                    op = payload.get("op")
                    future.set_result(
                        make_response(
                            key,
                            op if isinstance(op, str) else "decide",
                            error=(
                                "internal-error",
                                f"{type(exc).__name__}: {exc}",
                            ),
                        )
                    )
            return
        for (key, _payload, future), response in zip(batch, results):
            if self._memo is not None:
                self._memo.put(key, response)
            self._pending.pop(key, None)
            if not future.done():
                future.set_result(response)


__all__ = ["BatchQueue", "shard_of"]
