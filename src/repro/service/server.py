"""The asyncio verdict server: stdlib HTTP over the shared request layer.

One process, one event loop, no framework: connections are accepted with
:func:`asyncio.start_server` and HTTP/1.1 is parsed by hand (request
line, headers, ``Content-Length`` body — the subset the protocol
needs).  The solve path is

    parse -> resolve task -> content key -> cache probe -> batch submit

where the cache probe serves hits without touching the worker pool and a
miss rides a per-shard batch into :func:`repro.service.workers
.run_request_batch`.  Responses to ``POST /v1/solve`` are
``repro-service/1`` envelopes; ``GET /healthz`` and ``GET /v1/stats``
exist for probes and the load generator.

Live observability (the tentpole wiring):

* every request gets a **content-derived request id** —
  ``<key[:12]>.<seq>`` for solve requests (the same content key the
  cache is addressed by, so the id is greppable straight into the store)
  — threaded into the worker span tree as the ``service.batch`` span's
  ``request_ids`` attribute and onto a structured JSONL **access log**
  line (:mod:`repro.service.accesslog`);
* ``GET /metrics`` serves the :class:`repro.obs.metrics.MetricsRegistry`
  as Prometheus text exposition (default) or the ``repro-metrics/1``
  JSON variant (``?format=json``): per-op and per-cache-tier latency
  histograms, request/coalescing rate meters, HTTP status counters, and
  uptime/queue-depth/cache-size gauges;
* a :class:`repro.obs.sampler.ResourceSampler` thread records RSS,
  cache entry counts/bytes per tier, keymap size and queue depth into a
  ring exported as the snapshot's ``resources`` time series — the data
  the soak harness fits growth slopes over.

The event-loop side records obs **counters and gauges only** — the obs
recorder's span stack is not safe across interleaved coroutines, so
spans live in the worker function, not here.  The metrics registry's
own instruments are lock-guarded and safe from any thread.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from ..obs import counter_add
from ..obs.metrics import MetricsRegistry, build_metrics, prometheus_text
from ..obs.sampler import ResourceSampler, read_rss_bytes
from .accesslog import AccessLog
from .batch import BatchQueue, SubmitInfo
from .cache import VerdictCache
from .execution import resolve_task
from .keys import canonical_dumps, content_hash
from .protocol import (
    ProtocolError,
    SCHEMA,
    canonical_body,
    parse_request,
    request_key,
)
from .workers import make_pool, run_request_batch

#: maximum accepted request body, in bytes (task JSON is small; a larger
#: body is almost certainly a client bug or abuse)
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


@dataclass
class ServerConfig:
    """Tunables for one :class:`SolvabilityServer` instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; read ``server.port`` after start
    shards: int = 2
    batch_size: int = 8
    workers: int = 1
    pool: str = "thread"
    persist: bool = True
    access_log: Optional[str] = None  # JSONL path; None = no access log
    sample_interval: float = 1.0  # resource sampler period, seconds


class SolvabilityServer:
    """Async HTTP frontend over the batch queue and verdict cache."""

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self.cache = VerdictCache(persist=self.config.persist)
        self._pool = make_pool(self.config.pool, self.config.workers)
        self.batches = BatchQueue(
            run_request_batch,
            self._pool,
            shards=self.config.shards,
            batch_size=self.config.batch_size,
            cache=self.cache,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None
        self.requests_total = 0
        self.errors_total = 0
        # spelling -> (request key, canonical body).  Computing a request
        # key means *building the task* (a zoo constructor plus tagged
        # re-serialization, tens of ms for the bigger complexes), which
        # would dominate every cached hit; a byte-identical payload can
        # reuse the canonicalization the first sighting paid for.
        self._keymap: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self.metrics = MetricsRegistry()
        self.access_log: Optional[AccessLog] = None
        self.sampler: Optional[ResourceSampler] = None
        self._started_unix: Optional[float] = None
        self._started_monotonic: Optional[float] = None
        self._request_seq = 0  # event-loop-only; suffixes request ids
        self._register_gauges()

    def _register_gauges(self) -> None:
        """Export-time gauges: read on scrape, never pushed."""
        self.metrics.gauge_fn("uptime_seconds", self.uptime_seconds)
        self.metrics.gauge_fn(
            "queue_depth", lambda: float(self.batches.queue_depth())
        )
        self.metrics.gauge_fn("keymap_entries", lambda: float(len(self._keymap)))
        self.metrics.gauge_fn(
            "cache_memory_entries",
            lambda: float(self.cache.memory_size_stats()["entries"]),
        )
        self.metrics.gauge_fn("rss_bytes", read_rss_bytes)

    def uptime_seconds(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _resource_sources(self) -> Dict[str, Any]:
        """What the background sampler records each tick.

        The disk-tier read walks the diskstore namespace (O(entries));
        at soak scale that is thousands of files per second of interval,
        which stays well under the sampler period.
        """
        return {
            "rss_bytes": read_rss_bytes,
            "keymap_entries": lambda: float(len(self._keymap)),
            "queue_depth": lambda: float(self.batches.queue_depth()),
            "cache_memory_entries": lambda: float(
                self.cache.memory_size_stats()["entries"]
            ),
            "cache_memory_bytes": lambda: float(
                self.cache.memory_size_stats()["approx_bytes"]
            ),
            "cache_disk_entries": lambda: float(
                self.cache.size_stats()["disk"]["entries"]
            ),
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listen socket and start the shard dispatchers."""
        self._started_unix = time.time()
        self._started_monotonic = time.monotonic()
        if self.config.access_log:
            self.access_log = AccessLog(self.config.access_log)
        self.sampler = ResourceSampler(
            self._resource_sources(), interval=self.config.sample_interval
        )
        self.sampler.start()
        await self.batches.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain the dispatchers, release the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batches.stop()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.sampler is not None:
            self.sampler.stop()
        if self.access_log is not None:
            self.access_log.close()

    async def serve_forever(self) -> None:
        """Block on the listen socket until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- HTTP --------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except ProtocolError as exc:
                    counter_add("service.errors.bad_request")
                    self.metrics.counter_add("http_responses", status="400")
                    await self._write_response(
                        writer, 400, {"error": str(exc)}, keep_alive=False
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                started = time.perf_counter()
                status, payload, access = await self._route(method, path, body)
                latency = time.perf_counter() - started
                self._observe(method, path, status, latency, access)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _observe(
        self,
        method: str,
        path: str,
        status: int,
        latency: float,
        access: Dict[str, Any],
    ) -> None:
        """Record one completed request: histograms, meters, access log."""
        route = path.partition("?")[0]  # keep label cardinality query-free
        op = access.get("op") or route.lstrip("/").replace("/", ".") or "root"
        self.metrics.histogram("request_latency_seconds", op=op).record(latency)
        self.metrics.meter("requests").record()
        self.metrics.counter_add("http_responses", status=str(status))
        if status >= 400:
            self.metrics.meter("errors").record()
        tier = access.get("cache_tier")
        if access.get("op"):  # solve requests only: tier is meaningful
            self.metrics.histogram(
                "tier_latency_seconds", tier=tier or "miss"
            ).record(latency)
        if access.get("coalesced"):
            self.metrics.meter("coalesced").record()
        if self.access_log is not None:
            self.access_log.write(
                request_id=access.get("request_id", "-"),
                method=method,
                path=path,
                status=status,
                latency_seconds=latency,
                op=access.get("op"),
                key_prefix=access.get("key_prefix"),
                cache_tier=tier,
                coalesced=access.get("coalesced"),
                queue_wait_seconds=access.get("queue_wait_seconds"),
                batch_size=access.get("batch_size"),
            )

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request, or ``None`` on a closed socket."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(f"request body of {length} bytes is too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    def _next_request_id(self, content: str) -> str:
        """``<content-derived 12 hex>.<per-process sequence>``.

        The prefix is the request's content key (or a hash of the
        method+path for non-solve endpoints), so identical requests
        share a greppable prefix; the sequence disambiguates the
        individual occurrence.  Event-loop-only increment — no lock.
        """
        self._request_seq += 1
        return f"{content[:12]}.{self._request_seq:06d}"

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Union[Dict[str, Any], Tuple[str, str]], Dict[str, Any]]:
        self.requests_total += 1
        counter_add("service.requests")
        path, _, query = path.partition("?")
        access: Dict[str, Any] = {
            "request_id": self._next_request_id(content_hash(f"{method} {path}"))
        }
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, access
            return 200, {"status": "ok", "schema": SCHEMA}, access
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "stats is GET-only"}, access
            return 200, self.stats(), access
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, access
            snapshot = self.metrics_snapshot()
            if "format=json" in query:
                return 200, snapshot, access
            return 200, (prometheus_text(snapshot), "text/plain; version=0.0.4"), access
        if path == "/v1/solve":
            if method != "POST":
                return 405, {"error": "solve is POST-only"}, access
            return await self._solve(body, access)
        return 404, {"error": f"no route {path!r}"}, access

    async def _solve(
        self, body: bytes, access: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any], Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.errors_total += 1
            counter_add("service.errors.bad_request")
            return 400, {"error": f"request body is not JSON: {exc}"}, access
        spelling = canonical_dumps(payload)
        known = self._keymap.get(spelling)
        if known is not None:
            key, canonical = known
            counter_add("service.keymap.hit")
            counter_add(f"service.op.{canonical['op']}")
        else:
            try:
                req = parse_request(payload)
                counter_add(f"service.op.{req.op}")
                task = resolve_task(req.task)
                key = request_key(req, task)
            except ProtocolError as exc:
                self.errors_total += 1
                counter_add("service.errors.bad_request")
                return 400, {"error": str(exc)}, access
            canonical = canonical_body(req, task)
            self._keymap[spelling] = (key, canonical)
        # re-derive the id from the content key so the access log, the
        # span attr and the cache entry all share one greppable prefix
        request_id = self._next_request_id(key)
        access.update(
            request_id=request_id,
            op=canonical["op"],
            key_prefix=key[:12],
        )
        hit, tier = self.cache.get_with_tier(key)
        if hit is not None:
            access["cache_tier"] = tier
            return 200, dict(hit, cached=True), access
        # submit the *canonical* body so every spelling of the same
        # request coalesces onto one in-flight computation; the request
        # id rides as a transport-only key the worker strips before
        # execution (and the keymap's stored dict is never mutated)
        response, info = await self.batches.submit_ex(
            key, dict(canonical, _request_id=request_id)
        )
        access.update(
            cache_tier=None,
            coalesced=info.coalesced,
            queue_wait_seconds=info.queue_wait_seconds,
            batch_size=info.batch_size,
        )
        if (
            not response.get("ok")
            and response.get("error", {}).get("kind") == "internal-error"
        ):
            self.errors_total += 1
            return 500, response, access
        return 200, response, access

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], Tuple[str, str]],
        keep_alive: bool,
    ) -> None:
        if isinstance(payload, tuple):
            text, content_type = payload
            body = text.encode("utf-8")
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- introspection -----------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One ``repro-metrics/1`` snapshot (instruments + resource ring)."""
        resources = self.sampler.series() if self.sampler is not None else None
        return build_metrics(self.metrics, resources=resources)

    def stats(self) -> Dict[str, Any]:
        """A JSON-safe snapshot for ``GET /v1/stats`` and the bench."""
        cache_stats = self.cache.stats()
        cache_stats["tiers"] = self.cache.size_stats()
        return {
            "schema": SCHEMA,
            "requests": self.requests_total,
            "errors": self.errors_total,
            "uptime_seconds": self.uptime_seconds(),
            "keymap": {"entries": len(self._keymap)},
            "cache": cache_stats,
            "batch": {
                "shards": self.batches.shards,
                "batch_size": self.batches.batch_size,
                "dispatched_batches": self.batches.dispatched_batches,
                "dispatched_requests": self.batches.dispatched_requests,
                "coalesced": self.batches.coalesced,
                "queue_depth": self.batches.queue_depth(),
            },
            "pool": self.config.pool,
            "workers": self.config.workers,
        }


class ServerThread:
    """A server on a dedicated thread with its own event loop.

    The synchronous wrapper tests and the bench harness use: ``start()``
    blocks until the listen port is known, ``stop()`` is threadsafe and
    joins the thread.  Usable as a context manager.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.server = SolvabilityServer(config)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        port = self.server.port
        if port is None:
            raise RuntimeError("server is not running")
        return port

    @property
    def url(self) -> str:
        return f"http://{self.server.config.host}:{self.port}"

    def start(self, timeout: float = 30.0) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = [
    "MAX_BODY_BYTES",
    "ServerConfig",
    "ServerThread",
    "SolvabilityServer",
]
