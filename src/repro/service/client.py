"""Service client and load generator for the verdict server.

:class:`ServiceClient` is a thin, dependency-free HTTP client
(:mod:`http.client`) used by tests, the bench harness and the
``serve-bench`` CLI.  The load-generation half builds **duplicate-heavy**
request streams — a zipf-skewed draw over a small spec pool, seeded so
every run replays the same traffic — because the cache-hit behaviour the
service exists for only shows up under repeated keys.

Latency accounting is client-side wall clock per request (the number a
caller actually experiences), summarized with the nearest-rank
percentiles the perf harness uses.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


class ServiceError(RuntimeError):
    """An HTTP-level failure talking to the verdict server."""


def _split_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` -> ``(host, port)``; scheme optional."""
    trimmed = url.strip()
    for prefix in ("http://", "https://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
            break
    trimmed = trimmed.rstrip("/")
    host, _, port = trimmed.partition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port or http://host:port, got {url!r}")
    return host, int(port)


class ServiceClient:
    """One keep-alive HTTP connection to a :class:`SolvabilityServer`."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        host, port = _split_url(url)
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)
        self._conn.connect()
        # stdlib HTTPConnection leaves Nagle on and sends headers and
        # body as two small segments; without TCP_NODELAY that pattern
        # deadlocks with the peer's delayed ACK (~40ms per request),
        # which would swamp every cached-hit latency we measure
        self._conn.sock.setsockopt(
            socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
        )

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                f"{method} {path}: non-JSON response ({exc}): {raw[:200]!r}"
            ) from exc
        return response.status, decoded

    def solve(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST one request payload; returns the response envelope.

        Raises :class:`ServiceError` on transport-level failures (4xx
        with no envelope); protocol-level failures come back as
        ``ok: false`` envelopes for the caller to inspect.
        """
        status, decoded = self._request("POST", "/v1/solve", payload)
        if status != 200 and "schema" not in decoded:
            raise ServiceError(
                f"POST /v1/solve -> {status}: {decoded.get('error', decoded)}"
            )
        return decoded

    def decide(
        self, task: Any, params: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Convenience wrapper: a decide request for one task spec."""
        payload: Dict[str, Any] = {"op": "decide", "task": task}
        if params:
            payload["params"] = params
        return self.solve(payload)

    def stats(self) -> Dict[str, Any]:
        status, decoded = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(f"GET /v1/stats -> {status}")
        return decoded

    def metrics(self) -> Dict[str, Any]:
        """One validated ``repro-metrics/1`` snapshot (the JSON variant)."""
        from ..obs.metrics import validate_metrics

        status, decoded = self._request("GET", "/metrics?format=json")
        if status != 200:
            raise ServiceError(f"GET /metrics?format=json -> {status}")
        problems = validate_metrics(decoded)
        if problems:
            raise ServiceError(f"invalid metrics snapshot: {problems}")
        return decoded

    def metrics_text(self) -> str:
        """The Prometheus text exposition, unparsed."""
        status, raw = self._request_raw("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> {status}")
        return raw.decode("utf-8")

    def _request_raw(self, method: str, path: str) -> Tuple[int, bytes]:
        """A body-less request whose response is returned as raw bytes."""
        self._conn.request(method, path)
        response = self._conn.getresponse()
        return response.status, response.read()

    def health(self) -> bool:
        try:
            status, decoded = self._request("GET", "/healthz")
        except (OSError, ServiceError):
            return False
        return status == 200 and decoded.get("status") == "ok"

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Workload generation
# ---------------------------------------------------------------------------

#: default zoo names a generated workload draws from — tasks whose
#: uncached decide does real work (tens of ms), with both verdicts
#: represented, so the cached-vs-uncached split measures something
DEFAULT_SPEC_POOL = (
    "3-set-agreement",
    "loop-filled",
    "approx-agreement",
    "loop-hollow",
    "pinwheel",
    "2-set-agreement",
)


def zipf_weights(n: int, skew: float = 1.2) -> List[float]:
    """Unnormalized zipf weights ``1 / rank**skew`` for ranks ``1..n``."""
    if n < 1:
        raise ValueError(f"need at least one rank, got {n}")
    return [1.0 / (rank**skew) for rank in range(1, n + 1)]


def make_workload(
    n_requests: int,
    *,
    pool: Sequence[Any] = DEFAULT_SPEC_POOL,
    skew: float = 1.2,
    seed: int = 0,
    op: str = "decide",
) -> List[Dict[str, Any]]:
    """A seeded, zipf-skewed stream of request payloads.

    With the default skew the most popular spec accounts for roughly
    half the stream, so a warm cache should field the bulk of the
    traffic — the duplicate-heavy regime the service is designed for.
    """
    rng = random.Random(seed)
    specs = list(pool)
    weights = zipf_weights(len(specs), skew)
    return [
        {"op": op, "task": rng.choices(specs, weights=weights)[0]}
        for _ in range(n_requests)
    ]


def workload_duplication(requests: Sequence[Dict[str, Any]]) -> float:
    """Total requests per distinct payload (>= 1.0; 10.0 = 10x duplication)."""
    if not requests:
        return 0.0
    distinct = {json.dumps(r, sort_keys=True) for r in requests}
    return len(requests) / len(distinct)


# ---------------------------------------------------------------------------
# Load running
# ---------------------------------------------------------------------------


@dataclass
class LoadResult:
    """Per-request latencies and envelope flags from one load run."""

    latencies: List[float] = field(default_factory=list)
    cached_flags: List[bool] = field(default_factory=list)
    ok_count: int = 0
    error_count: int = 0
    elapsed: float = 0.0

    @property
    def n_requests(self) -> int:
        return len(self.latencies)

    @property
    def hit_rate(self) -> float:
        if not self.cached_flags:
            return 0.0
        return sum(self.cached_flags) / len(self.cached_flags)

    @property
    def throughput(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.n_requests / self.elapsed

    def percentile(self, p: float) -> float:
        return percentile(self.latencies, p)


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile, ``p`` in [0, 100]; 0.0 on empty input."""
    if not values:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(p / 100 * len(ordered))) - 1))
    if p == 0:
        rank = 0
    return ordered[rank]


def run_load(
    url: str,
    requests: Sequence[Dict[str, Any]],
    *,
    concurrency: int = 4,
) -> LoadResult:
    """Replay a request stream against a server and measure client-side.

    ``concurrency`` worker threads each hold one keep-alive connection
    and pull payloads from a shared cursor, so the stream's order is
    preserved per worker but interleaves across workers — the same shape
    a real duplicate-heavy client population produces.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be at least 1, got {concurrency}")
    result = LoadResult()
    lock = threading.Lock()
    cursor = iter(range(len(requests)))

    def worker() -> None:
        client = ServiceClient(url)
        try:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                started = time.perf_counter()
                response = client.solve(requests[index])
                latency = time.perf_counter() - started
                with lock:
                    result.latencies.append(latency)
                    result.cached_flags.append(bool(response.get("cached")))
                    if response.get("ok"):
                        result.ok_count += 1
                    else:
                        result.error_count += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"repro-load-{i}")
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.elapsed = time.perf_counter() - started
    return result


__all__ = [
    "DEFAULT_SPEC_POOL",
    "LoadResult",
    "ServiceClient",
    "ServiceError",
    "make_workload",
    "percentile",
    "run_load",
    "workload_duplication",
    "zipf_weights",
]
