"""The worker-pool backend: batches of requests through the decide path.

A worker executes whole batches, not single requests: the per-dispatch
overhead (executor hop, span bookkeeping) is paid once per batch, and a
long-lived worker keeps its interned simplices, memoized tables and
warm diskstore handles across batches — the same warm-table effect the
census pool measured at 4–8.6x.

``pool="thread"`` (default) runs batches on a thread pool inside the
server process: counters and spans land in the server's recorder, and
with the default single worker the span tree stays well-nested.
``pool="process"`` forks a :class:`~concurrent.futures.ProcessPoolExecutor`
for CPU-parallel misses (worker-side telemetry is not merged back —
acceptable for a throughput-oriented deployment).  ``pool="inline"``
executes synchronously in the caller, which tests use for determinism.
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..obs import counter_add, span
from .execution import execute_payload

#: accepted pool kinds for :func:`make_pool`
POOL_KINDS = ("thread", "process", "inline")


def run_request_batch(payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute one batch of raw request payloads, in order.

    The module-level entry point every pool kind dispatches (picklable,
    so process pools can import it by reference).  One response per
    payload, positionally aligned with the input.

    Payloads may carry a ``_request_id`` rider (the server's per-request
    id).  Riders are stripped before execution — the protocol layer
    tolerates unknown keys, but the request key must hash the canonical
    body, not transport metadata — and surface on the ``service.batch``
    span as the ``request_ids`` attribute, which is what joins an
    access-log line to the span tree that computed it.
    """
    counter_add("service.worker.batches")
    counter_add("service.worker.requests", len(payloads))
    request_ids = [
        rid
        for payload in payloads
        if isinstance(rid := payload.get("_request_id"), str)
    ]
    cleaned = [
        {k: v for k, v in payload.items() if k != "_request_id"}
        if "_request_id" in payload
        else payload
        for payload in payloads
    ]
    with span(
        "service.batch",
        size=len(cleaned),
        request_ids=",".join(request_ids) if request_ids else "",
    ):
        return [execute_payload(payload) for payload in cleaned]


def warm_worker() -> None:
    """Process-pool initializer: build the zoo registry's tables once."""
    from .execution import ZOO  # noqa: F401 - imported for its side effects


def make_pool(kind: str, workers: int = 1) -> Optional[Executor]:
    """An executor for :func:`run_request_batch`, or ``None`` for inline."""
    if kind == "inline":
        return None
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if kind == "thread":
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-service"
        )
    if kind == "process":
        return ProcessPoolExecutor(max_workers=workers, initializer=warm_worker)
    raise ValueError(f"unknown pool kind {kind!r}; use one of {POOL_KINDS}")


__all__ = ["POOL_KINDS", "make_pool", "run_request_batch", "warm_worker"]
