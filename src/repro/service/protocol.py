"""The ``repro-service/1`` request/response protocol.

One schema for every frontend: the CLI subcommands, the asyncio HTTP
server and the load-generator client all speak request/response payloads
defined here, so a spec decided over HTTP and the same spec decided by
``python -m repro decide`` produce **bit-identical** verdict JSON.

Requests
--------

A request is a JSON object::

    {"op": "decide" | "analyze" | "synthesize",
     "task": "<zoo name>" | {<tagged task JSON (repro.io)>},
     "params": {"max_rounds": 2, ...}}

Canonicalization resolves the task spec to a concrete
:class:`~repro.tasks.task.Task` and re-serializes it through
:func:`repro.io.task_to_json`, so the zoo name ``"majority"`` and its
saved JSON file hash to the same content key — the property the
content-addressed verdict cache depends on.

Responses
---------

A response envelope is ``{"schema": "repro-service/1", "key": …, "op":
…, "ok": bool, "cached": bool, …}`` with an op-specific payload:
``verdict`` (``repro-verdict/1``, deterministic — no wall-clock or
node-count noise), ``analysis``, or ``synthesis``; failures carry
``error: {kind, message}`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..io import task_from_json, task_to_json
from ..tasks.task import Task
from .keys import json_hash

#: envelope format identifier; bump the suffix on breaking changes
SCHEMA = "repro-service/1"

#: deterministic verdict payload identifier (shared with ``decide --json``)
VERDICT_SCHEMA = "repro-verdict/1"

#: operations the service understands, with their parameter defaults
OP_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "decide": {"max_rounds": 2},
    "analyze": {"max_rounds": 2},
    "synthesize": {
        "max_rounds": 2,
        "figure7": False,
        "runs": 10,
        "facets_only": False,
    },
}

#: parameter name -> required python type (bool checked before int:
#: ``isinstance(True, int)`` would otherwise let booleans through)
_PARAM_TYPES: Dict[str, type] = {
    "max_rounds": int,
    "figure7": bool,
    "runs": int,
    "facets_only": bool,
}


class ProtocolError(ValueError):
    """A malformed or unresolvable request (HTTP 400 / CLI usage error)."""


@dataclass
class ServiceRequest:
    """One parsed request: operation, task spec and merged parameters."""

    op: str
    task: Union[str, Dict[str, Any]]
    params: Dict[str, Any] = field(default_factory=dict)

    def merged_params(self) -> Dict[str, Any]:
        """Defaults for the op overlaid with the request's parameters."""
        merged = dict(OP_DEFAULTS[self.op])
        merged.update(self.params)
        return merged


def parse_request(payload: Any) -> ServiceRequest:
    """Validate a raw JSON payload into a :class:`ServiceRequest`."""
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    op = payload.get("op")
    if op not in OP_DEFAULTS:
        raise ProtocolError(
            f"op must be one of {sorted(OP_DEFAULTS)}, got {op!r}"
        )
    task = payload.get("task")
    if not (isinstance(task, str) and task) and not isinstance(task, dict):
        raise ProtocolError(
            "task must be a zoo name (non-empty string) or a task JSON object"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object")
    defaults = OP_DEFAULTS[op]
    for name, value in params.items():
        if name not in defaults:
            raise ProtocolError(
                f"unknown parameter {name!r} for op {op!r}; "
                f"known: {sorted(defaults)}"
            )
        want = _PARAM_TYPES[name]
        ok = (
            isinstance(value, bool)
            if want is bool
            else isinstance(value, int) and not isinstance(value, bool)
        )
        if not ok:
            raise ProtocolError(
                f"parameter {name!r} must be {want.__name__}, got {value!r}"
            )
    if "max_rounds" in params and params["max_rounds"] < 0:
        raise ProtocolError("max_rounds must be non-negative")
    return ServiceRequest(op=op, task=task, params=dict(params))


def canonical_body(req: ServiceRequest, task: Task) -> Dict[str, Any]:
    """The canonical, JSON-safe body a request key hashes.

    ``task`` is the resolved Task re-serialized through the library's
    tagged-JSON encoding, so equal tasks canonicalize equally however
    they were spelled in the request.
    """
    return {
        "op": req.op,
        "params": req.merged_params(),
        "task": task_to_json(task),
    }


def request_key(req: ServiceRequest, task: Task) -> str:
    """Content-addressed cache key of a canonicalized request."""
    return json_hash(canonical_body(req, task))


def task_from_request(req: ServiceRequest) -> Task:
    """Decode an inline task JSON object from a request.

    Zoo-name (string) specs are resolved by the execution layer, which
    owns the registry; this helper covers only the inline-JSON form.
    """
    try:
        return task_from_json(req.task)  # type: ignore[arg-type]
    except Exception as exc:
        raise ProtocolError(f"invalid task JSON: {exc}") from exc


# ---------------------------------------------------------------------------
# Verdict JSON (repro-verdict/1) — deterministic, shared with the CLI
# ---------------------------------------------------------------------------


def verdict_to_json(verdict) -> Dict[str, Any]:
    """The deterministic JSON form of a :class:`SolvabilityVerdict`.

    Only replay-stable fields are included — status, certificate, split
    count — never wall-clock timings or host-dependent stats, so the CLI
    and the service emit byte-identical documents for the same spec.
    """
    from ..solvability import Status

    payload: Dict[str, Any] = {
        "schema": VERDICT_SCHEMA,
        "status": verdict.status.value,
        "solvable": verdict.solvable,
        "task": verdict.task.name or None,
        "n_processes": verdict.task.n_processes,
        "splits": verdict.transform.n_splits if verdict.transform else 0,
    }
    if verdict.status is Status.UNSOLVABLE and verdict.obstruction is not None:
        payload["certificate"] = {
            "kind": "obstruction",
            "obstruction": verdict.obstruction.kind,
            "detail": verdict.obstruction.detail,
        }
    elif verdict.status is Status.SOLVABLE:
        if verdict.witness_rounds is not None:
            payload["certificate"] = {
                "kind": "witness-map",
                "rounds": verdict.witness_rounds,
                "chromatic": bool(verdict.witness_chromatic),
            }
        else:
            # two-process tasks can be SOLVABLE by Proposition 5.4 with
            # no explicit witness inside the depth budget
            payload["certificate"] = {"kind": "proposition-5.4"}
    else:
        payload["certificate"] = {"kind": "none"}
    return payload


# ---------------------------------------------------------------------------
# Response envelopes
# ---------------------------------------------------------------------------


def make_response(
    key: str,
    op: str,
    *,
    cached: bool = False,
    verdict: Optional[Dict[str, Any]] = None,
    analysis: Optional[Dict[str, Any]] = None,
    synthesis: Optional[Dict[str, Any]] = None,
    error: Optional[Tuple[str, str]] = None,
) -> Dict[str, Any]:
    """Assemble one response envelope; ``error`` is ``(kind, message)``."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "key": key,
        "op": op,
        "ok": error is None,
        "cached": cached,
    }
    if verdict is not None:
        payload["verdict"] = verdict
    if analysis is not None:
        payload["analysis"] = analysis
    if synthesis is not None:
        payload["synthesis"] = synthesis
    if error is not None:
        kind, message = error
        payload["error"] = {"kind": kind, "message": message}
    return payload


def validate_response(payload: Any) -> List[str]:
    """Check one envelope against ``repro-service/1``; returns problems.

    Dependency-free and strict, in the style of
    :func:`repro.perf.validate_report` — CI smoke jobs validate every
    served response so schema drift fails fast.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["response must be an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    if not (isinstance(payload.get("key"), str) and payload["key"]):
        errors.append("key must be a non-empty string")
    if payload.get("op") not in OP_DEFAULTS:
        errors.append(f"op must be one of {sorted(OP_DEFAULTS)}")
    for flag in ("ok", "cached"):
        if not isinstance(payload.get(flag), bool):
            errors.append(f"{flag} must be a boolean")
    if payload.get("ok"):
        if payload.get("op") == "decide" and "verdict" not in payload:
            errors.append("a successful decide response must carry a verdict")
        verdict = payload.get("verdict")
        if verdict is not None:
            if not isinstance(verdict, dict):
                errors.append("verdict must be an object")
            elif verdict.get("schema") != VERDICT_SCHEMA:
                errors.append(f"verdict.schema must be {VERDICT_SCHEMA!r}")
            elif verdict.get("status") not in (
                "solvable",
                "unsolvable",
                "unknown",
            ):
                errors.append("verdict.status must be a Status value")
    else:
        error = payload.get("error")
        if not isinstance(error, dict):
            errors.append("a failed response must carry an error object")
        else:
            for fld in ("kind", "message"):
                if not isinstance(error.get(fld), str):
                    errors.append(f"error.{fld} must be a string")
    return errors


__all__ = [
    "OP_DEFAULTS",
    "ProtocolError",
    "SCHEMA",
    "ServiceRequest",
    "VERDICT_SCHEMA",
    "canonical_body",
    "make_response",
    "parse_request",
    "request_key",
    "task_from_request",
    "validate_response",
    "verdict_to_json",
]
