"""One request/response layer shared by the CLI and the service.

``python -m repro decide|analyze|synthesize`` and the asyncio server
used to duplicate spec parsing, task resolution, verdict rendering and
exit-code mapping; this module is the single copy both now call.  A
frontend turns user input into a :class:`ServiceRequest`, calls
:func:`execute_request`, and renders the returned
:class:`ExecutionOutcome` however it likes (human text, JSON over HTTP)
— the response envelope and the exit code are computed once, here.

Failure modes are explicit: :data:`EXPECTED_FAILURES` names the three
documented ways a request can fail (`SynthesisError`,
`SearchBudgetExceeded`, `PreflightError`); exactly these are mapped to
``ok: false`` responses with exit code 1.  Anything else is a
programming error and **propagates** — the CLI shows the traceback, the
server's transport boundary turns it into an HTTP 500.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..analysis import analyze_task
from ..check.preflight import PreflightError
from ..io import load_task
from ..runtime import SynthesisError, synthesize_protocol, validate_protocol
from ..solvability import SearchBudgetExceeded, decide_solvability
from ..tasks import zoo
from ..tasks.task import Task
from .protocol import (
    ProtocolError,
    ServiceRequest,
    make_response,
    request_key,
    task_from_request,
    verdict_to_json,
)

#: name -> zero-argument constructor for every addressable zoo task
#: (the single registry lives in :func:`repro.tasks.zoo.standard_zoo`)
ZOO: Dict[str, Callable[[], Task]] = zoo.standard_zoo()

#: the documented failure modes; everything else is a bug and propagates
EXPECTED_FAILURES = (SynthesisError, SearchBudgetExceeded, PreflightError)

#: exception class name -> response error kind
_FAILURE_KINDS = {
    SynthesisError: "synthesis-error",
    SearchBudgetExceeded: "search-budget-exceeded",
    PreflightError: "preflight-error",
}


def resolve_task(spec: Any) -> Task:
    """Resolve a request's task spec: zoo name, ``*.json`` path, or JSON.

    Raises :class:`ProtocolError` on an unknown name or unreadable file;
    frontends map that to their usage-error convention (CLI
    ``SystemExit``, HTTP 400).
    """
    if isinstance(spec, dict):
        return task_from_request(ServiceRequest(op="decide", task=spec))
    if spec in ZOO:
        return ZOO[spec]()
    if isinstance(spec, str) and spec.endswith(".json"):
        try:
            return load_task(spec)
        except (OSError, ValueError) as exc:
            raise ProtocolError(f"cannot load task file {spec!r}: {exc}") from exc
    raise ProtocolError(
        f"unknown task {spec!r}; use one of {', '.join(sorted(ZOO))} "
        "or a .json file"
    )


@dataclass
class ExecutionOutcome:
    """A response envelope plus the rich objects a CLI wants to print."""

    response: Dict[str, Any]
    exit_code: int
    task: Optional[Task] = None
    verdict: Any = None
    report: Any = None
    protocol: Any = None
    validation: Any = None


def response_exit_code(response: Dict[str, Any]) -> int:
    """The CLI exit-code convention, derived from a response envelope.

    ``0`` success / definitive answer, ``1`` failure (expected failure
    modes, validation violations), ``2`` inconclusive (UNKNOWN verdict).
    """
    if not response.get("ok"):
        return 1
    verdict = response.get("verdict")
    if verdict is not None and verdict.get("status") == "unknown":
        return 2
    synthesis = response.get("synthesis")
    if synthesis is not None and not synthesis.get("ok"):
        return 1
    return 0


def execute_request(req: ServiceRequest) -> ExecutionOutcome:
    """Resolve, execute and package one request.

    Pure given the spec: the same request always yields the same
    ``response`` (the envelope carries no timings or host details),
    which is what makes responses content-addressable.
    """
    task = resolve_task(req.task)
    key = request_key(req, task)
    params = req.merged_params()
    if req.op == "decide":
        verdict = decide_solvability(task, max_rounds=params["max_rounds"])
        response = make_response(key, req.op, verdict=verdict_to_json(verdict))
        return ExecutionOutcome(
            response=response,
            exit_code=response_exit_code(response),
            task=task,
            verdict=verdict,
        )
    if req.op == "analyze":
        report = analyze_task(task, max_rounds=params["max_rounds"])
        response = make_response(
            key,
            req.op,
            verdict=verdict_to_json(report.verdict),
            analysis={
                "splits": report.n_splits,
                "laps": report.lap_count,
                "o_prime_components": report.o_prime_components,
            },
        )
        return ExecutionOutcome(
            response=response,
            exit_code=response_exit_code(response),
            task=task,
            verdict=report.verdict,
            report=report,
        )
    # synthesize: the three documented failure modes become ok:false
    # responses; any other exception is a defect and propagates with its
    # traceback intact (the old CLI's bare ``except Exception`` hid those)
    try:
        protocol = synthesize_protocol(
            task,
            max_rounds=params["max_rounds"],
            prefer_direct=not params["figure7"],
        )
    except EXPECTED_FAILURES as exc:
        response = make_response(
            key, req.op, error=(_failure_kind(exc), str(exc))
        )
        return ExecutionOutcome(response=response, exit_code=1, task=task)
    validation = validate_protocol(
        task,
        protocol.factories,
        participation="facets" if params["facets_only"] else "all",
        random_runs=params["runs"],
    )
    response = make_response(
        key,
        req.op,
        synthesis={
            "mode": protocol.mode,
            "rounds": protocol.rounds,
            "validated_runs": validation.runs,
            "ok": validation.ok,
        },
    )
    return ExecutionOutcome(
        response=response,
        exit_code=response_exit_code(response),
        task=task,
        protocol=protocol,
        validation=validation,
    )


def _failure_kind(exc: BaseException) -> str:
    for cls, kind in _FAILURE_KINDS.items():
        if isinstance(exc, cls):
            return kind
    return type(exc).__name__  # pragma: no cover - EXPECTED_FAILURES only


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Parse and execute one raw JSON request; the worker-pool entry.

    Malformed payloads become ``protocol-error`` responses instead of
    exceptions so one bad request in a batch cannot poison its
    batch-mates; programming errors still propagate (the batch
    dispatcher's transport boundary maps them to internal errors).
    """
    try:
        req = parse_request_payload(payload)
        return execute_request(req).response
    except ProtocolError as exc:
        from .protocol import OP_DEFAULTS

        op = payload.get("op") if isinstance(payload, dict) else None
        return make_response(
            _payload_key(payload),
            op if op in OP_DEFAULTS else "decide",
            error=("protocol-error", str(exc)),
        )


def parse_request_payload(payload: Dict[str, Any]) -> ServiceRequest:
    """:func:`repro.service.protocol.parse_request`, re-exported for pools."""
    from .protocol import parse_request

    return parse_request(payload)


def _payload_key(payload: Any) -> str:
    """A fallback key for a payload that never canonicalized."""
    from .keys import json_hash

    return json_hash(payload)


__all__ = [
    "EXPECTED_FAILURES",
    "ExecutionOutcome",
    "ZOO",
    "execute_payload",
    "execute_request",
    "resolve_task",
    "response_exit_code",
]
