"""repro.service — solvability-as-a-service.

The decide/synthesize/conform pipeline is a pure function of the task
spec, so a verdict computed once should be served forever.  This package
is the long-running layer that makes that true:

* :mod:`repro.service.keys` — the one shared content-hashing vocabulary
  (extracted from the telemetry store's run ids and the tower
  diskstore's content keys) every cache and store now agrees on;
* :mod:`repro.service.protocol` — the ``repro-service/1`` request /
  response schema, request canonicalization and the deterministic
  ``repro-verdict/1`` verdict JSON shared bit-for-bit with the CLI;
* :mod:`repro.service.execution` — the single request/response layer
  behind both the CLI subcommands and the server (task resolution,
  execution, failure-mode mapping, exit codes);
* :mod:`repro.service.cache` — the content-addressed verdict memo store
  (in-process memory in front of the persistent diskstore);
* :mod:`repro.service.batch` — per-shard batch queues with in-flight
  coalescing between the asyncio front end and the worker pool;
* :mod:`repro.service.workers` — the worker-pool backend running the
  existing decide path with warm tables;
* :mod:`repro.service.server` — the stdlib asyncio HTTP server;
* :mod:`repro.service.client` — the blocking client and the zipf-skewed
  load generator behind ``repro serve-bench``;
* :mod:`repro.service.bench` — the duplicate-heavy load benchmark that
  emits ``benchmarks/BENCH_service.json`` (``repro-perf/1``);
* :mod:`repro.service.accesslog` — structured JSONL access logging, one
  line per completed request, joinable to trace spans by request id;
* :mod:`repro.service.soak` — the sustained-load soak harness behind
  ``repro serve-soak``: scrapes ``/metrics`` throughout, fits growth
  slopes for RSS/keymap/cache entries and gates them against budgets
  (``repro-soak/1``).

Only :mod:`~repro.service.keys` is imported eagerly: lower layers
(:mod:`repro.topology.diskstore`, :mod:`repro.obs.store`) import it for
their hashes, so the package root must not pull the HTTP/execution
modules (which import those layers back) at import time.
"""

from __future__ import annotations

import importlib

from .keys import canonical_dumps, content_hash, json_hash, record_id

#: submodules resolved lazily via module ``__getattr__`` (PEP 562)
_SUBMODULES = (
    "accesslog",
    "batch",
    "bench",
    "cache",
    "client",
    "execution",
    "keys",
    "protocol",
    "server",
    "soak",
    "workers",
)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "canonical_dumps",
    "content_hash",
    "json_hash",
    "record_id",
    *_SUBMODULES,
]
