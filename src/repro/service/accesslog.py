"""Structured JSONL access logging for the verdict server.

One line per completed HTTP request, machine-first: every field the
latency histograms aggregate away survives here at full resolution, so
"why was *that* request slow?" is answerable after the fact.  The line
carries the request id that also rides into the worker span tree
(``service.batch`` gets it as a span attribute), making access-log
lines joinable to trace spans — the pivot the observability docs call
the log/trace join.

Line shape (all keys always present; ``null`` where not applicable,
e.g. ``op`` on ``/healthz`` or batch fields on a cache hit)::

    {"t": <unix seconds>, "request_id": "...", "method": "POST",
     "path": "/v1/solve", "status": 200, "ok": true, "latency_ms": 1.9,
     "op": "decide", "key_prefix": "ab12...", "cache_tier": "memory",
     "coalesced": false, "queue_wait_ms": null, "batch_size": null}

Writes are line-buffered under a lock (the asyncio server writes from
one loop, but ``ServerThread`` tests and the sampler thread may read
stats concurrently) and flushed per line so a killed soak run keeps
every completed request.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["ACCESS_LOG_FIELDS", "AccessLog", "read_access_log", "validate_access_line"]

#: every key an access-log line carries, in emission order
ACCESS_LOG_FIELDS = (
    "t",
    "request_id",
    "method",
    "path",
    "status",
    "ok",
    "latency_ms",
    "op",
    "key_prefix",
    "cache_tier",
    "coalesced",
    "queue_wait_ms",
    "batch_size",
)

#: fields that must be present and non-null on every line
_REQUIRED_NON_NULL = ("t", "request_id", "method", "path", "status", "ok", "latency_ms")


class AccessLog:
    """Append-only JSONL writer with per-line flush."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh = open(path, "a", encoding="utf-8")
        self.lines_written = 0

    def write(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        status: int,
        latency_seconds: float,
        op: Optional[str] = None,
        key_prefix: Optional[str] = None,
        cache_tier: Optional[str] = None,
        coalesced: Optional[bool] = None,
        queue_wait_seconds: Optional[float] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        line = {
            "t": time.time(),
            "request_id": request_id,
            "method": method,
            "path": path,
            "status": status,
            "ok": status < 400,
            "latency_ms": latency_seconds * 1000.0,
            "op": op,
            "key_prefix": key_prefix,
            "cache_tier": cache_tier,
            "coalesced": coalesced,
            "queue_wait_ms": (
                None if queue_wait_seconds is None else queue_wait_seconds * 1000.0
            ),
            "batch_size": batch_size,
        }
        text = json.dumps(line, sort_keys=True)
        with self._lock:
            self._fh.write(text + "\n")
            self._fh.flush()
            self.lines_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def validate_access_line(line: Any) -> List[str]:
    """Problems with one parsed access-log line (empty list = valid)."""
    if not isinstance(line, dict):
        return ["access-log line must be an object"]
    errors = [
        f"missing field {field!r}"
        for field in ACCESS_LOG_FIELDS
        if field not in line
    ]
    for field in _REQUIRED_NON_NULL:
        if field in line and line[field] is None:
            errors.append(f"field {field!r} must not be null")
    if isinstance(line.get("status"), bool) or not isinstance(
        line.get("status"), int
    ):
        errors.append("status must be an integer")
    if not isinstance(line.get("latency_ms"), (int, float)):
        errors.append("latency_ms must be a number")
    return errors


def read_access_log(path: str, strict: bool = True) -> List[Dict[str, Any]]:
    """Parse a JSONL access log; ``strict`` raises on any invalid line."""
    lines: List[Dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError as exc:
                if strict:
                    raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
                continue
            problems = validate_access_line(line)
            if problems and strict:
                raise ValueError(f"{path}:{lineno}: {problems}")
            if not problems:
                lines.append(line)
    return lines
