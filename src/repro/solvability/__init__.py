"""Section 5: the solvability characterization as a decision procedure."""

from .decision import (
    OBSTRUCTION_CHECKS,
    SolvabilityVerdict,
    Status,
    decide_solvability,
)
from .map_search import (
    MapSearchProblem,
    SearchBudgetExceeded,
    SearchStats,
    find_map,
    prepare_problem,
    search_map,
    verify_map,
)
from .obstructions import (
    ObstructionWitness,
    corollary_5_5,
    corollary_5_6,
    empty_image_obstruction,
    homological_obstruction,
    two_process_solvable,
)

__all__ = [
    "MapSearchProblem",
    "OBSTRUCTION_CHECKS",
    "ObstructionWitness",
    "SearchBudgetExceeded",
    "SearchStats",
    "SolvabilityVerdict",
    "Status",
    "corollary_5_5",
    "corollary_5_6",
    "decide_solvability",
    "empty_image_obstruction",
    "find_map",
    "homological_obstruction",
    "prepare_problem",
    "search_map",
    "two_process_solvable",
    "verify_map",
]
