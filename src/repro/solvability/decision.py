"""The combined solvability decision procedure (Theorem 5.1, operationalized).

Pipeline for a three-process task ``T``:

1. transform: canonicalize (Section 3) and split LAPs (Section 4) to get a
   link-connected ``T' = (I, O', Δ')`` with the same solvability;
2. run the decidable impossibility obstructions on ``T'`` (Corollary 5.5,
   Corollary 5.6, homological boundary obstruction) — any hit is a sound
   ``UNSOLVABLE`` with a witness;
3. iterative-deepening search for a *color-agnostic* simplicial map
   ``Ch^r(I) → O'`` carried by ``Δ'`` for ``r = 0, 1, …`` — a witness is a
   sound ``SOLVABLE`` (and directly powers the executable protocol via the
   Figure 7 algorithm);
4. otherwise report ``UNKNOWN`` honestly — the remaining gap is the
   contractibility problem, undecidable in general [GK98].

Two-process tasks are decided *exactly* by Proposition 5.4 (no splitting
needed); one-process tasks are trivially solvable.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..obs import annotate, counter_add, span
from ..splitting.pipeline import TransformResult, link_connected_form
from ..tasks.task import Task
from ..topology.maps import SimplicialMap
from ..topology.subdivision import (
    SubdivisionResult,
    SubdivisionTower,
    barycentric_subdivision,
    chromatic_subdivision,
)
from .map_search import SearchBudgetExceeded, SearchStats, find_map, verify_map
from .obstructions import (
    ObstructionWitness,
    corollary_5_5,
    corollary_5_6,
    empty_image_obstruction,
    homological_obstruction,
    two_process_solvable,
)


class Status(enum.Enum):
    """Outcome of the decision procedure."""

    SOLVABLE = "solvable"
    UNSOLVABLE = "unsolvable"
    UNKNOWN = "unknown"


@dataclass
class SolvabilityVerdict:
    """The decision outcome with its certificate.

    ``witness_map`` (for ``SOLVABLE``) is a color-agnostic simplicial map
    from ``Ch^r(I)`` to the transformed output complex, carried by the
    transformed Δ; ``obstruction`` (for ``UNSOLVABLE``) names the obstruction
    and where it fires.
    """

    status: Status
    task: Task
    transform: Optional[TransformResult] = None
    witness_map: Optional[SimplicialMap] = None
    witness_subdivision: Optional[SubdivisionResult] = None
    witness_rounds: Optional[int] = None
    witness_chromatic: bool = False
    obstruction: Optional[ObstructionWitness] = None
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def solvable(self) -> Optional[bool]:
        """``True`` / ``False`` / ``None`` (unknown)."""
        if self.status is Status.SOLVABLE:
            return True
        if self.status is Status.UNSOLVABLE:
            return False
        return None

    def __repr__(self) -> str:
        extra = ""
        if self.status is Status.SOLVABLE:
            extra = f", r={self.witness_rounds}"
        elif self.status is Status.UNSOLVABLE and self.obstruction:
            extra = f", {self.obstruction.kind}"
        return f"Verdict[{self.task.name or 'task'}: {self.status.value}{extra}]"


#: obstruction checkers run in order; each returns a witness or ``None``
OBSTRUCTION_CHECKS = (
    ("empty-image", empty_image_obstruction),
    ("corollary-5.5", corollary_5_5),
    ("homological", homological_obstruction),
    ("corollary-5.6", corollary_5_6),
)


def _subdivision_tower(task: Task, name: str) -> SubdivisionTower:
    """An incremental ``Sd^r(I)`` tower: deepening levels share prefix work."""
    if name == "chromatic":
        return SubdivisionTower(task.input_complex, chromatic_subdivision)
    if name == "barycentric":
        return SubdivisionTower(task.input_complex, barycentric_subdivision)
    raise ValueError(f"unknown subdivision engine {name!r}")


def decide_solvability(
    task: Task,
    max_rounds: int = 2,
    engine: str = "chromatic",
    run_obstructions: bool = True,
    chromatic_witness: bool = False,
    max_nodes: int = 2_000_000,
    validate: bool = False,
) -> SolvabilityVerdict:
    """Decide wait-free solvability of a task.

    Parameters
    ----------
    task:
        The task to decide (1, 2 or 3 processes).
    max_rounds:
        Iterative-deepening budget on the subdivision depth ``r``.
    engine:
        ``"chromatic"`` (default, ``Ch^r``) or ``"barycentric"``
        (``Bary^r``) — an ablation knob; the chromatic engine's witnesses
        double as protocols.
    run_obstructions:
        Set to ``False`` to benchmark the pure search path.
    chromatic_witness:
        Also require the witness map to preserve colors (stronger; a
        color-preserving witness is an ACT protocol with no Figure 7
        post-processing needed).  Failure to find one is *not* evidence of
        unsolvability, so this only affects SOLVABLE witnesses.
    max_nodes:
        Backtracking budget per search.
    validate:
        Pre-flight the task through the :mod:`repro.check` structural
        passes first; a malformed task raises
        :class:`~repro.check.preflight.PreflightError` (with every
        diagnostic and witness) instead of yielding a silent wrong
        verdict.
    """
    if validate:
        # imported lazily: repro.check depends on the tasks/topology layers
        from ..check.preflight import preflight_check

        preflight_check(task)
    with span(
        "decide", task=task.name or "task", n_processes=task.n_processes
    ) as decide_span:
        verdict = _decide_solvability(
            task,
            max_rounds,
            engine,
            run_obstructions,
            chromatic_witness,
            max_nodes,
        )
        annotate(decide_span, status=verdict.status.value)
    return verdict


def _decide_solvability(
    task: Task,
    max_rounds: int,
    engine: str,
    run_obstructions: bool,
    chromatic_witness: bool,
    max_nodes: int,
) -> SolvabilityVerdict:
    """The decision pipeline proper, inside the ``decide`` span.

    The free-form ``verdict.stats`` timings are kept for compatibility and
    back-filled from the same stage boundaries the spans cover; the span
    tree (``decide`` → ``transform`` → ``obstructions`` → ``search``) is
    the structured view — see ``docs/observability.md``.
    """
    t0 = time.perf_counter()
    stats: Dict[str, float] = {}
    n = task.n_processes

    if n == 1:
        return SolvabilityVerdict(
            status=Status.SOLVABLE,
            task=task,
            witness_rounds=0,
            stats={"seconds": time.perf_counter() - t0},
        )

    if n == 2:
        solvable = two_process_solvable(task)
        verdict = SolvabilityVerdict(
            status=Status.SOLVABLE if solvable else Status.UNSOLVABLE,
            task=task,
            stats={"seconds": time.perf_counter() - t0},
        )
        if not solvable:
            verdict.obstruction = ObstructionWitness(
                kind="proposition-5.4",
                detail="no component-consistent choice of solo outputs exists",
            )
            return verdict
        # find an explicit witness for synthesis
        _attach_witness(
            verdict, task, None, max_rounds, engine, chromatic_witness, max_nodes, stats
        )
        verdict.stats.update(stats)
        verdict.stats["seconds"] = time.perf_counter() - t0
        if verdict.witness_map is None:
            # solvable by Prop 5.4 even if the depth budget found no witness
            verdict.status = Status.SOLVABLE
        return verdict

    if n != 3:
        raise ValueError(
            f"the characterization is implemented for up to three processes, got n={n}"
        )

    t_transform = time.perf_counter()
    with span("transform") as transform_span:
        transform = link_connected_form(task)
        annotate(transform_span, n_splits=transform.n_splits)
    stats["transform_seconds"] = time.perf_counter() - t_transform
    stats["n_splits"] = transform.n_splits
    counter_add("decide.transform.splits", transform.n_splits)

    if run_obstructions:
        t_obs = time.perf_counter()
        with span("obstructions") as obstructions_span:
            for kind, check in OBSTRUCTION_CHECKS:
                with span("obstruction.check", kind=kind) as check_span:
                    witness = check(transform.task)
                    annotate(check_span, hit=witness is not None)
                counter_add("decide.obstructions.checked")
                if witness is not None:
                    counter_add(f"decide.obstructions.hit.{kind}")
                    annotate(obstructions_span, hit=kind)
                    stats["obstruction_seconds"] = time.perf_counter() - t_obs
                    stats["seconds"] = time.perf_counter() - t0
                    return SolvabilityVerdict(
                        status=Status.UNSOLVABLE,
                        task=task,
                        transform=transform,
                        obstruction=witness,
                        stats=stats,
                    )
        stats["obstruction_seconds"] = time.perf_counter() - t_obs

    verdict = SolvabilityVerdict(
        status=Status.UNKNOWN, task=task, transform=transform, stats=stats
    )
    _attach_witness(
        verdict,
        transform.task,
        transform,
        max_rounds,
        engine,
        chromatic_witness,
        max_nodes,
        stats,
    )
    verdict.stats["seconds"] = time.perf_counter() - t0
    return verdict


def _attach_witness(
    verdict: SolvabilityVerdict,
    target_task: Task,
    transform: Optional[TransformResult],
    max_rounds: int,
    engine: str,
    chromatic_witness: bool,
    max_nodes: int,
    stats: Dict[str, float],
) -> None:
    """Iterative-deepening map search; mutates ``verdict`` on success."""
    tower = _subdivision_tower(target_task, engine)
    search_stats = SearchStats()
    with span("search", engine=engine, max_rounds=max_rounds) as search_span:
        for r in range(max_rounds + 1):
            with span("search.round", r=r) as round_span:
                sub = tower.level(r)
                if engine == "barycentric" and chromatic_witness:
                    raise ValueError(
                        "barycentric subdivisions cannot carry chromatic maps"
                    )
                try:
                    f = find_map(
                        sub,
                        target_task.delta,
                        chromatic=chromatic_witness,
                        max_nodes=max_nodes,
                        stats=search_stats,
                    )
                except SearchBudgetExceeded:
                    stats[f"search_r{r}_budget_exceeded"] = 1.0
                    annotate(round_span, budget_exceeded=True)
                    break
                annotate(
                    round_span,
                    found=f is not None,
                    nodes=search_stats.nodes,
                    backtracks=search_stats.backtracks,
                )
            if f is not None:
                assert verify_map(
                    sub, target_task.delta, f, chromatic=chromatic_witness
                )
                verdict.status = Status.SOLVABLE
                verdict.witness_map = f
                verdict.witness_subdivision = sub
                verdict.witness_rounds = r
                verdict.witness_chromatic = chromatic_witness
                break
        annotate(search_span, witness_rounds=verdict.witness_rounds)
    stats["search_nodes"] = float(search_stats.nodes)
    stats["search_backtracks"] = float(search_stats.backtracks)
    counter_add("decide.search.nodes", search_stats.nodes)
    counter_add("decide.search.backtracks", search_stats.backtracks)
    counter_add("decide.search.propagations", search_stats.propagations)
