"""Decidable impossibility obstructions (Section 5.3 and homology).

Three sound checks for *un*-solvability, plus the complete two-process
characterization:

* :func:`corollary_5_5` — some input facet has two vertices whose possible
  outputs cannot be joined, within the shared edge's image, by a path that
  does not *cross* a local articulation point.
* :func:`corollary_5_6` — for a single-triangle input complex, every cycle
  in ``Δ(Skel¹ I)`` crosses a LAP (the crossing-free graph is a forest).
* :func:`homological_obstruction` — no choice of solo decisions and
  connecting paths makes the boundary loop null-homologous in ``Δ(σ)``
  over Z; a computable *necessary* condition for the continuous map of
  Theorem 5.1 (null-homotopic implies null-homologous).
* :func:`two_process_solvable` — Proposition 5.4, decided exactly via a
  component-consistency CSP.

"Crossing" a LAP ``y`` means visiting ``w1, y, w2`` with ``w1`` and ``w2``
in different connected components of ``lk_{Δ(σ)}(y)``; the checks realize
this by locally splitting every LAP into per-component copies and asking
graph questions in the split graph.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..splitting.lap import LocalArticulationPoint, local_articulation_points
from ..tasks.task import Task
from ..topology.bitcore import bitcore_enabled
from ..topology.complexes import SimplicialComplex
from ..topology.homology import (
    ChainBasis,
    boundary_matrix,
    cycle_space_generators,
    edge_chain,
    solve_integer,
)
from ..topology.simplex import Simplex, Vertex


@dataclass(frozen=True)
class ObstructionWitness:
    """Evidence that a task is unsolvable, for reporting."""

    kind: str
    facet: Optional[Simplex] = None
    detail: str = ""

    def __repr__(self) -> str:
        loc = f" at {self.facet!r}" if self.facet is not None else ""
        return f"Obstruction[{self.kind}{loc}: {self.detail}]"


# ---------------------------------------------------------------------------
# LAP-aware split graphs
# ---------------------------------------------------------------------------


class _SplitGraph:
    """Plain-dict 1-skeleton used by the bitcore-enabled obstruction path.

    Same node/edge structure as :func:`_lap_split_graph`, without the
    :mod:`networkx` object overhead — the obstruction checks only need
    reachability and a forest test, both cheap on adjacency sets.
    """

    __slots__ = ("adj", "edges")

    def __init__(self) -> None:
        self.adj: Dict[Hashable, set] = {}
        self.edges: List[Tuple[Hashable, Hashable]] = []

    def add_node(self, node: Hashable) -> None:
        if node not in self.adj:
            self.adj[node] = set()

    def add_edge(self, a: Hashable, b: Hashable) -> None:
        self.add_node(a)
        self.add_node(b)
        if b not in self.adj[a]:
            self.edges.append((a, b))
        self.adj[a].add(b)
        self.adj[b].add(a)

    def has_path(self, start: Hashable, end: Hashable) -> bool:
        if start == end:
            return True
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[Hashable] = []
            for u in frontier:
                for w in self.adj[u]:
                    if w == end:
                        return True
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
        return False

    def has_cycle(self) -> bool:
        # union-find over the (deduplicated) edge list
        parent: Dict[Hashable, Hashable] = {}

        def find(x: Hashable) -> Hashable:
            root = x
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for a, b in self.edges:
            ra, rb = find(a), find(b)
            if ra == rb:
                return True
            parent[ra] = rb
        return False


def _lap_split_light(
    complex_: SimplicialComplex,
    laps: Dict[Vertex, LocalArticulationPoint],
) -> Tuple[_SplitGraph, Dict[Vertex, List]]:
    """:func:`_lap_split_graph` on a :class:`_SplitGraph` (bitcore path)."""
    g = _SplitGraph()
    copies: Dict[Vertex, List] = {}
    for v in complex_.vertices:
        if v in laps:
            copies[v] = [(v, i) for i in range(laps[v].n_components)]
        else:
            copies[v] = [v]
        for node in copies[v]:
            g.add_node(node)

    def node_for(y: Vertex, other: Vertex):
        if y not in laps:
            return y
        return (y, laps[y].component_of(other))

    for e in complex_.simplices(dim=1):
        a, b = e.sorted_vertices()
        g.add_edge(node_for(a, b), node_for(b, a))
    return g, copies


def _lap_split_graph(
    complex_: SimplicialComplex,
    laps: Dict[Vertex, LocalArticulationPoint],
) -> Tuple["nx.Graph", Dict[Vertex, List]]:
    """The 1-skeleton of ``complex_`` with each LAP split per link component.

    Nodes are either plain vertices or ``(vertex, component_index)`` copies.
    An edge ``{y, z}`` with ``y`` a LAP attaches ``z`` to the copy of ``y``
    whose component contains ``z``.  Paths in this graph are exactly the
    paths of ``complex_`` that never *cross* a LAP.
    """
    g = nx.Graph()
    copies: Dict[Vertex, List] = {}
    for v in complex_.vertices:
        if v in laps:
            copies[v] = [(v, i) for i in range(laps[v].n_components)]
            g.add_nodes_from(copies[v])
        else:
            copies[v] = [v]
            g.add_node(v)

    def node_for(y: Vertex, other: Vertex):
        """The copy of ``y`` adjacent to ``other`` (component-determined)."""
        if y not in laps:
            return y
        return (y, laps[y].component_of(other))

    for e in complex_.simplices(dim=1):
        a, b = e.sorted_vertices()
        g.add_edge(node_for(a, b), node_for(b, a))
    return g, copies


def empty_image_obstruction(task: Task) -> Optional[ObstructionWitness]:
    """An input simplex with no legal outputs at all.

    Raw tasks reject this at validation, but the splitting pipeline can
    legitimately produce it: when a LAP's copies have no link component
    common to all the edges around a solo input, monotonization empties
    that solo image — which, by Lemma 4.2's forward direction, certifies
    the *original* task unsolvable (any protocol's solo decision would
    have to sit in every incident edge's component simultaneously).
    """
    for s, img in task.delta.items():
        if not img:
            return ObstructionWitness(
                kind="empty-image",
                facet=s,
                detail="no legal output remains after splitting and monotonization",
            )
    return None


def corollary_5_5(task: Task) -> Optional[ObstructionWitness]:
    """Check the Corollary 5.5 obstruction; return a witness or ``None``.

    Unsolvable if some input facet ``σ`` has two vertices ``x, x'`` such
    that *every* pair of candidate outputs ``y ∈ Δ(x)``, ``y' ∈ Δ(x')`` is
    separated in ``Δ(x, x')`` once LAP crossings are forbidden.
    """
    for sigma in task.input_complex.facets:
        laps = {
            l.vertex: l for l in local_articulation_points(task, facet=sigma)
        }
        for x, xp in itertools.combinations(sigma.sorted_vertices(), 2):
            edge = Simplex([x, xp])
            if edge not in task.input_complex:
                continue
            image = task.delta(edge)
            if bitcore_enabled():
                light, copies = _lap_split_light(image, laps)
                reachable = light.has_path
            else:
                graph, copies = _lap_split_graph(image, laps)
                reachable = lambda a, b: nx.has_path(graph, a, b)  # noqa: E731
            ys = set(task.delta(Simplex([x])).vertices)
            yps = set(task.delta(Simplex([xp])).vertices)
            connected = False
            for y in ys:
                for yp in yps:
                    if y not in copies or yp not in copies:
                        continue
                    if any(
                        reachable(cy, cyp)
                        for cy in copies[y]
                        for cyp in copies[yp]
                    ):
                        connected = True
                        break
                if connected:
                    break
            if not connected:
                return ObstructionWitness(
                    kind="corollary-5.5",
                    facet=sigma,
                    detail=(
                        f"no LAP-free path joins any outputs of {x!r} and {xp!r} "
                        f"inside Δ({edge!r})"
                    ),
                )
    return None


def corollary_5_6(task: Task) -> Optional[ObstructionWitness]:
    """Check the Corollary 5.6 obstruction (single-triangle inputs only).

    Unsolvable if every cycle of ``Δ(Skel¹ I)`` crosses a LAP — i.e. the
    LAP-split graph of the union of the three edge images is a forest.
    Returns ``None`` (no conclusion) for tasks with several input facets.
    """
    if len(task.input_complex.facets) != 1:
        return None
    sigma = task.input_complex.facets[0]
    if sigma.dim != 2:
        return None
    laps = {l.vertex: l for l in local_articulation_points(task, facet=sigma)}
    skel_image = task.delta.union_image(
        Simplex(pair) for pair in itertools.combinations(sigma.sorted_vertices(), 2)
    )
    if bitcore_enabled():
        light, _ = _lap_split_light(skel_image, laps)
        if len(light.edges) >= len(light.adj) or light.has_cycle():
            return None
    else:
        graph, _ = _lap_split_graph(skel_image, laps)
        if nx.number_of_edges(graph) >= nx.number_of_nodes(graph) or any(
            True for _ in nx.cycle_basis(graph)
        ):
            return None
    return ObstructionWitness(
        kind="corollary-5.6",
        facet=sigma,
        detail="every cycle of Δ(Skel¹ I) crosses a local articulation point",
    )


# ---------------------------------------------------------------------------
# Homological boundary obstruction
# ---------------------------------------------------------------------------


def _path_in_subcomplex(
    sub: SimplicialComplex, start: Vertex, end: Vertex
) -> Optional[List[Vertex]]:
    if bitcore_enabled():
        # the chosen path only changes the boundary loop by a cycle of the
        # edge image, which the integer system mods out — any shortest
        # path is as good as networkx's
        return sub._bits().shortest_path(start, end)
    g = sub.graph()
    if start not in g or end not in g:
        return None
    try:
        return nx.shortest_path(g, start, end)
    except nx.NetworkXNoPath:
        return None


def homological_obstruction(task: Task) -> Optional[ObstructionWitness]:
    """Check the H1 boundary obstruction on each input facet.

    For a facet ``σ = (x0, x1, x2)``: a continuous map carried by Δ sends
    each ``x_i`` to some ``y_i ∈ Δ(x_i)`` and each input edge to a path in
    the corresponding ``Δ(edge)``; the concatenated loop must bound in
    ``Δ(σ)``.  Path choices within ``Δ(edge)`` change the loop's class by
    integral cycles of ``Δ(edge)``, so for fixed ``y_i`` the question is an
    integer linear system.  If no choice of ``y_i`` admits a solution, no
    continuous map exists and the task is unsolvable.
    """
    for sigma in task.input_complex.facets:
        if sigma.dim != 2:
            continue
        verts = sigma.sorted_vertices()
        big = task.delta(sigma)
        basis = ChainBasis.of(big)
        if basis.dim_count(1) == 0:
            continue
        d2 = boundary_matrix(basis, 2)
        edge_pairs = [(0, 1), (1, 2), (2, 0)]
        edge_images = {
            pair: task.delta(Simplex([verts[pair[0]], verts[pair[1]]]))
            for pair in edge_pairs
        }
        # generators of path-choice freedom: integral cycles inside each
        # edge image, expressed in the big complex's edge basis
        free_cycles: List[np.ndarray] = []
        for pair in edge_pairs:
            sub = edge_images[pair]
            sub_basis = ChainBasis.of(sub)
            for cyc in cycle_space_generators(sub):
                vec = np.zeros(basis.dim_count(1), dtype=np.int64)
                for idx, e in enumerate(sub_basis.by_dim[1]):
                    if cyc[idx]:
                        vec[basis.index(e)] = cyc[idx]
                free_cycles.append(vec)

        candidates = [tuple(task.delta(Simplex([v])).vertices) for v in verts]
        any_choice_works = False
        any_choice_connected = False
        for choice in itertools.product(*candidates):
            paths = {}
            ok = True
            for pair in edge_pairs:
                p = _path_in_subcomplex(
                    edge_images[pair], choice[pair[0]], choice[pair[1]]
                )
                if p is None:
                    ok = False
                    break
                paths[pair] = p
            if not ok:
                continue
            any_choice_connected = True
            loop: List[Vertex] = []
            for pair in edge_pairs:
                loop.extend(paths[pair][:-1])
            loop.append(paths[edge_pairs[-1]][-1])
            c0 = edge_chain(basis, loop)
            if free_cycles:
                a = np.concatenate(
                    [d2, np.stack(free_cycles, axis=1)], axis=1
                )
            else:
                a = d2
            if solve_integer(a, c0) is not None:
                any_choice_works = True
                break
        if not any_choice_works:
            detail = (
                "no choice of solo outputs is path-connected in the edge images"
                if not any_choice_connected
                else "no boundary-loop choice bounds in Δ(σ) over Z"
            )
            return ObstructionWitness(
                kind="homological", facet=sigma, detail=detail
            )
    return None


# ---------------------------------------------------------------------------
# Two-process characterization (Proposition 5.4)
# ---------------------------------------------------------------------------


def two_process_solvable(task: Task) -> bool:
    """Decide a two-process task exactly (Proposition 5.4).

    A continuous map ``|I| → |O|`` carried by Δ exists iff each input
    vertex can be assigned an output vertex in its image such that, for
    every input edge, the two assigned outputs lie in one connected
    component of the edge's image.  The assignment CSP is solved by
    backtracking over the (tiny) input complex.
    """
    if task.input_complex.dim != 1:
        raise ValueError("two_process_solvable expects a 1-dimensional task")
    xs = list(task.input_complex.simplices(dim=0))
    edges = list(task.input_complex.simplices(dim=1))
    domains = {x: tuple(task.delta(x).vertices) for x in xs}
    components: Dict[Simplex, Tuple[FrozenSet, ...]] = {
        e: task.delta(e).connected_components() for e in edges
    }

    def comp_index(e: Simplex, y: Hashable) -> Optional[int]:
        for i, comp in enumerate(components[e]):
            if y in comp:
                return i
        return None

    assignment: Dict[Simplex, Hashable] = {}

    def consistent(x: Simplex, y: Hashable) -> bool:
        for e in edges:
            if x.vertices <= e.vertices:
                (other,) = [
                    Simplex([v]) for v in e.vertices if Simplex([v]) != x
                ]
                if other in assignment:
                    ci = comp_index(e, y)
                    cj = comp_index(e, assignment[other])
                    if ci is None or cj is None or ci != cj:
                        return False
                elif comp_index(e, y) is None:
                    return False
        return True

    def backtrack(idx: int) -> bool:
        if idx == len(xs):
            return True
        x = xs[idx]
        for y in domains[x]:
            if consistent(x, y):
                assignment[x] = y
                if backtrack(idx + 1):
                    return True
                del assignment[x]
        return False

    return backtrack(0)
