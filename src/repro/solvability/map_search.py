"""Search for simplicial maps from a subdivision of ``I`` carried by Δ.

By the simplicial approximation theorem, a continuous map ``|I| → |O|``
carried by a carrier map Δ exists iff, for *some* finite subdivision of
``I``, a simplicial map carried by Δ exists.  This module performs that
search for a fixed subdivision (callers do the iterative deepening over
subdivision depth):

* *color-agnostic* mode — any vertex of the right carrier image may be the
  target (this is the hypothesis the paper's Figure 7 algorithm consumes);
* *chromatic* mode — the map must also preserve colors (a witness here is
  directly an ACT-style protocol: decide ``f(view)``).

The search is a constraint-satisfaction backtracker: variables are the
subdivision's vertices, the domain of a vertex ``v`` is the vertex set of
``Δ(carrier(v))``, and every subdivision facet must land inside
``Δ(carrier(facet))``.  Forward checking prunes neighbor domains through
the facet constraints; variables are ordered by increasing carrier
dimension, then minimum remaining values.

Performance: the inner loops never build :class:`Simplex` objects.  Every
codomain vertex gets a bit, every target complex is compiled to the set of
bitmasks of its simplices (downward closure included), and domains become
parallel ``(vertex, bit)`` arrays.  "Is this partial facet image a simplex
of the target" is then a single integer-set membership test, and the
support/completability lookaheads OR bits instead of allocating.  The
compiled form is shared between support pruning and the backtracker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..topology.carrier import CarrierMap
from ..topology.complexes import SimplicialComplex
from ..topology.maps import NotSimplicialError, SimplicialMap
from ..topology.simplex import Simplex, color_of, vertex_sort_key
from ..topology.subdivision import SubdivisionResult


class SearchBudgetExceeded(RuntimeError):
    """Raised when the backtracking node budget is exhausted."""


@dataclass(slots=True)
class SearchStats:
    """Counters exposed for the benchmarks and ablations."""

    nodes: int = 0
    backtracks: int = 0
    propagations: int = 0


@dataclass(frozen=True)
class MapSearchProblem:
    """A prepared search instance (reusable across searches)."""

    subdivision: SubdivisionResult
    delta: CarrierMap
    chromatic: bool
    variables: Tuple[Hashable, ...]
    domains: Dict[Hashable, Tuple[Hashable, ...]]
    facet_constraints: Dict[Hashable, Tuple[Tuple[Simplex, SimplicialComplex], ...]]


def _carrier_of_facet(sub: SubdivisionResult, facet: Simplex) -> Simplex:
    """The minimal base simplex whose subdivision contains ``facet``."""
    verts: Set = set()
    for v in facet.vertices:
        verts.update(sub.carrier_of_vertex(v).vertices)
    return Simplex(verts)


def _target_masks(
    target: SimplicialComplex, vbit: Dict[Hashable, int], memo: Dict[int, FrozenSet[int]]
) -> FrozenSet[int]:
    """The set of bitmasks of all simplices of ``target`` (memoized by identity)."""
    key = id(target)
    got = memo.get(key)
    if got is None:
        masks = set()
        for s in target.simplices():
            m = 0
            for w in s.vertices:
                m |= vbit[w]
            masks.add(m)
        got = frozenset(masks)
        memo[key] = got
    return got


def _prune_domains_by_support(
    domains: Dict[Hashable, List[Hashable]],
    facets: List[Tuple[Simplex, SimplicialComplex]],
    vbit: Dict[Hashable, int],
    mask_memo: Dict[int, FrozenSet[int]],
) -> bool:
    """Arc-consistency-style pruning: a value survives only if every facet
    containing its vertex can be completed with it.  Iterates to fixpoint.
    Returns ``False`` when some domain empties (no map exists)."""
    by_vertex: Dict[Hashable, List[Tuple[Simplex, FrozenSet[int]]]] = {}
    for facet, target in facets:
        masks = _target_masks(target, vbit, mask_memo)
        for v in facet.vertices:
            by_vertex.setdefault(v, []).append((facet, masks))

    def has_support(v: Hashable, bit: int, facet: Simplex, masks: FrozenSet[int]) -> bool:
        others = [w for w in facet.vertices if w != v]

        def extend(idx: int, mask: int) -> bool:
            if idx == len(others):
                return mask in masks
            for b in domains[others[idx]]:
                m = mask | vbit[b]
                # partial membership check prunes the inner loop early
                if m in masks and extend(idx + 1, m):
                    return True
            return False

        return extend(0, bit)

    changed = True
    while changed:
        changed = False
        for v, constraints in by_vertex.items():
            kept = []
            for a in domains[v]:
                bit = vbit[a]
                if all(has_support(v, bit, f, m) for f, m in constraints):
                    kept.append(a)
            if len(kept) != len(domains[v]):
                domains[v] = kept
                changed = True
                if not kept:
                    return False
    return True


def _adjacency_order(
    vertices: Tuple[Hashable, ...],
    domains: Dict[Hashable, Tuple[Hashable, ...]],
    facets: List[Simplex],
) -> Tuple[Hashable, ...]:
    """Order variables so each one shares a facet with an earlier one.

    Assigning along the adjacency structure makes the per-facet consistency
    checks fire as early as possible; ties break toward small domains.
    """
    neighbors: Dict[Hashable, set] = {v: set() for v in vertices}
    for f in facets:
        vs = list(f.vertices)
        for v in vs:
            neighbors[v].update(w for w in vs if w != v)
    remaining = set(vertices)
    order: List[Hashable] = []
    frontier: set = set()

    def key(v):
        return (len(domains[v]), vertex_sort_key(v))

    while remaining:
        pool = frontier & remaining
        if not pool:
            pool = remaining
        v = min(pool, key=key)
        order.append(v)
        remaining.discard(v)
        frontier |= neighbors[v]
    return tuple(order)


def _codomain_bits(codomain: SimplicialComplex) -> Dict[Hashable, int]:
    """Assign one bit per codomain vertex, in canonical (deterministic) order."""
    return {w: 1 << i for i, w in enumerate(codomain.vertices)}


def prepare_problem(
    sub: SubdivisionResult,
    delta: CarrierMap,
    chromatic: bool,
    prune: bool = True,
    adjacency_order: bool = True,
) -> MapSearchProblem:
    """Precompute variables, pruned domains and per-facet constraints.

    ``prune`` and ``adjacency_order`` are ablation knobs (see
    ``benchmarks/bench_search_ablation.py``); both default on — disabling
    them reproduces the naive backtracker.
    """
    if delta.domain != sub.base:
        raise ValueError("Δ's domain must be the subdivision's base complex")
    domains: Dict[Hashable, List[Hashable]] = {}
    for v in sub.complex.vertices:
        carrier = sub.carrier_of_vertex(v)
        allowed = delta(carrier).vertices
        if chromatic:
            c = color_of(v)
            allowed = tuple(w for w in allowed if color_of(w) == c)
        domains[v] = sorted(allowed, key=vertex_sort_key)

    facets_with_targets: List[Tuple[Simplex, SimplicialComplex]] = [
        (facet, delta(_carrier_of_facet(sub, facet))) for facet in sub.complex.facets
    ]
    if prune:
        vbit = _codomain_bits(delta.codomain)
        _prune_domains_by_support(domains, facets_with_targets, vbit, {})

    facet_constraints: Dict[Hashable, List[Tuple[Simplex, SimplicialComplex]]] = {
        v: [] for v in sub.complex.vertices
    }
    for facet, target in facets_with_targets:
        for v in facet.vertices:
            facet_constraints[v].append((facet, target))

    if adjacency_order:
        variables = _adjacency_order(
            sub.complex.vertices,
            {v: tuple(ds) for v, ds in domains.items()},
            list(sub.complex.facets),
        )
    else:
        variables = tuple(
            sorted(sub.complex.vertices, key=vertex_sort_key)
        )
    return MapSearchProblem(
        subdivision=sub,
        delta=delta,
        chromatic=chromatic,
        variables=variables,
        domains={v: tuple(ds) for v, ds in domains.items()},
        facet_constraints={v: tuple(cs) for v, cs in facet_constraints.items()},
    )


class _CompiledSearch:
    """The integer-indexed form of a :class:`MapSearchProblem`.

    Variables become indices into parallel arrays (in search order), values
    become codomain-vertex bits, and each facet constraint becomes the pair
    ``(variable indices, set of target simplex masks)``.
    """

    __slots__ = (
        "order",
        "dom_values",
        "dom_bits",
        "facet_vars",
        "facet_masks",
        "var_facets",
    )

    def __init__(self, problem: MapSearchProblem):
        order = problem.variables
        var_index = {v: i for i, v in enumerate(order)}
        vbit = _codomain_bits(problem.delta.codomain)
        self.order = order
        self.dom_values: List[Tuple[Hashable, ...]] = [problem.domains[v] for v in order]
        self.dom_bits: List[Tuple[int, ...]] = [
            tuple(vbit[w] for w in problem.domains[v]) for v in order
        ]
        # deduplicate facets (each facet appears once per member vertex)
        facet_vars: List[Tuple[int, ...]] = []
        facet_masks: List[FrozenSet[int]] = []
        var_facets: List[List[int]] = [[] for _ in order]
        seen: Dict[Simplex, int] = {}
        mask_memo: Dict[int, FrozenSet[int]] = {}
        for v in order:
            for facet, target in problem.facet_constraints[v]:
                if facet in seen:
                    continue
                fid = len(facet_vars)
                seen[facet] = fid
                facet_vars.append(tuple(var_index[w] for w in facet.vertices))
                facet_masks.append(_target_masks(target, vbit, mask_memo))
        for fid, vs in enumerate(facet_vars):
            for vi in vs:
                var_facets[vi].append(fid)
        self.facet_vars = facet_vars
        self.facet_masks = facet_masks
        self.var_facets: List[Tuple[int, ...]] = [tuple(fs) for fs in var_facets]


def search_map(
    problem: MapSearchProblem,
    max_nodes: int = 2_000_000,
    stats: Optional[SearchStats] = None,
) -> Optional[SimplicialMap]:
    """Run the backtracking search; return a witness map or ``None``.

    ``None`` means *no map exists for this subdivision* (exhaustive search),
    not merely that the search gave up — budget exhaustion raises
    :class:`SearchBudgetExceeded` instead.
    """
    stats = stats if stats is not None else SearchStats()
    if any(not problem.domains[v] for v in problem.variables):
        return None

    compiled = _CompiledSearch(problem)
    order = compiled.order
    n = len(order)
    dom_values = compiled.dom_values
    dom_bits = compiled.dom_bits
    facet_vars = compiled.facet_vars
    facet_masks = compiled.facet_masks
    var_facets = compiled.var_facets
    #: bit assigned to each variable; 0 == unassigned (bits are nonzero)
    assigned: List[int] = [0] * n

    def completable(mask: int, unassigned: List[int], masks: FrozenSet[int]) -> bool:
        """Whether a facet's partial image mask extends within ``masks``."""
        if len(unassigned) > 1:
            unassigned.sort(key=lambda w: len(dom_bits[w]))

        def extend(idx: int, m: int) -> bool:
            if idx == len(unassigned):
                return True
            for b in dom_bits[unassigned[idx]]:
                nm = m | b
                if nm in masks and extend(idx + 1, nm):
                    return True
            return False

        return extend(0, mask)

    def consistent(vi: int, bit: int) -> bool:
        """Check facet constraints touching ``vi``, with completion lookahead.

        The partial image of every facet must be a simplex of its target,
        and the facet must remain completable from the unassigned domains.
        """
        for fid in var_facets[vi]:
            mask = bit
            unassigned: Optional[List[int]] = None
            for w in facet_vars[fid]:
                b = assigned[w]
                if b:
                    mask |= b
                elif w != vi:
                    if unassigned is None:
                        unassigned = [w]
                    else:
                        unassigned.append(w)
            stats.propagations += 1
            masks = facet_masks[fid]
            if mask not in masks:
                return False
            if unassigned and not completable(mask, unassigned, masks):
                return False
        return True

    def backtrack(idx: int) -> bool:
        if idx == n:
            return True
        stats.nodes += 1
        if stats.nodes > max_nodes:
            raise SearchBudgetExceeded(
                f"map search exceeded {max_nodes} nodes "
                f"(subdivision facets: {len(problem.subdivision.complex.facets)})"
            )
        for bit in dom_bits[idx]:
            if consistent(idx, bit):
                assigned[idx] = bit
                if backtrack(idx + 1):
                    return True
                assigned[idx] = 0
                stats.backtracks += 1
        return False

    if not backtrack(0):
        return None
    # decode bits back to codomain vertices in the order values were tried
    assignment: Dict[Hashable, Hashable] = {}
    for idx, v in enumerate(order):
        bit = assigned[idx]
        assignment[v] = dom_values[idx][dom_bits[idx].index(bit)]
    return SimplicialMap(
        problem.subdivision.complex,
        problem.delta.codomain,
        assignment,
        check=False,
    )


def find_map(
    sub: SubdivisionResult,
    delta: CarrierMap,
    chromatic: bool = False,
    max_nodes: int = 2_000_000,
    stats: Optional[SearchStats] = None,
) -> Optional[SimplicialMap]:
    """Convenience wrapper: prepare and run a search in one call."""
    problem = prepare_problem(sub, delta, chromatic)
    return search_map(problem, max_nodes=max_nodes, stats=stats)


def verify_map(
    sub: SubdivisionResult,
    delta: CarrierMap,
    f: SimplicialMap,
    chromatic: bool = False,
) -> bool:
    """Independently verify a witness: simplicial, carried by Δ, colors.

    Used by tests and by the decision procedure before trusting a witness.

    Only :class:`NotSimplicialError` — the one failure mode
    :meth:`SimplicialMap.validate` documents — means "invalid witness".
    Anything else (an ``AttributeError``/``TypeError`` from a genuine
    bug) propagates: a broken verifier silently reporting ``False`` is
    indistinguishable from an unsolvable instance, which is exactly the
    kind of wrong answer this function exists to prevent.
    """
    try:
        f.validate()
    except NotSimplicialError:
        return False
    if chromatic and not f.is_chromatic():
        return False
    return f.is_carried_by(delta, via=sub.carrier)
