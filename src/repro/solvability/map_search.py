"""Search for simplicial maps from a subdivision of ``I`` carried by Δ.

By the simplicial approximation theorem, a continuous map ``|I| → |O|``
carried by a carrier map Δ exists iff, for *some* finite subdivision of
``I``, a simplicial map carried by Δ exists.  This module performs that
search for a fixed subdivision (callers do the iterative deepening over
subdivision depth):

* *color-agnostic* mode — any vertex of the right carrier image may be the
  target (this is the hypothesis the paper's Figure 7 algorithm consumes);
* *chromatic* mode — the map must also preserve colors (a witness here is
  directly an ACT-style protocol: decide ``f(view)``).

The search is a constraint-satisfaction backtracker: variables are the
subdivision's vertices, the domain of a vertex ``v`` is the vertex set of
``Δ(carrier(v))``, and every subdivision facet must land inside
``Δ(carrier(facet))``.  Forward checking prunes neighbor domains through
the facet constraints; variables are ordered by increasing carrier
dimension, then minimum remaining values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..topology.carrier import CarrierMap
from ..topology.complexes import SimplicialComplex
from ..topology.maps import SimplicialMap
from ..topology.simplex import Simplex, Vertex, color_of, vertex_sort_key
from ..topology.subdivision import SubdivisionResult


class SearchBudgetExceeded(RuntimeError):
    """Raised when the backtracking node budget is exhausted."""


@dataclass
class SearchStats:
    """Counters exposed for the benchmarks and ablations."""

    nodes: int = 0
    backtracks: int = 0
    propagations: int = 0


@dataclass(frozen=True)
class MapSearchProblem:
    """A prepared search instance (reusable across searches)."""

    subdivision: SubdivisionResult
    delta: CarrierMap
    chromatic: bool
    variables: Tuple[Hashable, ...]
    domains: Dict[Hashable, Tuple[Hashable, ...]]
    facet_constraints: Dict[Hashable, Tuple[Tuple[Simplex, SimplicialComplex], ...]]


def _carrier_of_facet(sub: SubdivisionResult, facet: Simplex) -> Simplex:
    """The minimal base simplex whose subdivision contains ``facet``."""
    verts: Set = set()
    for v in facet.vertices:
        verts.update(sub.carrier_of_vertex(v).vertices)
    return Simplex(verts)


def _prune_domains_by_support(
    domains: Dict[Hashable, List[Hashable]],
    facets: List[Tuple[Simplex, SimplicialComplex]],
) -> bool:
    """Arc-consistency-style pruning: a value survives only if every facet
    containing its vertex can be completed with it.  Iterates to fixpoint.
    Returns ``False`` when some domain empties (no map exists)."""
    by_vertex: Dict[Hashable, List[Tuple[Simplex, SimplicialComplex]]] = {}
    for facet, target in facets:
        for v in facet.vertices:
            by_vertex.setdefault(v, []).append((facet, target))

    def has_support(v: Hashable, a: Hashable, facet: Simplex, target) -> bool:
        others = [w for w in facet.vertices if w != v]

        def extend(idx: int, chosen: List[Hashable]) -> bool:
            if idx == len(others):
                return Simplex(chosen) in target
            for b in domains[others[idx]]:
                chosen.append(b)
                # partial membership check prunes the inner loop early
                if Simplex(chosen) in target and extend(idx + 1, chosen):
                    chosen.pop()
                    return True
                chosen.pop()
            return False

        return extend(0, [a])

    changed = True
    while changed:
        changed = False
        for v, constraints in by_vertex.items():
            kept = []
            for a in domains[v]:
                if all(has_support(v, a, f, t) for f, t in constraints):
                    kept.append(a)
            if len(kept) != len(domains[v]):
                domains[v] = kept
                changed = True
                if not kept:
                    return False
    return True


def _adjacency_order(
    vertices: Tuple[Hashable, ...],
    domains: Dict[Hashable, Tuple[Hashable, ...]],
    facets: List[Simplex],
) -> Tuple[Hashable, ...]:
    """Order variables so each one shares a facet with an earlier one.

    Assigning along the adjacency structure makes the per-facet consistency
    checks fire as early as possible; ties break toward small domains.
    """
    neighbors: Dict[Hashable, set] = {v: set() for v in vertices}
    for f in facets:
        vs = list(f.vertices)
        for v in vs:
            neighbors[v].update(w for w in vs if w != v)
    remaining = set(vertices)
    order: List[Hashable] = []
    frontier: set = set()

    def key(v):
        return (len(domains[v]), vertex_sort_key(v))

    while remaining:
        pool = frontier & remaining
        if not pool:
            pool = remaining
        v = min(pool, key=key)
        order.append(v)
        remaining.discard(v)
        frontier |= neighbors[v]
    return tuple(order)


def prepare_problem(
    sub: SubdivisionResult,
    delta: CarrierMap,
    chromatic: bool,
    prune: bool = True,
    adjacency_order: bool = True,
) -> MapSearchProblem:
    """Precompute variables, pruned domains and per-facet constraints.

    ``prune`` and ``adjacency_order`` are ablation knobs (see
    ``benchmarks/bench_search_ablation.py``); both default on — disabling
    them reproduces the naive backtracker.
    """
    if delta.domain != sub.base:
        raise ValueError("Δ's domain must be the subdivision's base complex")
    domains: Dict[Hashable, List[Hashable]] = {}
    for v in sub.complex.vertices:
        carrier = sub.carrier_of_vertex(v)
        allowed = delta(carrier).vertices
        if chromatic:
            c = color_of(v)
            allowed = tuple(w for w in allowed if color_of(w) == c)
        domains[v] = sorted(allowed, key=vertex_sort_key)

    facets_with_targets: List[Tuple[Simplex, SimplicialComplex]] = [
        (facet, delta(_carrier_of_facet(sub, facet))) for facet in sub.complex.facets
    ]
    if prune:
        _prune_domains_by_support(domains, facets_with_targets)

    facet_constraints: Dict[Hashable, List[Tuple[Simplex, SimplicialComplex]]] = {
        v: [] for v in sub.complex.vertices
    }
    for facet, target in facets_with_targets:
        for v in facet.vertices:
            facet_constraints[v].append((facet, target))

    if adjacency_order:
        variables = _adjacency_order(
            sub.complex.vertices,
            {v: tuple(ds) for v, ds in domains.items()},
            list(sub.complex.facets),
        )
    else:
        variables = tuple(
            sorted(sub.complex.vertices, key=vertex_sort_key)
        )
    return MapSearchProblem(
        subdivision=sub,
        delta=delta,
        chromatic=chromatic,
        variables=variables,
        domains={v: tuple(ds) for v, ds in domains.items()},
        facet_constraints={v: tuple(cs) for v, cs in facet_constraints.items()},
    )


def _completable(
    partial: List[Hashable],
    unassigned: List[Hashable],
    domains: Dict[Hashable, Tuple[Hashable, ...]],
    target: SimplicialComplex,
) -> bool:
    """Whether a facet's partial image extends to a simplex of ``target``."""
    if not unassigned:
        return Simplex(partial) in target
    head, rest = unassigned[0], unassigned[1:]
    for b in domains[head]:
        partial.append(b)
        if Simplex(partial) in target and _completable(partial, rest, domains, target):
            partial.pop()
            return True
        partial.pop()
    return False


def _consistent(
    problem: MapSearchProblem,
    assignment: Dict[Hashable, Hashable],
    v: Hashable,
    value: Hashable,
    stats: SearchStats,
) -> bool:
    """Check facet constraints touching ``v``, with completion lookahead.

    The partial image of every facet must be a simplex of its target, and
    the facet must remain completable from the unassigned domains.
    """
    assignment[v] = value
    try:
        for facet, target in problem.facet_constraints[v]:
            partial = []
            unassigned = []
            for w in facet.vertices:
                if w in assignment:
                    partial.append(assignment[w])
                else:
                    unassigned.append(w)
            stats.propagations += 1
            if Simplex(partial) not in target:
                return False
            if unassigned and not _completable(
                partial, unassigned, problem.domains, target
            ):
                return False
        return True
    finally:
        del assignment[v]


def search_map(
    problem: MapSearchProblem,
    max_nodes: int = 2_000_000,
    stats: Optional[SearchStats] = None,
) -> Optional[SimplicialMap]:
    """Run the backtracking search; return a witness map or ``None``.

    ``None`` means *no map exists for this subdivision* (exhaustive search),
    not merely that the search gave up — budget exhaustion raises
    :class:`SearchBudgetExceeded` instead.
    """
    stats = stats if stats is not None else SearchStats()
    if any(not problem.domains[v] for v in problem.variables):
        return None
    assignment: Dict[Hashable, Hashable] = {}

    order = problem.variables

    def backtrack(idx: int) -> bool:
        if idx == len(order):
            return True
        stats.nodes += 1
        if stats.nodes > max_nodes:
            raise SearchBudgetExceeded(
                f"map search exceeded {max_nodes} nodes "
                f"(subdivision facets: {len(problem.subdivision.complex.facets)})"
            )
        v = order[idx]
        for value in problem.domains[v]:
            if _consistent(problem, assignment, v, value, stats):
                assignment[v] = value
                if backtrack(idx + 1):
                    return True
                del assignment[v]
                stats.backtracks += 1
        return False

    if not backtrack(0):
        return None
    return SimplicialMap(
        problem.subdivision.complex,
        problem.delta.codomain,
        dict(assignment),
        check=False,
    )


def find_map(
    sub: SubdivisionResult,
    delta: CarrierMap,
    chromatic: bool = False,
    max_nodes: int = 2_000_000,
    stats: Optional[SearchStats] = None,
) -> Optional[SimplicialMap]:
    """Convenience wrapper: prepare and run a search in one call."""
    problem = prepare_problem(sub, delta, chromatic)
    return search_map(problem, max_nodes=max_nodes, stats=stats)


def verify_map(
    sub: SubdivisionResult,
    delta: CarrierMap,
    f: SimplicialMap,
    chromatic: bool = False,
) -> bool:
    """Independently verify a witness: simplicial, carried by Δ, colors.

    Used by tests and by the decision procedure before trusting a witness.
    """
    try:
        f.validate()
    except Exception:
        return False
    if chromatic and not f.is_chromatic():
        return False
    return f.is_carried_by(delta, via=sub.carrier)
