"""repro — Solvability characterization for general three-process tasks.

A full reproduction of Attiya, Fraigniaud, Paz and Rajsbaum,
*Solvability Characterization for General Three-Process Tasks* (PODC 2025):
chromatic combinatorial topology, the canonical-form and LAP-splitting
transforms, the continuous-map solvability decision procedure, and an
executable shared-memory runtime including the paper's Figure 7 algorithm.

Quick tour::

    from repro.tasks.zoo import hourglass_task
    from repro.solvability import decide_solvability
    from repro.runtime import synthesize_protocol, validate_protocol

    verdict = decide_solvability(hourglass_task())
    assert verdict.solvable is False          # via Corollary 5.5

See ``examples/quickstart.py`` for the guided version.
"""

from . import analysis, io, runtime, solvability, splitting, tasks, topology
from .analysis import analyze_task
from .runtime import synthesize_protocol, validate_protocol
from .solvability import SolvabilityVerdict, Status, decide_solvability
from .splitting import link_connected_form
from .tasks import Task, canonicalize

__version__ = "1.0.0"

__all__ = [
    "SolvabilityVerdict",
    "Status",
    "Task",
    "analysis",
    "analyze_task",
    "canonicalize",
    "decide_solvability",
    "io",
    "link_connected_form",
    "runtime",
    "solvability",
    "splitting",
    "synthesize_protocol",
    "tasks",
    "topology",
    "validate_protocol",
]
