"""Adversarial schedulers.

Random schedules miss the executions that make wait-free computing hard;
these strategies target them deliberately:

* :func:`starver` — one process runs alone for a long prefix, then the
  rest are released (solo-then-burst);
* :func:`alternator` — two chosen processes alternate step-for-step while
  the third is frozen until they finish (the schedule shape behind the
  Figure 7 negotiation worst case);
* :func:`stutterer` — a process advances only every ``period``-th
  opportunity (maximal staleness of its writes).

Each strategy is a callable ``(runnable, step_index) -> pid`` consumed by
:func:`run_adversarial`; :func:`adversarial_sweep` runs a protocol under
the whole battery and returns the traces, for use next to
``validate_protocol``'s random/sequential schedules.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from .scheduler import Execution, ExecutionTrace, ProcessFactory

Strategy = Callable[[Tuple[int, ...], int], int]


def starver(victims: Sequence[int], runner: int) -> Strategy:
    """Run ``runner`` to completion first; ``victims`` only after."""

    def pick(runnable: Tuple[int, ...], step: int) -> int:
        if runner in runnable:
            return runner
        for pid in runnable:
            if pid not in victims:
                return pid
        return runnable[0]

    return pick


def alternator(pair: Tuple[int, int]) -> Strategy:
    """Alternate the pair step-for-step; everyone else waits for them."""

    def pick(runnable: Tuple[int, ...], step: int) -> int:
        live = [pid for pid in pair if pid in runnable]
        if live:
            return live[step % len(live)]
        return runnable[0]

    return pick


def stutterer(slow: int, period: int = 4) -> Strategy:
    """The ``slow`` process moves once per ``period`` steps at most."""

    def pick(runnable: Tuple[int, ...], step: int) -> int:
        others = [pid for pid in runnable if pid != slow]
        if not others:
            return slow
        if slow in runnable and step % period == period - 1:
            return slow
        return others[step % len(others)]

    return pick


def run_adversarial(
    n: int,
    factories: Dict[int, ProcessFactory],
    strategy: Strategy,
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run one execution under a strategy."""
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    step = 0
    while not execution.done():
        pid = strategy(execution.runnable(), step)
        if pid not in execution.runnable():
            pid = execution.runnable()[0]
        execution.step(pid)
        step += 1
    return execution.trace


def standard_battery(pids: Sequence[int]) -> List[Tuple[str, Strategy]]:
    """The default adversary collection for a set of process ids."""
    pids = sorted(pids)
    battery: List[Tuple[str, Strategy]] = []
    for runner in pids:
        others = tuple(p for p in pids if p != runner)
        battery.append((f"starve-all-but-{runner}", starver(others, runner)))
    if len(pids) >= 2:
        for i in range(len(pids)):
            for j in range(i + 1, len(pids)):
                battery.append(
                    (f"alternate-{pids[i]}-{pids[j]}", alternator((pids[i], pids[j])))
                )
    for slow in pids:
        battery.append((f"stutter-{slow}", stutterer(slow)))
    return battery


def adversarial_sweep(
    n: int,
    build_factories: Callable[[], Dict[int, ProcessFactory]],
    pids: Sequence[int],
    max_steps: int = 100_000,
) -> Iterator[Tuple[str, ExecutionTrace]]:
    """Run the standard battery; yields ``(strategy name, trace)`` pairs."""
    for name, strategy in standard_battery(pids):
        yield name, run_adversarial(n, build_factories(), strategy, max_steps=max_steps)
