"""The paper's Figure 7 algorithm (Lemma 5.3).

Given a *link-connected* task ``T`` and a color-agnostic algorithm ``A_C``
(processes decide vertices of a common output simplex, but possibly of the
wrong color), the algorithm below produces a properly chromatic solution:
every process decides a vertex of its own color, all on one simplex of
``Δ(τ)`` for the participating set ``τ``.

The implementation follows the figure's numbered steps.  Three notes:

* step (13) re-scans ``M_in``: by the time two non-pivots negotiate, both
  their inputs are visible, so the fresh scan gives both the same ``τ``
  (the step-9 scan can be stale in the race where a slow process's input
  write lands between another's steps 9 and 11);
* the path ``Π`` is the shortest ``(v_i, v_j)``-path in the link whose
  *vertex-number set* is lexicographically smallest — a symmetric choice,
  so both non-pivots compute the same path, as the paper requires;
* step (10)'s guard is read as "if ``v_i`` is still unset" (the figure's
  ``≠ ⊥`` is a typo: the comment says "(7) was not executed").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import networkx as nx

from ..tasks.task import Task
from ..topology.complexes import SimplicialComplex
from ..topology.simplex import Simplex, Vertex, vertex_sort_key

#: A color-agnostic sub-protocol: ``(pid, input_vertex) -> generator`` whose
#: return value is the decided (possibly wrongly-colored) output vertex.
AgnosticFactory = Callable[[int, Vertex], Generator]


def _vertex_numbering(output: SimplicialComplex) -> Dict[Vertex, int]:
    """The paper's "unique number for each vertex": canonical-order index."""
    return {v: k for k, v in enumerate(output.vertices)}


def _completion_candidates(
    task: Task, tau: Simplex, fixed: Tuple[Vertex, ...], pid: int
) -> List[Vertex]:
    """All own-colored vertices completing ``fixed`` inside ``Δ(τ)``."""
    image = task.delta(tau)
    return [
        v
        for v in image.vertices
        if v.color == pid and v not in fixed and Simplex(fixed + (v,)) in image
    ]


def first_completion(candidates: List[Vertex], pid: int) -> Vertex:
    """The default picker: the canonically smallest completion."""
    return candidates[0]


def spread_completion(candidates: List[Vertex], pid: int) -> Vertex:
    """An adversarial picker: processes pick from opposite ends.

    Used by benchmarks to place the two non-pivots as far apart as possible
    on the link, exhibiting the worst-case negotiation length of step (14).
    """
    return candidates[0] if pid % 2 else candidates[-1]


def _pick_completion(
    task: Task,
    tau: Simplex,
    fixed: Tuple[Vertex, ...],
    pid: int,
    picker: Callable[[List[Vertex], int], Vertex] = first_completion,
) -> Vertex:
    """An own-colored vertex completing ``fixed`` inside ``Δ(τ)``."""
    candidates = _completion_candidates(task, tau, fixed, pid)
    if not candidates:
        raise RuntimeError(
            f"no color-{pid} completion of {fixed!r} in Δ({tau!r}); "
            "is the task link-connected and Δ rigid?"
        )
    return picker(candidates, pid)


def _canonical_path(
    link: SimplicialComplex, a: Vertex, b: Vertex, numbering: Dict[Vertex, int]
) -> List[Vertex]:
    """Lexicographically-smallest shortest ``(a, b)``-path in a link graph.

    Identified, as in the paper, with the sorted set of vertex numbers, so
    both endpoints compute the same path.
    """
    g = link.graph()
    paths = nx.all_shortest_paths(g, a, b)
    best = min(paths, key=lambda p: tuple(sorted(numbering[v] for v in p)))
    return list(best)


def chromatic_agreement_process(
    task: Task,
    pid: int,
    input_vertex: Vertex,
    agnostic: AgnosticFactory,
    picker: Callable[[List[Vertex], int], Vertex] = first_completion,
) -> Generator[Tuple, Any, None]:
    """Process ``pid``'s code for the Figure 7 algorithm.

    A scheduler generator; the final operation is ``("decide", vertex)``
    with ``vertex`` an own-colored output vertex of ``task``.  ``picker``
    selects among the legal completions at steps (7b)/(10); correctness
    holds for any choice (the paper's proof does not constrain it), which
    the tests exercise with adversarial pickers.
    """
    numbering = _vertex_numbering(task.output_complex)

    def scan_tau(state) -> Simplex:
        return Simplex(x for x in state if x is not None)

    # (1) announce the input
    yield ("update", "M_in", input_vertex)

    # (2) run the color-agnostic algorithm
    y = yield from agnostic(pid, input_vertex)

    # (3) publish and view the agnostic decisions
    yield ("update", "M_cless", y)
    cless = yield ("scan", "M_cless")
    view_i = frozenset(v for v in cless if v is not None)

    # (4) second-level snapshot of views
    yield ("update", "M_snap", view_i)
    snaps = yield ("scan", "M_snap")
    views = [s for s in snaps if s]

    # (5) the core: minimal non-empty view (views are comparable)
    core = min(views, key=len)

    # (6) pivots decide immediately
    own = [v for v in core if v.color == pid]
    if own:
        yield ("decide", own[0])
        return

    v_i: Optional[Vertex] = None

    # (7) two-vertex core
    if len(core) == 2:
        u_star, w_star = sorted(core, key=vertex_sort_key)
        tau = scan_tau((yield ("scan", "M_in")))  # (7a): |τ| = 3 here
        v_i = _pick_completion(task, tau, (u_star, w_star), pid, picker)  # (7b)
        yield ("update", "M_decisions", (v_i, v_i, core))  # (7c)
        decisions = yield ("scan", "M_decisions")
        others = [
            d for j, d in enumerate(decisions) if j != pid and d is not None
        ]
        if not others:  # (7d)
            yield ("decide", v_i)
            return
        # (7e): the other writer's core is a singleton
        singletons = [d for d in others if len(d[2]) == 1]
        if not singletons:
            raise RuntimeError(
                "two non-pivots with two-vertex cores: views are not comparable?"
            )
        core = singletons[0][2]

    # (8) the single core vertex
    (v_star,) = core

    # (9) participating set
    tau = scan_tau((yield ("scan", "M_in")))  # |τ| >= 2

    # (10) pick an own-colored neighbor of v* if step (7) did not run
    if v_i is None:
        v_i = _pick_completion(task, tau, (v_star,), pid, picker)

    # (11) publish the proposal
    yield ("update", "M_decisions", (v_i, v_i, core))
    decisions = yield ("scan", "M_decisions")

    # (12) alone: decide
    others = {j: d for j, d in enumerate(decisions) if j != pid and d is not None}
    if not others:
        yield ("decide", v_i)
        return

    # (13) negotiate with the other non-pivot along a common link path
    ((j, entry),) = others.items()
    v_j, v, _ = entry
    tau = scan_tau((yield ("scan", "M_in")))  # fresh τ: both inputs visible now
    link = task.delta(tau).link(v_star)
    path = _canonical_path(link, v_i, v_j, numbering)

    v_prime = v_i
    # (14) jump toward the other's proposal until adjacent in the link
    while Simplex([v_prime, v]) not in link:
        # (14a): the neighbor of v on Π *on our side* — the proof's "inside
        # the sub-path of Π between their prior vertices".  Always stepping
        # toward the path's start instead livelocks once the two walkers
        # cross under tight alternation.
        idx_v = path.index(v)
        idx_own = path.index(v_prime)
        v_prime = path[idx_v - 1] if idx_own < idx_v else path[idx_v + 1]
        yield ("update", "M_decisions", (v_i, v_prime, core))  # (14b)
        decisions = yield ("scan", "M_decisions")
        v = decisions[j][1]  # (14c)

    # (15)
    yield ("decide", v_prime)


def make_chromatic_agreement_factories(
    task: Task,
    inputs: Simplex,
    agnostic: AgnosticFactory,
    picker: Callable[[List[Vertex], int], Vertex] = first_completion,
    check: bool = True,
) -> Dict[int, Callable[[int], Generator]]:
    """Process factories for all participants of an input simplex.

    Lemma 5.3's hypothesis is that the task is *link-connected*; with
    ``check`` (default) this is verified up front, since on a task with
    LAPs the step-(14) negotiation can start in two different link
    components and never meet.  Pass ``check=False`` on hot paths where the
    task is link-connected by construction (e.g. after the splitting
    pipeline).
    """
    if check:
        from ..splitting.lap import is_link_connected_task

        if not is_link_connected_task(task):
            raise ValueError(
                "the Figure 7 algorithm requires a link-connected task; "
                "run repro.splitting.link_connected_form first"
            )
    factories: Dict[int, Callable[[int], Generator]] = {}
    for x in inputs.vertices:
        def make(x_vertex: Vertex):
            def factory(pid: int) -> Generator:
                assert pid == x_vertex.color
                return chromatic_agreement_process(
                    task, pid, x_vertex, agnostic, picker
                )

            return factory

        factories[x.color] = make(x)
    return factories
