"""Simulation harness: validate protocols against task specifications.

Runs a protocol over many executions — seeded-random schedules, sequential
(solo-block) schedules, structured prefixes and exhaustively enumerated
interleavings for small budgets — across all participation patterns (every
face of every input facet), and checks the task's correctness conditions:

* every participating process decides;
* each process decides a vertex of its own color;
* the decided vertices form a simplex of ``Δ(τ)`` for the participating
  input simplex ``τ``.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from ..tasks.task import Task
from ..topology.simplex import Simplex, Vertex
from .scheduler import (
    ExecutionTrace,
    explore_schedules,
    run_random,
    run_solo_blocks,
)

FactoryBuilder = Callable[[Simplex], Dict[int, Callable[[int], Generator]]]


@dataclass
class Violation:
    """One failed execution, with enough context to replay it."""

    inputs: Simplex
    schedule: Tuple[int, ...]
    decisions: Dict[int, Vertex]
    reason: str

    def __repr__(self) -> str:
        return f"Violation[{self.reason} on {self.inputs!r}, schedule={self.schedule}]"


@dataclass
class ValidationReport:
    """Aggregate outcome of a validation campaign."""

    runs: int = 0
    violations: List[Violation] = field(default_factory=list)
    max_steps: int = 0
    total_steps: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def mean_steps(self) -> float:
        return self.total_steps / self.runs if self.runs else 0.0

    def merge_trace(self, trace: ExecutionTrace) -> None:
        self.runs += 1
        self.total_steps += trace.total_steps()
        if trace.steps:
            self.max_steps = max(self.max_steps, max(trace.steps.values()))

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violations"
        return f"ValidationReport[{self.runs} runs, {status}]"


def check_trace(task: Task, inputs: Simplex, trace: ExecutionTrace) -> Optional[str]:
    """Return a violation reason for an execution, or ``None`` if legal."""
    participating = set(inputs.colors())
    decided = set(trace.decisions)
    if decided != participating:
        return f"processes {sorted(participating - decided)} never decided"
    for pid, v in trace.decisions.items():
        if not isinstance(v, Vertex) or v.color != pid:
            return f"process {pid} decided {v!r}, not an own-colored vertex"
    simplex = Simplex(trace.decisions.values())
    if simplex not in task.delta(inputs):
        return f"decisions {simplex!r} are not in Δ({inputs!r})"
    return None


def _simplex_key(inputs: Simplex) -> int:
    """A stable (cross-process, hash-seed independent) key for a simplex."""
    payload = ";".join(
        f"{v.color}:{v.value!r}"
        for v in sorted(inputs.vertices, key=lambda v: (v.color, repr(v.value)))
    )
    return zlib.crc32(payload.encode("utf-8", "backslashreplace"))


def derive_run_seed(seed: int, inputs: Simplex, k: int) -> int:
    """Derive the RNG seed for random run ``k`` on input simplex ``inputs``.

    Both the input simplex and the run index are mixed in, so different
    inputs exercise different schedule sets even under the default
    ``seed=0`` (the old ``seed * 7919 + k`` collapsed to ``k`` there,
    replaying one identical schedule set for every input).  The simplex
    key is content-derived and hash-seed independent, so the same seeds
    are drawn in every process of a conformance campaign pool.
    """
    return (seed * 0x9E3779B1 + _simplex_key(inputs)) * 0x85EBCA77 + k


def participation_simplices(task: Task, participation: str) -> Tuple[Simplex, ...]:
    """The deterministic participation order for a validation campaign:
    ``"facets"`` (full participation only) or ``"all"`` faces."""
    if participation == "facets":
        return task.input_complex.facets
    if participation == "all":
        return task.input_complex.simplices()
    raise ValueError(f"unknown participation mode {participation!r}")


def validate_protocol(
    task: Task,
    build: FactoryBuilder,
    participation: str = "all",
    random_runs: int = 25,
    exhaustive_limit: Optional[int] = None,
    adversarial: bool = False,
    seed: int = 0,
    max_steps: int = 100_000,
) -> ValidationReport:
    """Validate a protocol against a task across schedules and inputs.

    ``build(inputs)`` must return the per-process factories for an input
    simplex.  ``exhaustive_limit`` bounds the number of exhaustively
    enumerated interleavings per input (``None`` disables enumeration);
    ``adversarial`` additionally runs the starver/alternator/stutterer
    battery of :mod:`repro.runtime.adversary`.
    """
    report = ValidationReport()
    for inputs in participation_simplices(task, participation):
        n = max(inputs.colors()) + 1

        def record(trace: ExecutionTrace) -> None:
            report.merge_trace(trace)
            reason = check_trace(task, inputs, trace)
            if reason is not None:
                report.violations.append(
                    Violation(
                        inputs=inputs,
                        schedule=tuple(trace.schedule),
                        decisions=dict(trace.decisions),
                        reason=reason,
                    )
                )

        # sequential orders: every permutation of solo blocks
        for order in itertools.permutations(sorted(inputs.colors())):
            factories = build(inputs)
            record(run_solo_blocks(n, factories, order, max_steps=max_steps))

        # seeded random schedules (seed mixed per input simplex and run)
        for k in range(random_runs):
            factories = build(inputs)
            record(
                run_random(
                    n,
                    factories,
                    seed=derive_run_seed(seed, inputs, k),
                    max_steps=max_steps,
                )
            )

        # targeted adversarial schedules
        if adversarial:
            from .adversary import adversarial_sweep

            for _name, trace in adversarial_sweep(
                n,
                lambda: build(inputs),
                sorted(inputs.colors()),
                max_steps=max_steps,
            ):
                record(trace)

        # exhaustive interleavings under a budget (factories are re-invoked
        # per enumerated execution, so one builder call suffices)
        if exhaustive_limit:
            for trace in explore_schedules(
                n,
                build(inputs),
                max_executions=exhaustive_limit,
                max_steps=max_steps,
            ):
                record(trace)
    return report


def run_once(
    task: Task,
    build: FactoryBuilder,
    inputs: Simplex,
    seed: int = 0,
    max_steps: int = 100_000,
) -> Tuple[Dict[int, Vertex], Optional[str]]:
    """Run one random-schedule execution; return decisions and violation."""
    n = max(inputs.colors()) + 1
    trace = run_random(n, build(inputs), seed=seed, max_steps=max_steps)
    return dict(trace.decisions), check_trace(task, inputs, trace)
