"""Empirical protocol complexes: reachable view simplices from execution.

The theoretical protocol complex ``Ch^r`` is built combinatorially in
:mod:`repro.topology.subdivision`; this module builds its *empirical*
counterpart by actually running the full-information protocol over
schedules and collecting the final-view simplices.  The two agree (tested
exhaustively for small cases), which is the executable form of the paper's
Section 2.4 claim that full-information immediate-snapshot protocols
induce chromatic subdivisions.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Set

from ..topology.chromatic import ChromaticComplex
from ..topology.simplex import Simplex
from ..topology.subdivision import ordered_partitions
from .full_information import make_full_information_factories
from .scheduler import Execution, explore_schedules, run_random


def _run_block_schedule(factories, n: int, blocks) -> Simplex:
    execution = Execution(n, {pid: make(pid) for pid, make in factories.items()})
    for block in blocks:
        members = sorted(block)
        while any(pid in execution.runnable() for pid in members):
            for pid in members:
                if pid in execution.runnable():
                    execution.step(pid)
    while not execution.done():
        execution.step(execution.runnable()[0])
    return Simplex(execution.trace.decisions.values())


def reachable_views_complex(
    inputs: Simplex,
    rounds: int,
    random_schedules: int = 200,
    exhaustive_limit: Optional[int] = None,
    block_schedules: bool = True,
) -> ChromaticComplex:
    """The complex of final-view simplices reachable by real executions.

    Reachability is explored three ways: per-round block schedules (one per
    composition of ordered partitions, guaranteeing systematic coverage for
    ``rounds = 1``), seeded random schedules, and (optionally) exhaustive
    interleaving enumeration up to a budget.
    """
    factories, n = make_full_information_factories(inputs, rounds)
    facets: Set[Simplex] = set()

    if block_schedules:
        pids = sorted(v.color for v in inputs.vertices)
        for blocks in ordered_partitions(pids):
            facets.add(_run_block_schedule(factories, n, blocks))

    for seed in range(random_schedules):
        trace = run_random(n, factories, seed=seed)
        facets.add(Simplex(trace.decisions.values()))

    if exhaustive_limit:
        for trace in explore_schedules(
            n, factories, max_executions=exhaustive_limit
        ):
            facets.add(Simplex(trace.decisions.values()))

    return ChromaticComplex(facets, name=f"views(r={rounds})")


def realizes_subdivision(
    inputs: Simplex, rounds: int, **kwargs
) -> bool:
    """Whether the empirical complex is a subcomplex of ``Ch^r``.

    Always true if the substrate is correct (the converse inclusion —
    reaching *every* facet — needs enough schedules; block schedules
    guarantee it for one round).
    """
    from ..topology.subdivision import iterated_chromatic_subdivision

    base = ChromaticComplex([inputs])
    sub = iterated_chromatic_subdivision(base, rounds)
    empirical = reachable_views_complex(inputs, rounds, **kwargs)
    return empirical.is_subcomplex_of(sub.complex)
