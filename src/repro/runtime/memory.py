"""Shared-memory objects (Section 2.1 of the paper).

The model: ``n`` asynchronous processes communicating through single-writer
multi-reader atomic registers.  We provide:

* :class:`RegisterArray` — one SWMR register per process;
* :class:`SnapshotObject` — an array supporting ``update`` and an atomic
  ``scan`` (the paper's "stronger variant", assumed w.l.o.g.; the
  scheduler executes a scan as one atomic step);
* non-atomic ``collect`` (a sequence of reads) for completeness;
* one-shot *immediate snapshot* — implemented as the classical
  Borowsky–Gafni floor-descent algorithm on top of atomic snapshots in
  :mod:`repro.runtime.process`, not as a primitive.

All state lives in a :class:`SharedMemory` keyed by object name; processes
never touch these objects directly — they yield operation requests that
the scheduler executes atomically (see :mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class MemoryError_(RuntimeError):
    """Raised on invalid shared-memory usage (wrong owner, unknown object)."""


@dataclass
class RegisterArray:
    """``n`` single-writer multi-reader atomic registers."""

    n: int
    values: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.values:
            self.values = [None] * self.n

    def write(self, pid: int, value: Any) -> None:
        if not 0 <= pid < self.n:
            raise MemoryError_(f"register index {pid} out of range")
        self.values[pid] = value

    def read(self, index: int) -> Any:
        if not 0 <= index < self.n:
            raise MemoryError_(f"register index {index} out of range")
        return self.values[index]

    def snapshot_all(self) -> Tuple[Any, ...]:
        return tuple(self.values)

    def clone(self) -> "RegisterArray":
        """An independent copy (cell values are shared by reference; the
        model only ever stores immutable values in registers)."""
        return RegisterArray(self.n, list(self.values))


@dataclass
class SnapshotObject:
    """An array with atomic ``scan`` (update one slot, read all slots)."""

    n: int
    values: List[Any] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.values:
            self.values = [None] * self.n

    def update(self, pid: int, value: Any) -> None:
        if not 0 <= pid < self.n:
            raise MemoryError_(f"snapshot index {pid} out of range")
        self.values[pid] = value

    def scan(self) -> Tuple[Any, ...]:
        return tuple(self.values)

    def clone(self) -> "SnapshotObject":
        """An independent copy (slot values are shared by reference)."""
        return SnapshotObject(self.n, list(self.values))


class SharedMemory:
    """A namespace of shared objects for one execution."""

    def __init__(self, n: int):
        self.n = n
        self._objects: Dict[str, Any] = {}

    def register_array(self, name: str) -> RegisterArray:
        """Create (or fetch) a register array under ``name``."""
        obj = self._objects.get(name)
        if obj is None:
            obj = RegisterArray(self.n)
            self._objects[name] = obj
        if not isinstance(obj, RegisterArray):
            raise MemoryError_(f"{name!r} exists and is not a register array")
        return obj

    def snapshot_object(self, name: str) -> SnapshotObject:
        """Create (or fetch) a snapshot object under ``name``."""
        obj = self._objects.get(name)
        if obj is None:
            obj = SnapshotObject(self.n)
            self._objects[name] = obj
        if not isinstance(obj, SnapshotObject):
            raise MemoryError_(f"{name!r} exists and is not a snapshot object")
        return obj

    def get(self, name: str) -> Any:
        try:
            return self._objects[name]
        except KeyError as exc:
            raise MemoryError_(f"unknown shared object {name!r}") from exc

    def clone(self) -> "SharedMemory":
        """A structurally independent copy of every shared object.

        Used by :meth:`repro.runtime.scheduler.Execution.fork` to branch an
        execution without replaying its memory operations.  Register cells
        and snapshot slots are copied per object; the *values* inside them
        are shared by reference, which is sound because protocol code only
        stores immutable values (vertices, tuples, ints).
        """
        copy = SharedMemory(self.n)
        copy._objects = {name: obj.clone() for name, obj in self._objects.items()}
        return copy

    def object_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._objects))
