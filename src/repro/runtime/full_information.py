"""The full-information immediate-snapshot protocol (Section 2.4).

``r`` rounds of one-shot immediate snapshots, each round writing the view
acquired in the previous one.  The final views are, by construction,
vertices of the ``r``-fold standard chromatic subdivision ``Ch^r(I)`` of
the input complex — the exact subdivision used by the map search — so a
simplicial map ``δ : Ch^r(I) → O`` turns directly into the wait-free
protocol "run ``r`` rounds, decide ``δ(view)``".
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from ..topology.simplex import Simplex, Vertex
from .immediate_snapshot import immediate_snapshot


def full_information_views(
    n: int, pid: int, input_vertex: Vertex, rounds: int
) -> Generator[Tuple, Any, Vertex]:
    """Run ``rounds`` immediate-snapshot rounds; return the ``Ch^r`` vertex.

    A scheduler sub-generator.  Round ``k`` uses the snapshot object
    ``_FI<k>``; with ``rounds = 0`` the input vertex itself is returned
    (the identity subdivision).
    """
    current: Vertex = input_vertex
    for k in range(rounds):
        view = yield from immediate_snapshot(f"_FI{k}", n, pid, current)
        current = Vertex(pid, Simplex(view.values()))
    return current


def make_full_information_factories(inputs, rounds: int):
    """Factories for all participants of an input simplex.

    ``inputs`` is a chromatic simplex (or iterable of input vertices); the
    returned dict maps each pid to a factory whose process decides its
    final ``Ch^r`` vertex.
    """
    vertices = list(inputs)
    n = max(v.color for v in vertices) + 1

    def make_factory(v: Vertex):
        def factory(pid: int):
            assert pid == v.color

            def body():
                out = yield from full_information_views(n, pid, v, rounds)
                yield ("decide", out)

            return body()

        return factory

    return {v.color: make_factory(v) for v in vertices}, n
