"""Wait-free atomic snapshot from single-writer registers [AADGMS93].

The paper's model (Section 2.1) allows assuming atomic ``scan`` w.l.o.g.;
the scheduler's :class:`~repro.runtime.memory.SnapshotObject` provides that
directly.  This module closes the loop by *constructing* the snapshot from
plain SWMR registers, following Afek, Attiya, Dolev, Gafni, Merritt and
Shavit: every update embeds a scan; a scanner double-collects until either
two identical collects succeed (a direct scan) or some process is seen to
move twice, in which case the scanner borrows that process's embedded scan
(which is linearizable within the scanner's interval).

Register contents are ``(seq, value, embedded_view)`` triples.  The
implementation is wait-free: a scanner performs at most ``n + 2`` collects.

Sub-generators for the cooperative scheduler:

* ``snapshot_update(name, n, pid, value)``
* ``snapshot_scan(name, n, pid)``

Both operate on a register array ``name``; reads are issued one register
at a time, so *every* interleaving of the underlying atomic reads/writes is
explored by the scheduler — the linearizability tests in
``tests/runtime/test_atomic_snapshot.py`` run exhaustively over them.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

Entry = Tuple[int, Any, Optional[Tuple[Any, ...]]]


def _collect(name: str, n: int) -> Generator[Tuple, Any, Tuple[Optional[Entry], ...]]:
    """One register-by-register collect (not atomic)."""
    out = []
    for j in range(n):
        entry = yield ("read", name, j)
        out.append(entry)
    return tuple(out)


def _values_of(collected: Tuple[Optional[Entry], ...]) -> Tuple[Any, ...]:
    return tuple(e[1] if e is not None else None for e in collected)


def snapshot_scan(name: str, n: int, pid: int) -> Generator[Tuple, Any, Tuple[Any, ...]]:
    """Wait-free linearizable scan of the register array ``name``.

    Returns the vector of current values (``None`` for never-written
    slots).
    """
    moved: set = set()
    previous = yield from _collect(name, n)
    while True:
        current = yield from _collect(name, n)
        if current == previous:
            return _values_of(current)
        for j in range(n):
            if previous[j] != current[j]:
                if j in moved:
                    # j moved twice during our scan: its embedded view was
                    # produced entirely within our interval — borrow it
                    view = current[j][2]
                    if view is not None:
                        return view
                moved.add(j)
        previous = current


def snapshot_update(
    name: str, n: int, pid: int, value: Any
) -> Generator[Tuple, Any, None]:
    """Wait-free update of slot ``pid``: embed a scan, then write."""
    view = yield from snapshot_scan(name, n, pid)
    old = yield ("read", name, pid)
    seq = (old[0] + 1) if old is not None else 1
    yield ("write", name, (seq, value, view))
