"""A deterministic cooperative scheduler over process coroutines.

Processes are Python generators that *yield* operation requests
(:class:`Op`) and receive results via ``send``; each yielded operation is
executed atomically.  All interleavings of atomic operations are therefore
exactly the sequences of process ids the scheduler picks — which makes
executions replayable (a schedule is a list of pids), seedable (random
schedules) and enumerable (exhaustive DFS over choice points for small
step counts).

Supported operations:

``("write", name, value)``          — write own SWMR register in array *name*
``("read", name, index)``           — read register *index* of array *name*
``("collect", name)``               — **non**-atomic collect; sugar that the
                                      scheduler expands to one read per step
                                      is avoided: processes that want a true
                                      collect issue reads one by one; this op
                                      exists for tests of atomicity anomalies
                                      and is executed as reads in one sweep,
                                      documented as the *scan* variant
``("update", name, value)``         — update own slot of snapshot object
``("scan", name)``                  — atomic scan of snapshot object
``("decide", value)``               — record a decision and terminate
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Sequence, Tuple

from .memory import SharedMemory

ProcessBody = Generator  # yields op tuples, returns decision via ("decide", v)
ProcessFactory = Callable[[int], ProcessBody]


class SchedulerError(RuntimeError):
    """Raised on protocol misbehaviour (bad op, step overrun, no decision)."""


@dataclass
class ExecutionTrace:
    """What happened in one run: per-process decisions and step counts.

    When the execution was created with ``record_ops=True``, ``ops`` holds
    the full ``(pid, op, result)`` log — the raw material for debugging a
    protocol or asserting on its communication pattern.
    """

    decisions: Dict[int, Any] = field(default_factory=dict)
    steps: Dict[int, int] = field(default_factory=dict)
    schedule: List[int] = field(default_factory=list)
    ops: List[Tuple[int, Tuple, Any]] = field(default_factory=list)

    def total_steps(self) -> int:
        return sum(self.steps.values())

    def ops_of(self, pid: int) -> List[Tuple[Tuple, Any]]:
        """The (op, result) log of one process, in execution order."""
        return [(op, res) for p, op, res in self.ops if p == pid]

    def writes_to(self, name: str) -> List[Tuple[int, Any]]:
        """All ``update``/``write`` operations touching a shared object."""
        return [
            (p, op[2])
            for p, op, _ in self.ops
            if op[0] in ("write", "update") and op[1] == name
        ]


class Execution:
    """One run of a set of processes over a fresh shared memory.

    Drive it with :meth:`step` (choose which process moves) until
    :meth:`done`; or use the convenience runners below.
    """

    def __init__(
        self,
        n: int,
        processes: Dict[int, ProcessBody],
        max_steps: int = 100_000,
        record_ops: bool = False,
    ):
        self.memory = SharedMemory(n)
        self.n = n
        self._procs: Dict[int, ProcessBody] = dict(processes)
        self._pending: Dict[int, Any] = {}  # next value to send into each generator
        self._started: Dict[int, bool] = {pid: False for pid in processes}
        # per-process op-result log; deterministic processes are entirely a
        # function of this sequence, which is what makes :meth:`fork` possible
        self._results: Dict[int, List[Any]] = {pid: [] for pid in processes}
        self.trace = ExecutionTrace(steps={pid: 0 for pid in processes})
        self.max_steps = max_steps
        self.record_ops = record_ops

    # -- core stepping -------------------------------------------------------

    def runnable(self) -> Tuple[int, ...]:
        """Process ids that have not yet decided."""
        return tuple(sorted(self._procs))

    def done(self) -> bool:
        return not self._procs

    def step(self, pid: int) -> None:
        """Run one atomic operation of process ``pid``."""
        if pid not in self._procs:
            raise SchedulerError(f"process {pid} is not runnable")
        gen = self._procs[pid]
        self.trace.steps[pid] += 1
        self.trace.schedule.append(pid)
        if self.trace.steps[pid] > self.max_steps:
            raise SchedulerError(f"process {pid} exceeded {self.max_steps} steps")
        try:
            if not self._started[pid]:
                self._started[pid] = True
                op = gen.send(None)
            else:
                op = gen.send(self._pending.pop(pid, None))
        except StopIteration as stop:
            raise SchedulerError(
                f"process {pid} returned {stop.value!r} without a ('decide', …) op"
            ) from stop
        result = self._execute(pid, op)
        self._pending[pid] = result
        self._results[pid].append(result)
        if self.record_ops:
            self.trace.ops.append((pid, op, result))
        if op[0] == "decide":
            self.trace.decisions[pid] = op[1]
            self._procs.pop(pid)
            gen.close()

    def fork(self, factories: Dict[int, ProcessFactory]) -> "Execution":
        """Branch this execution into an independent copy.

        ``factories`` must be the (deterministic) factories the execution's
        processes were built from.  Shared memory and the trace are copied
        structurally; each still-running generator is reconstructed by
        feeding a fresh generator the recorded op results — no memory
        operation is re-executed, no scheduling choice is replayed.  The
        fork and the original then evolve independently: this is what lets
        the prefix-tree enumerator explore sibling schedules without
        re-stepping the shared prefix through :meth:`step`.
        """
        clone = Execution.__new__(Execution)
        clone.memory = self.memory.clone()
        clone.n = self.n
        clone.max_steps = self.max_steps
        clone.record_ops = self.record_ops
        clone._pending = dict(self._pending)
        clone._started = dict(self._started)
        clone._results = {pid: list(log) for pid, log in self._results.items()}
        clone.trace = ExecutionTrace(
            decisions=dict(self.trace.decisions),
            steps=dict(self.trace.steps),
            schedule=list(self.trace.schedule),
            ops=list(self.trace.ops),
        )
        clone._procs = {}
        for pid in self._procs:
            gen = factories[pid](pid)
            results = self._results[pid]
            if results:
                try:
                    gen.send(None)
                    for value in results[:-1]:
                        gen.send(value)
                except StopIteration as stop:
                    raise SchedulerError(
                        f"process {pid} is not deterministic: it ended during "
                        f"fork replay (returned {stop.value!r})"
                    ) from stop
            clone._procs[pid] = gen
        return clone

    def _execute(self, pid: int, op: Tuple) -> Any:
        kind = op[0]
        if kind == "write":
            _, name, value = op
            self.memory.register_array(name).write(pid, value)
            return None
        if kind == "read":
            _, name, index = op
            return self.memory.register_array(name).read(index)
        if kind == "update":
            _, name, value = op
            self.memory.snapshot_object(name).update(pid, value)
            return None
        if kind == "scan":
            _, name = op
            return self.memory.snapshot_object(name).scan()
        if kind == "decide":
            return None
        raise SchedulerError(f"process {pid} issued unknown op {op!r}")


# ---------------------------------------------------------------------------
# Convenience runners
# ---------------------------------------------------------------------------


def run_with_schedule(
    n: int,
    factories: Dict[int, ProcessFactory],
    schedule: Sequence[int],
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Replay an explicit schedule; remaining steps run true round-robin.

    ``schedule`` entries naming finished (or absent) processes are skipped,
    so schedules are robust to length mismatches.  After the explicit
    prefix is exhausted, every still-running process takes one step per
    pass, in pid order, until all have decided — an interleaved tail, not
    solo blocks.
    """
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    for pid in schedule:
        if execution.done():
            break
        if pid in execution.runnable():
            execution.step(pid)
    while not execution.done():
        for pid in execution.runnable():
            execution.step(pid)
    return execution.trace


def run_random(
    n: int,
    factories: Dict[int, ProcessFactory],
    seed: int,
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run under a seeded uniformly random scheduler."""
    rng = random.Random(seed)
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    while not execution.done():
        pid = rng.choice(execution.runnable())
        execution.step(pid)
    return execution.trace


def run_solo_blocks(
    n: int,
    factories: Dict[int, ProcessFactory],
    order: Sequence[int],
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run each process to completion in the given order (sequential runs).

    Processes not named in ``order`` run afterwards in a true round-robin
    interleaving (one step each per pass), so a partial ``order`` exercises
    a solo prefix followed by a concurrent tail.
    """
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    for pid in order:
        while pid in execution.runnable():
            execution.step(pid)
    while not execution.done():
        for pid in execution.runnable():
            execution.step(pid)
    return execution.trace


def explore_schedules(
    n: int,
    factories: Dict[int, ProcessFactory],
    max_executions: Optional[int] = None,
    max_steps: int = 10_000,
) -> Iterator[ExecutionTrace]:
    """Exhaustively enumerate interleavings via a prefix-tree DFS.

    Processes must be deterministic (true for everything in this library).
    The enumerator walks the tree of scheduler choices keeping *live*
    ``Execution`` states along the current path: descending into the last
    unexplored child of a node consumes the node's execution (one
    :meth:`Execution.step`), while earlier siblings get an incremental
    :meth:`Execution.fork` — shared memory is copied structurally and
    generators are rebuilt from their op-result logs, so the common prefix
    is never re-stepped through the scheduler.  This replaces a
    replay-from-scratch DFS that cost O(executions × steps) in re-stepping
    (kept as :func:`_explore_schedules_replay` for benchmarking).

    Traces are yielded in the same lexicographic (smallest pid first)
    order as the replay enumerator.  The number of interleavings explodes
    with step count, so callers cap with ``max_executions``.
    """
    count = 0
    root = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    if root.done():
        yield root.trace
        return
    stack: List[Tuple[Execution, List[int]]] = [(root, list(root.runnable()))]
    while stack:
        execution, pending = stack[-1]
        if not pending:
            stack.pop()
            continue
        pid = pending.pop(0)
        if pending:
            child = execution.fork(factories)
        else:
            child = execution  # last sibling: consume the node's live state
            stack.pop()
        child.step(pid)
        if child.done():
            yield child.trace
            count += 1
            if max_executions is not None and count >= max_executions:
                return
        else:
            stack.append((child, list(child.runnable())))


def _explore_schedules_replay(
    n: int,
    factories: Dict[int, ProcessFactory],
    max_executions: Optional[int] = None,
    max_steps: int = 10_000,
) -> Iterator[ExecutionTrace]:
    """The original replay-from-scratch DFS enumerator.

    Re-steps every prefix through a fresh :class:`Execution` for each node
    it visits.  Kept only as the baseline that
    ``benchmarks/bench_conformance.py`` measures :func:`explore_schedules`
    against; both enumerate the same traces in the same order.
    """
    count = 0
    stack: List[List[int]] = [[]]
    while stack:
        prefix = stack.pop()
        execution = Execution(
            n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
        )
        ok = True
        for pid in prefix:
            if pid not in execution.runnable():
                ok = False
                break
            execution.step(pid)
        if not ok:
            continue
        if execution.done():
            yield execution.trace
            count += 1
            if max_executions is not None and count >= max_executions:
                return
            continue
        for pid in reversed(execution.runnable()):
            stack.append(prefix + [pid])
