"""A deterministic cooperative scheduler over process coroutines.

Processes are Python generators that *yield* operation requests
(:class:`Op`) and receive results via ``send``; each yielded operation is
executed atomically.  All interleavings of atomic operations are therefore
exactly the sequences of process ids the scheduler picks — which makes
executions replayable (a schedule is a list of pids), seedable (random
schedules) and enumerable (exhaustive DFS over choice points for small
step counts).

Supported operations:

``("write", name, value)``          — write own SWMR register in array *name*
``("read", name, index)``           — read register *index* of array *name*
``("collect", name)``               — **non**-atomic collect; sugar that the
                                      scheduler expands to one read per step
                                      is avoided: processes that want a true
                                      collect issue reads one by one; this op
                                      exists for tests of atomicity anomalies
                                      and is executed as reads in one sweep,
                                      documented as the *scan* variant
``("update", name, value)``         — update own slot of snapshot object
``("scan", name)``                  — atomic scan of snapshot object
``("decide", value)``               — record a decision and terminate
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Sequence, Tuple

from .memory import SharedMemory

ProcessBody = Generator  # yields op tuples, returns decision via ("decide", v)
ProcessFactory = Callable[[int], ProcessBody]


class SchedulerError(RuntimeError):
    """Raised on protocol misbehaviour (bad op, step overrun, no decision)."""


@dataclass
class ExecutionTrace:
    """What happened in one run: per-process decisions and step counts.

    When the execution was created with ``record_ops=True``, ``ops`` holds
    the full ``(pid, op, result)`` log — the raw material for debugging a
    protocol or asserting on its communication pattern.
    """

    decisions: Dict[int, Any] = field(default_factory=dict)
    steps: Dict[int, int] = field(default_factory=dict)
    schedule: List[int] = field(default_factory=list)
    ops: List[Tuple[int, Tuple, Any]] = field(default_factory=list)

    def total_steps(self) -> int:
        return sum(self.steps.values())

    def ops_of(self, pid: int) -> List[Tuple[Tuple, Any]]:
        """The (op, result) log of one process, in execution order."""
        return [(op, res) for p, op, res in self.ops if p == pid]

    def writes_to(self, name: str) -> List[Tuple[int, Any]]:
        """All ``update``/``write`` operations touching a shared object."""
        return [
            (p, op[2])
            for p, op, _ in self.ops
            if op[0] in ("write", "update") and op[1] == name
        ]


class Execution:
    """One run of a set of processes over a fresh shared memory.

    Drive it with :meth:`step` (choose which process moves) until
    :meth:`done`; or use the convenience runners below.
    """

    def __init__(
        self,
        n: int,
        processes: Dict[int, ProcessBody],
        max_steps: int = 100_000,
        record_ops: bool = False,
    ):
        self.memory = SharedMemory(n)
        self.n = n
        self._procs: Dict[int, ProcessBody] = dict(processes)
        self._pending: Dict[int, Any] = {}  # next value to send into each generator
        self._started: Dict[int, bool] = {pid: False for pid in processes}
        self.trace = ExecutionTrace(steps={pid: 0 for pid in processes})
        self.max_steps = max_steps
        self.record_ops = record_ops

    # -- core stepping -------------------------------------------------------

    def runnable(self) -> Tuple[int, ...]:
        """Process ids that have not yet decided."""
        return tuple(sorted(self._procs))

    def done(self) -> bool:
        return not self._procs

    def step(self, pid: int) -> None:
        """Run one atomic operation of process ``pid``."""
        if pid not in self._procs:
            raise SchedulerError(f"process {pid} is not runnable")
        gen = self._procs[pid]
        self.trace.steps[pid] += 1
        self.trace.schedule.append(pid)
        if self.trace.steps[pid] > self.max_steps:
            raise SchedulerError(f"process {pid} exceeded {self.max_steps} steps")
        try:
            if not self._started[pid]:
                self._started[pid] = True
                op = gen.send(None)
            else:
                op = gen.send(self._pending.pop(pid, None))
        except StopIteration as stop:
            raise SchedulerError(
                f"process {pid} returned {stop.value!r} without a ('decide', …) op"
            ) from stop
        result = self._execute(pid, op)
        self._pending[pid] = result
        if self.record_ops:
            self.trace.ops.append((pid, op, result))
        if op[0] == "decide":
            self.trace.decisions[pid] = op[1]
            self._procs.pop(pid)
            gen.close()

    def _execute(self, pid: int, op: Tuple) -> Any:
        kind = op[0]
        if kind == "write":
            _, name, value = op
            self.memory.register_array(name).write(pid, value)
            return None
        if kind == "read":
            _, name, index = op
            return self.memory.register_array(name).read(index)
        if kind == "update":
            _, name, value = op
            self.memory.snapshot_object(name).update(pid, value)
            return None
        if kind == "scan":
            _, name = op
            return self.memory.snapshot_object(name).scan()
        if kind == "decide":
            return None
        raise SchedulerError(f"process {pid} issued unknown op {op!r}")


# ---------------------------------------------------------------------------
# Convenience runners
# ---------------------------------------------------------------------------


def run_with_schedule(
    n: int,
    factories: Dict[int, ProcessFactory],
    schedule: Sequence[int],
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Replay an explicit schedule; remaining steps run round-robin.

    ``schedule`` entries naming finished (or absent) processes are skipped,
    so schedules are robust to length mismatches.
    """
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    for pid in schedule:
        if execution.done():
            break
        if pid in execution.runnable():
            execution.step(pid)
    while not execution.done():
        for pid in execution.runnable():
            execution.step(pid)
            break
    return execution.trace


def run_random(
    n: int,
    factories: Dict[int, ProcessFactory],
    seed: int,
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run under a seeded uniformly random scheduler."""
    rng = random.Random(seed)
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    while not execution.done():
        pid = rng.choice(execution.runnable())
        execution.step(pid)
    return execution.trace


def run_solo_blocks(
    n: int,
    factories: Dict[int, ProcessFactory],
    order: Sequence[int],
    max_steps: int = 100_000,
) -> ExecutionTrace:
    """Run each process to completion in the given order (sequential runs)."""
    execution = Execution(
        n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
    )
    for pid in order:
        while pid in execution.runnable():
            execution.step(pid)
    while not execution.done():
        for pid in execution.runnable():
            execution.step(pid)
            break
    return execution.trace


def explore_schedules(
    n: int,
    factories: Dict[int, ProcessFactory],
    max_executions: Optional[int] = None,
    max_steps: int = 10_000,
) -> Iterator[ExecutionTrace]:
    """Exhaustively enumerate interleavings by DFS over scheduler choices.

    Processes must be deterministic (true for everything in this library):
    each execution replays a prefix of pid choices and explores every
    runnable extension.  The number of interleavings explodes with step
    count, so callers cap with ``max_executions``.
    """
    count = 0
    stack: List[List[int]] = [[]]
    while stack:
        prefix = stack.pop()
        execution = Execution(
            n, {pid: make(pid) for pid, make in factories.items()}, max_steps=max_steps
        )
        ok = True
        for pid in prefix:
            if pid not in execution.runnable():
                ok = False
                break
            execution.step(pid)
        if not ok:
            continue
        if execution.done():
            yield execution.trace
            count += 1
            if max_executions is not None and count >= max_executions:
                return
            continue
        for pid in reversed(execution.runnable()):
            stack.append(prefix + [pid])
