"""One-shot immediate snapshot via the Borowsky–Gafni floor algorithm.

The paper assumes processes communicate by immediate snapshots (Section
2.1).  Rather than making IS a scheduler primitive, we implement the
classical wait-free construction from atomic snapshots [BG93]: a process
starts at floor ``n`` and descends; at each floor it updates its
``(floor, value)`` pair and scans; when the set of processes at its floor
or below has size at least its floor, it returns their values.

The returned views satisfy the immediate-snapshot properties —
self-inclusion, comparability *and immediacy* (``j ∈ view_i`` implies
``view_j ⊆ view_i``) — which is exactly what makes the one-round views
form the standard chromatic subdivision (tested exhaustively in the test
suite).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Tuple


def immediate_snapshot(
    name: str, n: int, pid: int, value: Any
) -> Generator[Tuple, Any, Dict[int, Any]]:
    """Write ``value`` and immediately snapshot; a scheduler sub-generator.

    Use as ``view = yield from immediate_snapshot("IS0", n, i, v)``; the
    result maps process ids to their values (own id always included).
    The underlying snapshot object stores ``(floor, value)`` pairs under
    the given name.
    """
    floor = n + 1
    while True:
        floor -= 1
        if floor <= 0:
            raise RuntimeError("immediate snapshot descended below floor 1")
        yield ("update", name, (floor, value))
        state = yield ("scan", name)
        at_or_below = {
            j: entry[1]
            for j, entry in enumerate(state)
            if entry is not None and entry[0] <= floor
        }
        if len(at_or_below) >= floor:
            return at_or_below
