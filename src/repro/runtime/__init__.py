"""The asynchronous shared-memory substrate and executable protocols."""

from .atomic_snapshot import snapshot_scan, snapshot_update
from .chromatic_agreement import (
    chromatic_agreement_process,
    first_completion,
    make_chromatic_agreement_factories,
    spread_completion,
)
from .full_information import (
    full_information_views,
    make_full_information_factories,
)
from .conformance import (
    ConformanceConfig,
    ConformanceReport,
    TaskConformance,
    ViolationRecord,
    census_slice,
    conform_protocol,
    conform_task,
    replay_violation,
    resolve_campaign_task,
    run_campaign,
    shrink_schedule,
)
from .immediate_snapshot import immediate_snapshot
from .memory import RegisterArray, SharedMemory, SnapshotObject
from .protocol_complex import reachable_views_complex, realizes_subdivision
from .scheduler import (
    Execution,
    ExecutionTrace,
    SchedulerError,
    explore_schedules,
    run_random,
    run_solo_blocks,
    run_with_schedule,
)
from .simulation import (
    ValidationReport,
    Violation,
    check_trace,
    derive_run_seed,
    participation_simplices,
    run_once,
    validate_protocol,
)
from .synthesis import SynthesisError, SynthesizedProtocol, synthesize_protocol

__all__ = [
    "ConformanceConfig",
    "ConformanceReport",
    "Execution",
    "ExecutionTrace",
    "RegisterArray",
    "SchedulerError",
    "SharedMemory",
    "SnapshotObject",
    "SynthesisError",
    "SynthesizedProtocol",
    "TaskConformance",
    "ValidationReport",
    "Violation",
    "ViolationRecord",
    "census_slice",
    "check_trace",
    "chromatic_agreement_process",
    "conform_protocol",
    "conform_task",
    "derive_run_seed",
    "explore_schedules",
    "first_completion",
    "full_information_views",
    "immediate_snapshot",
    "make_chromatic_agreement_factories",
    "participation_simplices",
    "replay_violation",
    "resolve_campaign_task",
    "run_campaign",
    "shrink_schedule",
    "snapshot_scan",
    "snapshot_update",
    "spread_completion",
    "make_full_information_factories",
    "reachable_views_complex",
    "realizes_subdivision",
    "run_once",
    "run_random",
    "run_solo_blocks",
    "run_with_schedule",
    "synthesize_protocol",
    "validate_protocol",
]
