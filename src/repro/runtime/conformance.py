"""Conformance campaigns: differential testing of verdicts vs executions.

The decision procedure (Theorem 5.1) and the synthesis layer (Figure 7 /
Lemma 5.3) make a strong pair of claims: a SOLVABLE verdict carries a
witness, and the witness compiles to a wait-free protocol that survives
*every* schedule.  This module is the engine that holds the implementation
to that claim, in the differential-testing spirit of the algorithmic-ACT
line (Saraph–Herlihy–Gafni) and the schedule-subset view of GACT:

for every task in a suite
    1. run :func:`~repro.solvability.decision.decide_solvability`;
    2. for each SOLVABLE verdict, synthesize the executable protocol;
    3. validate it across the full schedule space — solo-block
       permutations, seeded random schedules, the adversary battery of
       :mod:`repro.runtime.adversary`, and exhaustive prefix-tree
       enumeration (:func:`~repro.runtime.scheduler.explore_schedules`);
    4. shrink any violating schedule to a minimal replayable witness.

Campaigns fan out over a :mod:`multiprocessing` pool in the style of
:mod:`repro.analysis.parallel`: workers receive task *names* (zoo entries
or ``census-<seed>`` slices) and reconstruct the tasks locally, so only
small, picklable :class:`TaskConformance` results cross process
boundaries.  The aggregate :class:`ConformanceReport` serializes to JSON
(``schema repro-conformance/1``) for CI gates and cross-PR diffing; the
CLI front end is ``python -m repro conform``.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..obs import (
    annotate,
    capture_worker,
    counter_add,
    merge_worker_snapshot,
    span,
    tracing_enabled,
)
from ..solvability.decision import Status, decide_solvability
from ..tasks.task import Task
from ..topology.simplex import Simplex
from .adversary import run_adversarial, standard_battery
from .scheduler import (
    ExecutionTrace,
    SchedulerError,
    explore_schedules,
    run_random,
    run_solo_blocks,
    run_with_schedule,
)
from .simulation import check_trace, derive_run_seed, participation_simplices
from .synthesis import SynthesisError, synthesize_protocol

#: Report format identifier; bump the suffix on breaking changes.
SCHEMA = "repro-conformance/1"

#: The four schedule families every campaign exercises, in run order.
PHASES = ("solo", "random", "adversarial", "exhaustive")

FactoryBuilder = Callable[[Simplex], Dict[int, Callable[[int], Generator]]]


@dataclass(frozen=True)
class ConformanceConfig:
    """Campaign knobs.  Plain primitives only — the config rides along to
    pool workers, so it must stay picklable and cheap."""

    participation: str = "all"  # "all" faces or input "facets" only
    random_runs: int = 10
    exhaustive_limit: int = 50  # executions per input; 0 disables the phase
    adversarial: bool = True
    max_rounds: int = 2
    max_steps: int = 100_000
    seed: int = 0
    prefer_direct: bool = True
    shrink: bool = True
    shrink_budget: int = 200  # replay attempts per violating schedule

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class ViolationRecord:
    """One failed execution, shrunk to a minimal replayable schedule.

    ``schedule`` is the (possibly shrunk) explicit prefix; replaying it
    with :func:`~repro.runtime.scheduler.run_with_schedule` — remaining
    steps run round-robin — reproduces a violation.  ``input_index`` is
    the position of the input simplex in the campaign's deterministic
    participation order, so a record can be replayed from the report alone
    given the task and protocol.
    """

    phase: str
    detail: str  # run order / seed / adversary-strategy name
    input_index: int
    inputs_repr: str
    reason: str
    schedule: Tuple[int, ...]
    original_length: int
    shrink_attempts: int = 0

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["schedule"] = list(self.schedule)
        return payload


@dataclass
class TaskConformance:
    """The campaign outcome for one task."""

    name: str
    status: str  # verdict status value, or "error"
    mode: Optional[str] = None  # synthesis mode for SOLVABLE tasks
    rounds: Optional[int] = None
    fallback_reason: Optional[str] = None
    runs: Dict[str, int] = field(default_factory=dict)  # phase -> count
    total_steps: int = 0
    max_steps_seen: int = 0
    step_histogram: Dict[str, int] = field(default_factory=dict)
    violations: List[ViolationRecord] = field(default_factory=list)
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    @property
    def total_runs(self) -> int:
        return sum(self.runs.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "mode": self.mode,
            "rounds": self.rounds,
            "fallback_reason": self.fallback_reason,
            "runs": dict(self.runs),
            "total_runs": self.total_runs,
            "total_steps": self.total_steps,
            "max_steps_seen": self.max_steps_seen,
            "step_histogram": dict(self.step_histogram),
            "violations": [v.as_dict() for v in self.violations],
            "seconds": self.seconds,
            "error": self.error,
        }


@dataclass
class ConformanceReport:
    """Aggregate of a whole campaign, serializable to JSON."""

    tasks: List[TaskConformance] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(t.ok for t in self.tasks)

    @property
    def total_runs(self) -> int:
        return sum(t.total_runs for t in self.tasks)

    @property
    def total_violations(self) -> int:
        return sum(len(t.violations) for t in self.tasks)

    def by_name(self, name: str) -> TaskConformance:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "config": dict(self.config),
            "seconds": self.seconds,
            "ok": self.ok,
            "total_runs": self.total_runs,
            "total_violations": self.total_violations,
            "tasks": [t.as_dict() for t in self.tasks],
        }

    def write(self, path: str) -> Dict[str, Any]:
        payload = self.as_dict()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return payload

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{self.total_violations} violations"
        return (
            f"ConformanceReport[{len(self.tasks)} tasks, "
            f"{self.total_runs} runs, {status}]"
        )


def _step_bucket(steps: int) -> str:
    """Power-of-two histogram bucket label for a per-run step total."""
    if steps <= 0:
        return "0"
    lo = 1
    while lo * 2 <= steps:
        lo *= 2
    return f"{lo}-{2 * lo - 1}"


def shrink_schedule(
    violates: Callable[[Sequence[int]], bool],
    schedule: Sequence[int],
    budget: int = 200,
) -> Tuple[Tuple[int, ...], int]:
    """Minimize a violating schedule by greedy delta-debugging.

    ``violates(candidate)`` replays a candidate explicit prefix (remaining
    steps run round-robin) and reports whether it still fails.  Chunks of
    halving sizes are removed while the violation persists, then single
    entries.  Returns the shrunk schedule and the number of replay
    attempts spent (capped by ``budget``).
    """
    current = list(schedule)
    attempts = 0
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        while i < len(current):
            if attempts >= budget:
                return tuple(current), attempts
            candidate = current[:i] + current[i + chunk :]
            attempts += 1
            if violates(candidate):
                current = candidate
            else:
                i += chunk
        chunk //= 2
    return tuple(current), attempts


def replay_violation(
    task: Task,
    build: FactoryBuilder,
    record: ViolationRecord,
    config: Optional[ConformanceConfig] = None,
) -> Optional[str]:
    """Replay a violation record against a task/protocol; returns the
    violation reason (``None`` would mean the record no longer reproduces).
    """
    config = config or ConformanceConfig()
    inputs = participation_simplices(task, config.participation)[record.input_index]
    n = max(inputs.colors()) + 1
    trace = run_with_schedule(
        n, build(inputs), record.schedule, max_steps=config.max_steps
    )
    return check_trace(task, inputs, trace)


def conform_protocol(
    task: Task,
    build: FactoryBuilder,
    config: Optional[ConformanceConfig] = None,
    name: str = "protocol",
) -> TaskConformance:
    """Validate one executable protocol across the full schedule space.

    This is the inner engine of :func:`conform_task`, usable directly on
    hand-written protocol builders (e.g. deliberately broken fixtures).
    Each execution is checked with
    :func:`~repro.runtime.simulation.check_trace`; every violating
    schedule is shrunk to a minimal replayable prefix.
    """
    config = config or ConformanceConfig()
    t0 = time.perf_counter()
    result = TaskConformance(name=name, status=Status.SOLVABLE.value)
    result.runs = {phase: 0 for phase in PHASES}

    for input_index, inputs in enumerate(
        participation_simplices(task, config.participation)
    ):
        with span("conform.input", index=input_index, inputs=repr(inputs)):
            n = max(inputs.colors()) + 1
            pids = sorted(inputs.colors())

            def violates(candidate: Sequence[int]) -> bool:
                trace = run_with_schedule(
                    n, build(inputs), candidate, max_steps=config.max_steps
                )
                return check_trace(task, inputs, trace) is not None

            def record(phase: str, detail: str, trace: ExecutionTrace) -> None:
                result.runs[phase] += 1
                counter_add(f"conform.runs.{phase}")
                steps = trace.total_steps()
                counter_add("conform.steps", steps)
                result.total_steps += steps
                result.max_steps_seen = max(result.max_steps_seen, steps)
                bucket = _step_bucket(steps)
                result.step_histogram[bucket] = (
                    result.step_histogram.get(bucket, 0) + 1
                )
                reason = check_trace(task, inputs, trace)
                if reason is None:
                    return
                counter_add("conform.violations")
                schedule: Tuple[int, ...] = tuple(trace.schedule)
                attempts = 0
                if config.shrink:
                    schedule, attempts = shrink_schedule(
                        violates, schedule, budget=config.shrink_budget
                    )
                    reason = (
                        check_trace(
                            task,
                            inputs,
                            run_with_schedule(
                                n, build(inputs), schedule, max_steps=config.max_steps
                            ),
                        )
                        or reason
                    )
                result.violations.append(
                    ViolationRecord(
                        phase=phase,
                        detail=detail,
                        input_index=input_index,
                        inputs_repr=repr(inputs),
                        reason=reason,
                        schedule=schedule,
                        original_length=len(trace.schedule),
                        shrink_attempts=attempts,
                    )
                )

            try:
                # 1. sequential solo blocks: every participation permutation
                for order in itertools.permutations(pids):
                    record(
                        "solo",
                        f"order={order}",
                        run_solo_blocks(
                            n, build(inputs), order, max_steps=config.max_steps
                        ),
                    )

                # 2. seeded random schedules (input simplex + run index mixed in)
                for k in range(config.random_runs):
                    seed = derive_run_seed(config.seed, inputs, k)
                    record(
                        "random",
                        f"k={k}",
                        run_random(
                            n, build(inputs), seed=seed, max_steps=config.max_steps
                        ),
                    )

                # 3. the adversary battery
                if config.adversarial:
                    for strategy_name, strategy in standard_battery(pids):
                        record(
                            "adversarial",
                            strategy_name,
                            run_adversarial(
                                n, build(inputs), strategy, max_steps=config.max_steps
                            ),
                        )

                # 4. exhaustive prefix-tree enumeration under a budget
                if config.exhaustive_limit:
                    for i, trace in enumerate(
                        explore_schedules(
                            n,
                            build(inputs),
                            max_executions=config.exhaustive_limit,
                            max_steps=config.max_steps,
                        )
                    ):
                        record("exhaustive", f"dfs={i}", trace)
            except SchedulerError as exc:
                result.error = f"input {inputs!r}: {exc}"
                break

    result.seconds = time.perf_counter() - t0
    return result


def conform_task(
    task: Task,
    config: Optional[ConformanceConfig] = None,
    name: Optional[str] = None,
) -> TaskConformance:
    """Run the full decide → synthesize → validate pipeline on one task.

    UNSOLVABLE / UNKNOWN verdicts produce a zero-run record (there is no
    protocol to validate — the impossibility side is covered by the
    benchmark suite's naive-protocol experiments); synthesis failures on a
    SOLVABLE verdict are conformance *errors*, not skips.
    """
    config = config or ConformanceConfig()
    name = name or task.name or "task"
    with span("conform.task", name=name) as task_span:
        result = _conform_task(task, config, name)
        annotate(
            task_span,
            status=result.status,
            runs=result.total_runs,
            violations=len(result.violations),
        )
    return result


def _conform_task(
    task: Task, config: ConformanceConfig, name: str
) -> TaskConformance:
    """The decide → synthesize → validate chain inside the per-task span."""
    t0 = time.perf_counter()
    verdict = decide_solvability(task, max_rounds=config.max_rounds)
    if verdict.status is not Status.SOLVABLE:
        return TaskConformance(
            name=name,
            status=verdict.status.value,
            seconds=time.perf_counter() - t0,
        )
    try:
        with span("conform.synthesize"):
            protocol = synthesize_protocol(
                task, verdict=verdict, prefer_direct=config.prefer_direct
            )
    except (SynthesisError, SchedulerError) as exc:
        return TaskConformance(
            name=name,
            status="error",
            error=f"synthesis failed: {exc}",
            seconds=time.perf_counter() - t0,
        )
    result = conform_protocol(task, protocol.factories, config, name=name)
    result.mode = protocol.mode
    result.rounds = protocol.rounds
    result.fallback_reason = protocol.fallback_reason
    result.seconds = time.perf_counter() - t0
    return result


# ---------------------------------------------------------------------------
# Campaign fan-out (multiprocessing, in the style of repro.analysis.parallel)
# ---------------------------------------------------------------------------

CENSUS_PREFIX = "census-"


def resolve_campaign_task(name: str) -> Task:
    """Resolve a campaign task name to a task, locally in each worker.

    Zoo names come from :func:`repro.tasks.zoo.standard_zoo`;
    ``census-<seed>`` names draw from the seeded random-task family used
    by the census engine, making a census slice addressable by name.
    """
    from ..tasks.zoo import standard_zoo
    from ..tasks.zoo.random_tasks import random_single_input_task

    if name.startswith(CENSUS_PREFIX):
        seed_text = name[len(CENSUS_PREFIX) :]
        try:
            seed = int(seed_text)
        except ValueError as exc:
            raise ValueError(f"bad census task name {name!r}") from exc
        return random_single_input_task(seed)
    registry = standard_zoo()
    if name not in registry:
        raise ValueError(
            f"unknown campaign task {name!r}; expected a zoo name or "
            f"'{CENSUS_PREFIX}<seed>'"
        )
    return registry[name]()


def census_slice(seeds: Sequence[int]) -> List[str]:
    """Campaign names for a census slice: one per seed."""
    return [f"{CENSUS_PREFIX}{seed}" for seed in seeds]


def _conform_one(name: str, config: ConformanceConfig) -> TaskConformance:
    """Resolve one task by name and conform it, never letting an exception
    escape: a raising worker would otherwise abort the whole campaign
    (``pool.map`` re-raises in the parent), losing every other task's
    result.  Unexpected exceptions become ``status="error"`` records."""
    try:
        task = resolve_campaign_task(name)
    except ValueError as exc:
        return TaskConformance(name=name, status="error", error=str(exc))
    try:
        return conform_task(task, config, name=name)
    except Exception as exc:  # noqa: BLE001 — campaign must survive any task
        return TaskConformance(
            name=name, status="error", error=f"{type(exc).__name__}: {exc}"
        )


def _conform_entry(
    args: Tuple[str, ConformanceConfig, bool]
) -> Tuple[TaskConformance, Optional[Dict[str, Any]]]:
    """Pool worker entry point; optionally captures an obs snapshot.

    ``trace`` is the dispatching parent's tracing flag: when set, the
    task runs under :func:`repro.obs.capture_worker` and its spans,
    counters and cache delta ride back with the result for parent-side
    aggregation (serial in-process execution passes ``False`` and records
    straight into the parent recorder instead).
    """
    name, config, trace = args
    if not trace:
        return _conform_one(name, config), None
    with capture_worker() as capture:
        result = _conform_one(name, config)
    return result, capture.snapshot


def run_campaign(
    names: Sequence[str],
    config: Optional[ConformanceConfig] = None,
    workers: Optional[int] = None,
    chunksize: int = 1,
    start_method: Optional[str] = None,
) -> ConformanceReport:
    """Conform a suite of named tasks, optionally over a worker pool.

    Parameters mirror :func:`repro.analysis.parallel.parallel_census`:
    ``workers=None`` uses one process per CPU, ``workers == 1`` runs
    serially in-process (no pool), and per-task determinism guarantees the
    report is independent of scheduling (task order in the report is the
    input order of ``names``).
    """
    from ..analysis.parallel import default_workers

    config = config or ConformanceConfig()
    names = list(names)
    if chunksize < 1:
        raise ValueError(f"chunksize must be at least 1, got {chunksize}")
    if workers is not None and workers < 1:
        raise ValueError(
            f"workers must be at least 1, got {workers} "
            "(pass None to use one process per CPU)"
        )
    t0 = time.perf_counter()
    n_workers = default_workers() if workers is None else workers
    n_workers = min(n_workers, max(len(names), 1))
    if n_workers <= 1 or len(names) <= 1:
        # serial: record straight into this process's recorder (trace=False)
        outcomes = [_conform_entry((name, config, False)) for name in names]
    else:
        jobs = [(name, config, tracing_enabled()) for name in names]
        ctx = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else multiprocessing.get_context()
        )
        with ctx.Pool(processes=n_workers) as pool:
            # map (not imap_unordered) keeps report order == input order
            # even when names repeat; per-task determinism makes scheduling
            # invisible to the content
            outcomes = pool.map(_conform_entry, jobs, chunksize)
    results = []
    for result, snapshot in outcomes:
        results.append(result)
        if snapshot is not None:
            merge_worker_snapshot(snapshot)
    return ConformanceReport(
        tasks=results,
        config=config.as_dict(),
        seconds=time.perf_counter() - t0,
    )
