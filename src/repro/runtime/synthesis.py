"""End-to-end protocol synthesis from the characterization.

This is the constructive payoff of Theorem 5.1: for a task the decision
procedure declares solvable, build an *executable wait-free protocol* and
run it on the shared-memory substrate.

Two synthesis modes:

* **direct** — when a *chromatic* (color-preserving) witness map exists at
  some subdivision depth, the protocol is the classical ACT one: run ``r``
  full-information rounds and decide ``δ(view)``.
* **figure-7** — in general only a color-agnostic witness exists on the
  transformed task ``T'``.  The protocol runs the Figure 7 algorithm of
  Lemma 5.3 on ``T'`` with ``A_C = (r rounds of FI, then δ)``, then projects
  each decision back through the splitting (Lemma 4.2) and the canonical
  form (Theorem 3.1) to an output vertex of the original task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, Optional

from ..solvability.decision import SolvabilityVerdict, Status, decide_solvability
from ..solvability.map_search import SearchBudgetExceeded, find_map
from ..tasks.task import Task
from ..topology.maps import SimplicialMap
from ..topology.simplex import Simplex, Vertex
from ..topology.subdivision import iterated_chromatic_subdivision
from .chromatic_agreement import make_chromatic_agreement_factories
from .full_information import full_information_views


class SynthesisError(RuntimeError):
    """Raised when no executable protocol can be synthesized."""


def _map_decision(
    inner: Generator, project: Callable[[Vertex], Vertex], pid: Optional[int] = None
) -> Generator:
    """Wrap a process generator, projecting the final decision value.

    An inner generator that ends without a ``("decide", …)`` op would — via
    PEP 479 — surface as an opaque ``RuntimeError: generator raised
    StopIteration``; translate it to a :class:`SynthesisError` carrying the
    process id and the tail of its op log instead.
    """
    result = None
    ops: list = []
    while True:
        try:
            op = inner.send(result)
        except StopIteration as stop:
            raise SynthesisError(
                f"process {pid}: inner protocol ended (returned {stop.value!r}) "
                f"without a ('decide', …) op after {len(ops)} ops; "
                f"last ops: {ops[-5:]!r}"
            ) from stop
        ops.append(op)
        if op[0] == "decide":
            yield ("decide", project(op[1]))
            return
        result = yield op


@dataclass
class SynthesizedProtocol:
    """An executable wait-free protocol for a task.

    ``factories(inputs)`` returns, for an input simplex, one process
    factory per participating id, ready for the scheduler; ``mode`` is
    ``"direct"`` or ``"figure-7"``; ``rounds`` is the FI depth used.
    """

    task: Task
    mode: str
    rounds: int
    verdict: SolvabilityVerdict
    _build: Callable[[Simplex], Dict[int, Callable[[int], Generator]]]
    #: why the direct mode was not used (``None`` for direct protocols):
    #: either "no chromatic witness up to r=…" or a search-budget message
    fallback_reason: Optional[str] = None

    def factories(self, inputs: Simplex) -> Dict[int, Callable[[int], Generator]]:
        if inputs not in self.task.input_complex:
            raise SynthesisError(f"{inputs!r} is not an input simplex of the task")
        return self._build(inputs)


def _direct_protocol(
    task: Task, delta_map: SimplicialMap, rounds: int, n: int
) -> Callable[[Simplex], Dict[int, Callable[[int], Generator]]]:
    def build(inputs: Simplex) -> Dict[int, Callable[[int], Generator]]:
        factories = {}
        for x in inputs.vertices:
            def make(x_vertex: Vertex):
                def factory(pid: int) -> Generator:
                    def body():
                        vertex = yield from full_information_views(
                            n, pid, x_vertex, rounds
                        )
                        yield ("decide", delta_map.vertex_image(vertex))

                    return body()

                return factory

            factories[x.color] = make(x)
        return factories

    return build


def synthesize_protocol(
    task: Task,
    verdict: Optional[SolvabilityVerdict] = None,
    max_rounds: int = 2,
    prefer_direct: bool = True,
    max_nodes: int = 2_000_000,
) -> SynthesizedProtocol:
    """Build an executable protocol for a solvable task.

    When ``verdict`` is omitted the decision procedure is run first.
    ``prefer_direct`` searches for a chromatic witness before falling back
    to the Figure 7 construction.
    """
    if verdict is None:
        verdict = decide_solvability(task, max_rounds=max_rounds, max_nodes=max_nodes)
    if verdict.status is not Status.SOLVABLE:
        raise SynthesisError(
            f"cannot synthesize a protocol: task is {verdict.status.value}"
        )
    n = task.n_processes

    fallback_reason: Optional[str] = None
    if prefer_direct:
        # only a blown search budget is a legitimate reason to fall back;
        # any other exception is a genuine bug and must propagate
        for r in range(max_rounds + 1):
            sub = iterated_chromatic_subdivision(task.input_complex, r)
            try:
                f = find_map(sub, task.delta, chromatic=True, max_nodes=max_nodes)
            except SearchBudgetExceeded as exc:
                fallback_reason = (
                    f"chromatic witness search exceeded its budget at r={r}: {exc}"
                )
                verdict.stats[f"direct_search_r{r}_budget_exceeded"] = 1.0
                break  # deeper subdivisions are strictly larger searches
            if f is not None:
                return SynthesizedProtocol(
                    task=task,
                    mode="direct",
                    rounds=r,
                    verdict=verdict,
                    _build=_direct_protocol(task, f, r, n),
                )
        if fallback_reason is None:
            fallback_reason = f"no chromatic witness up to r={max_rounds}"
    else:
        fallback_reason = "direct mode disabled (prefer_direct=False)"

    if n != 3:
        raise SynthesisError(
            "no chromatic witness found and the Figure 7 construction is "
            f"three-process specific (task has n={n})"
        )
    if verdict.witness_map is None or verdict.transform is None:
        raise SynthesisError("the verdict carries no color-agnostic witness map")

    transform = verdict.transform
    target = transform.task
    rounds = verdict.witness_rounds or 0
    delta_map = verdict.witness_map

    def agnostic(pid: int, x_vertex: Vertex) -> Generator:
        vertex = yield from full_information_views(n, pid, x_vertex, rounds)
        return delta_map.vertex_image(vertex)

    def build(inputs: Simplex) -> Dict[int, Callable[[int], Generator]]:
        # the transform's output is link-connected by Theorem 4.3
        inner = make_chromatic_agreement_factories(
            target, inputs, agnostic, check=False
        )

        def project_factory(factory):
            def wrapped(pid: int) -> Generator:
                return _map_decision(factory(pid), transform.project_vertex, pid=pid)

            return wrapped

        return {pid: project_factory(f) for pid, f in inner.items()}

    return SynthesizedProtocol(
        task=task,
        mode="figure-7",
        rounds=rounds,
        verdict=verdict,
        _build=build,
        fallback_reason=fallback_reason,
    )
