"""The domain pass manager.

A :class:`DomainPass` bundles one verification rule: the codes it can
emit, the *stage* it belongs to, the subject type it applies to, and the
function that inspects a subject and yields diagnostics.  Stages mirror
the paper's pipeline:

* ``structure`` — well-formedness of any task triple (always applicable);
* ``canonical`` — invariants established by canonicalization (Section 3);
* ``link`` — invariants established by LAP elimination (Section 4).

The manager is deliberately tiny: passes are pure functions over immutable
subjects, selection is by stage plus code-prefix ``select``/``ignore``
filters (``RC1`` selects every ``RC1xx`` code), and results aggregate into
a :class:`CheckResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from .diagnostics import CODES, Diagnostic

#: A pass body: ``(subject, subject_name) -> iterator of diagnostics``.
PassFn = Callable[[object, str], Iterator[Diagnostic]]


@dataclass(frozen=True)
class DomainPass:
    """One registered verification rule."""

    name: str
    codes: Tuple[str, ...]
    stage: str
    subject_kind: str  # "task" | "complex" | "carrier"
    fn: PassFn

    def __post_init__(self) -> None:
        for code in self.codes:
            if code not in CODES:
                raise ValueError(f"pass {self.name!r} declares unknown code {code}")

    def run(self, subject: object, subject_name: str) -> List[Diagnostic]:
        """Run the pass and materialize its findings."""
        return list(self.fn(subject, subject_name))


def _matches(code: str, prefixes: Optional[Sequence[str]]) -> bool:
    if prefixes is None:
        return False
    return any(code.startswith(p) for p in prefixes)


def iter_passes(
    passes: Iterable[DomainPass],
    subject_kind: str,
    stages: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> Iterator[DomainPass]:
    """Passes applicable to a subject kind under stage/code filters.

    ``select`` keeps only passes emitting at least one code matching a
    prefix; ``ignore`` drops passes *all* of whose codes match.  A pass
    explicitly selected by code prefix runs even if its stage was not
    requested — that is how a single corrupted-input test targets exactly
    one code.
    """
    for p in passes:
        if p.subject_kind != subject_kind:
            continue
        selected = select is not None and any(_matches(c, select) for c in p.codes)
        if select is not None and not selected:
            continue
        if not selected and p.stage not in stages:
            continue
        if ignore is not None and all(_matches(c, ignore) for c in p.codes):
            continue
        yield p


@dataclass
class CheckResult:
    """Aggregated findings from one or more check runs."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    subjects: List[str] = field(default_factory=list)
    passes_run: int = 0

    @property
    def ok(self) -> bool:
        """True iff no error-severity diagnostic was reported."""
        return not any(d.severity == "error" for d in self.diagnostics)

    def codes(self) -> Tuple[str, ...]:
        """The distinct codes reported, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> List[Diagnostic]:
        """All findings with a given code."""
        return [d for d in self.diagnostics if d.code == code]

    def extend(self, other: "CheckResult") -> "CheckResult":
        """Fold another result into this one (returns ``self``)."""
        self.diagnostics.extend(other.diagnostics)
        self.subjects.extend(other.subjects)
        self.passes_run += other.passes_run
        return self

    def __len__(self) -> int:
        return len(self.diagnostics)
