"""Renderers for check results: text, JSON, SARIF 2.1.0.

The text format is for humans at a terminal; JSON is a stable
machine-readable dump (schema ``repro-check/1``); SARIF is the
interchange format code-scanning UIs (e.g. GitHub) ingest, with one rule
per ``RCxxx`` code rendered from the :data:`~repro.check.diagnostics.CODES`
registry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .diagnostics import CODES, Diagnostic
from .passes import CheckResult
from .tooling import ToolReport

#: JSON report format identifier
JSON_SCHEMA = "repro-check/1"

_SARIF_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def render_text(
    result: CheckResult, tools: Sequence[ToolReport] = (), verbose: bool = False
) -> str:
    """Human-readable report: findings, tool outcomes, one-line summary."""
    lines: List[str] = []
    for d in result.diagnostics:
        lines.append(d.render())
    for t in tools:
        lines.append(t.render())
    errors = sum(1 for d in result.diagnostics if d.severity == "error")
    warnings = sum(1 for d in result.diagnostics if d.severity == "warning")
    n_subjects = len(result.subjects)
    summary = (
        f"checked {n_subjects} subject(s), {result.passes_run} pass run(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    if tools:
        oks = sum(1 for t in tools if t.ok)
        skips = sum(1 for t in tools if t.skipped)
        fails = len(tools) - oks - skips
        summary += f"; tools: {oks} ok, {skips} skipped, {fails} failed"
    if verbose and result.subjects:
        lines.append("subjects: " + ", ".join(result.subjects))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: CheckResult, tools: Sequence[ToolReport] = ()) -> str:
    """Stable machine-readable JSON dump of a check run."""
    payload: Dict[str, Any] = {
        "schema": JSON_SCHEMA,
        "subjects": list(result.subjects),
        "passes_run": result.passes_run,
        "ok": result.ok and all(t.ok or t.skipped for t in tools),
        "diagnostics": [d.as_dict() for d in result.diagnostics],
    }
    if tools:
        payload["tools"] = [
            {
                "tool": t.tool,
                "status": t.status,
                "detail": t.detail,
                "output": t.output_lines,
            }
            for t in tools
        ]
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_location(d: Diagnostic) -> Optional[Dict[str, Any]]:
    if d.location is None:
        return None
    parts = d.location.rsplit(":", 2)
    if len(parts) != 3:
        return None
    uri, line, col = parts
    try:
        start_line, start_col = int(line), int(col)
    except ValueError:
        return None
    # SARIF regions are 1-based; a zero/negative line means "no usable
    # source position", so emit no location rather than an invalid one
    if start_line < 1:
        return None
    region: Dict[str, Any] = {"startLine": start_line}
    if start_col >= 1:
        region["startColumn"] = start_col
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": uri},
            "region": region,
        }
    }


def render_sarif(result: CheckResult, tools: Sequence[ToolReport] = ()) -> str:
    """SARIF 2.1.0 log with one reporting rule per ``RCxxx`` code."""
    rules = [
        {
            "id": info.code,
            "name": info.slug,
            "shortDescription": {"text": info.slug},
            "fullDescription": {"text": info.summary},
            "helpUri": "docs/static_analysis.md",
        }
        for info in sorted(CODES.values(), key=lambda i: i.code)
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results: List[Dict[str, Any]] = []
    for d in result.diagnostics:
        message = d.message
        if d.witness:
            message += f" — witness: {d.witness}"
        entry: Dict[str, Any] = {
            "ruleId": d.code,
            "ruleIndex": rule_index[d.code],
            "level": _SARIF_LEVELS.get(d.severity, "error"),
            "message": {"text": f"[{d.subject}] {message}"},
        }
        loc = _sarif_location(d)
        if loc is not None:
            entry["locations"] = [loc]
        results.append(entry)
    invocations = [
        {
            "executionSuccessful": result.ok and all(t.ok or t.skipped for t in tools),
            "toolExecutionNotifications": [
                {
                    "level": "note" if t.ok or t.skipped else "error",
                    "message": {"text": f"{t.tool}: {t.status} {t.detail}".strip()},
                }
                for t in tools
            ],
        }
    ]
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.check",
                        "informationUri": "docs/static_analysis.md",
                        "rules": rules,
                    }
                },
                "invocations": invocations,
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def render(
    fmt: str,
    result: CheckResult,
    tools: Sequence[ToolReport] = (),
    verbose: bool = False,
) -> str:
    """Dispatch on ``fmt`` ∈ {text, json, sarif}."""
    if fmt == "text":
        return render_text(result, tools, verbose=verbose)
    if fmt == "json":
        return render_json(result, tools)
    if fmt == "sarif":
        return render_sarif(result, tools)
    raise ValueError(f"unknown output format {fmt!r}")
