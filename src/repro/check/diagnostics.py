"""Diagnostic codes and the :class:`Diagnostic` record.

Every check in the verifier — domain pass or code lint — reports findings
as :class:`Diagnostic` values carrying a *stable* ``RCxxx`` code, a human
message, and a concrete witness.  Codes never change meaning once
published; ``docs/static_analysis.md`` is the user-facing catalogue and
:data:`CODES` is its machine-readable twin (the CLI renders SARIF rule
metadata from it, and the test suite asserts the two stay in sync).

Code ranges
-----------

* ``RC1xx`` — structural well-formedness of a task triple ``(I, O, Δ)``.
* ``RC2xx`` — pipeline-stage invariants (canonical form, LAP-freeness,
  link-connectivity) that hold *after* the Section 3/4 transforms.
* ``RC3xx`` — totality/reachability of the carrier map ``Δ``.
* ``RC4xx`` — Level-2 source lints over ``src/repro`` itself.
* ``RC5xx`` — Level-3 interprocedural effect analysis: cache-soundness
  (``RC50x``) and fork-safety (``RC51x``) over the whole-package call
  graph (:mod:`repro.check.effects`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Diagnostic severities, ordered from least to most severe.
SEVERITIES: Tuple[str, ...] = ("note", "warning", "error")

Severity = str


@dataclass(frozen=True)
class CodeInfo:
    """Metadata for one stable diagnostic code."""

    code: str
    slug: str
    level: int  # 1 = domain pass, 2 = source lint, 3 = interprocedural
    stage: str  # "structure" | "canonical" | "link" | "lint" | "effects"
    summary: str


def _registry(*infos: CodeInfo) -> Dict[str, CodeInfo]:
    out: Dict[str, CodeInfo] = {}
    for info in infos:
        if info.code in out:
            raise ValueError(f"duplicate diagnostic code {info.code}")
        out[info.code] = info
    return out


#: The complete, stable code registry.
CODES: Mapping[str, CodeInfo] = _registry(
    # -- RC1xx: structural well-formedness --------------------------------
    CodeInfo(
        "RC101",
        "improper-coloring",
        1,
        "structure",
        "A facet of the input or output complex is not properly colored "
        "(a colorless vertex, or a repeated process id).",
    ),
    CodeInfo(
        "RC102",
        "carrier-not-monotone",
        1,
        "structure",
        "Δ is not monotone: the image of a face is not a subcomplex of the "
        "image of a containing simplex.",
    ),
    CodeInfo(
        "RC103",
        "name-not-preserved",
        1,
        "structure",
        "Δ does not preserve process names: some image facet carries a "
        "different color set than its input simplex.",
    ),
    CodeInfo(
        "RC104",
        "dimension-mismatch",
        1,
        "structure",
        "The input and output complexes have different dimensions.",
    ),
    CodeInfo(
        "RC105",
        "impure-complex",
        1,
        "structure",
        "The input complex is not pure: some facet has dimension below the "
        "complex dimension.",
    ),
    CodeInfo(
        "RC106",
        "image-outside-codomain",
        1,
        "structure",
        "An image of Δ contains a simplex that is not in the codomain.",
    ),
    CodeInfo(
        "RC107",
        "delta-not-rigid",
        1,
        "structure",
        "Δ is not rigid: some nonempty image is impure or has the wrong "
        "dimension.",
    ),
    # -- RC2xx: pipeline-stage invariants ---------------------------------
    CodeInfo(
        "RC201",
        "not-canonical-form",
        1,
        "canonical",
        "The task is not in canonical form: an output vertex has zero or "
        "several input-vertex preimages, or two input facets share an "
        "image facet (Section 3).",
    ),
    CodeInfo(
        "RC202",
        "residual-LAP",
        1,
        "link",
        "A local articulation point survives: some vertex of Δ(σ) has a "
        "disconnected link inside Δ(σ) (Section 4).",
    ),
    CodeInfo(
        "RC203",
        "link-disconnected",
        1,
        "link",
        "A vertex of the complex has a disconnected link, so the complex "
        "is not link-connected.",
    ),
    # -- RC3xx: totality / reachability -----------------------------------
    CodeInfo(
        "RC301",
        "delta-not-total",
        1,
        "structure",
        "Δ is not total (strict): some input simplex has an empty image.",
    ),
    CodeInfo(
        "RC302",
        "output-unreachable",
        1,
        "structure",
        "The output complex contains facets no image of Δ can reach, "
        "violating the paper's standing assumption O = ∪ Δ(σ).",
    ),
    # -- RC4xx: Level-2 source lints --------------------------------------
    CodeInfo(
        "RC401",
        "interned-mutation",
        2,
        "lint",
        "Code outside the topology core writes to an attribute of an "
        "interned Simplex/Vertex (or calls object.__setattr__), which "
        "would corrupt every aliased copy.",
    ),
    CodeInfo(
        "RC402",
        "cache-internals-access",
        2,
        "lint",
        "Code outside repro.topology reaches into the memoization "
        "internals (`_cache` slot or private module state of "
        "repro.topology.cache).",
    ),
    CodeInfo(
        "RC403",
        "memoized-call-in-caching-disabled",
        2,
        "lint",
        "Library code calls a memoized query inside a caching_disabled() "
        "block; the bypass context is reserved for benchmarks.",
    ),
    CodeInfo(
        "RC404",
        "mutable-topology-dataclass",
        2,
        "lint",
        "A dataclass in repro.topology or repro.splitting is not "
        "frozen=True; shared topology values must be immutable.",
    ),
    CodeInfo(
        "RC405",
        "nondeterministic-generation",
        2,
        "lint",
        "Task generation or census code uses an unseeded randomness or "
        "wall-clock source, breaking seed-reproducibility of aggregates.",
    ),
    CodeInfo(
        "RC406",
        "legacy-construction-in-bitcore-loop",
        2,
        "lint",
        "A loop in repro.topology.bitcore constructs legacy simplex "
        "objects (Simplex, Vertex, SimplicialComplex, …); the packed "
        "kernels must stay in integer bit masks, decoding only at the "
        "boundary.",
    ),
    CodeInfo(
        "RC407",
        "unknown-suppression-code",
        2,
        "lint",
        "An inline suppression comment (`# repro: ignore[...]`) names a "
        "diagnostic code that does not exist, so it suppresses nothing.",
    ),
    # -- RC50x: Level-3 cache-soundness (repro.check.effects) --------------
    CodeInfo(
        "RC501",
        "unseeded-rng-under-cache",
        3,
        "effects",
        "Unseeded randomness (module-level random, os.urandom, uuid4, "
        "secrets) is reachable from a memoized or disk-persisted entry "
        "point; cached verdicts would not be functions of their keys. "
        "Hard error: cannot be declared in the baseline.",
    ),
    CodeInfo(
        "RC502",
        "env-read-under-cache",
        3,
        "effects",
        "An os.environ/os.getenv read is reachable from a cached entry "
        "point; results would depend on un-keyed process state. Hard "
        "error: cannot be declared in the baseline.",
    ),
    CodeInfo(
        "RC503",
        "clock-under-cache",
        3,
        "effects",
        "A wall/monotonic clock read is reachable from a cached entry "
        "point without a baseline declaration that it only feeds "
        "telemetry, never the cached value.",
    ),
    CodeInfo(
        "RC504",
        "filesystem-under-cache",
        3,
        "effects",
        "Filesystem access outside the declared diskstore boundary is "
        "reachable from a cached entry point.",
    ),
    CodeInfo(
        "RC505",
        "global-write-under-cache",
        3,
        "effects",
        "A write to module-level or class-level state is reachable from a "
        "cached entry point without a baseline declaration that the "
        "mutation is idempotent and content-keyed.",
    ),
    CodeInfo(
        "RC506",
        "interned-mutation-under-cache",
        3,
        "effects",
        "Mutation of interned Simplex/Vertex state is reachable from a "
        "cached entry point; aliased copies shared across cache entries "
        "would be corrupted.",
    ),
    CodeInfo(
        "RC509",
        "stale-baseline-entry",
        3,
        "effects",
        "The committed effects baseline declares an effect the analysis "
        "no longer finds; the entry should be removed so the baseline "
        "stays an exact inventory.",
    ),
    # -- RC51x: Level-3 fork-safety (repro.check.effects) ------------------
    CodeInfo(
        "RC511",
        "unpicklable-worker-dispatch",
        3,
        "effects",
        "A lambda or nested closure is dispatched to a multiprocessing "
        "pool; it is unpicklable under spawn and silently captures parent "
        "state under fork.",
    ),
    CodeInfo(
        "RC512",
        "warm-table-mutation-in-worker",
        3,
        "effects",
        "A pool worker mutates module-global or interned state (pre-fork "
        "warm tables); the mutation is invisible to the parent and to "
        "sibling workers, so results depend on process placement.",
    ),
    CodeInfo(
        "RC513",
        "undeclared-gauge-in-worker",
        3,
        "effects",
        "Worker-reachable code sets an obs gauge whose merge policy is "
        "never declared with set_gauge_policy(); cross-process snapshot "
        "merging would silently apply the default.",
    ),
)


def describe_code(code: str) -> CodeInfo:
    """Look up a code's metadata; raises :class:`KeyError` for unknown codes."""
    return CODES[code]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a message, and a concrete witness.

    ``subject`` names what was checked (a task name, complex name or file
    path); ``witness`` is the offending object rendered as text (simplex,
    vertex, link component, source line); ``location`` is ``file:line:col``
    for source lints and ``None`` for domain findings.
    """

    code: str
    message: str
    subject: str
    witness: Optional[str] = None
    location: Optional[str] = None
    severity: Severity = "error"
    extra: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def slug(self) -> str:
        """The code's stable human-readable slug (e.g. ``improper-coloring``)."""
        return CODES[self.code].slug

    def render(self) -> str:
        """One-line text rendering, used by the CLI's text format."""
        where = f"{self.location}: " if self.location else ""
        head = f"{where}{self.code} {self.slug} [{self.subject}]"
        tail = f" — witness: {self.witness}" if self.witness else ""
        return f"{head}: {self.message}{tail}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready rendering (stable field names)."""
        out: Dict[str, object] = {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
        }
        if self.witness is not None:
            out["witness"] = self.witness
        if self.location is not None:
            out["location"] = self.location
        if self.extra:
            out["extra"] = dict(self.extra)
        return out
