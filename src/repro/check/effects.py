"""Level-3 interprocedural effect & cache-soundness analysis (``--effects``).

Every caching layer in the engine — the memoized topology queries, the
``.repro/towers`` disk store, the content-addressed census verdict cache —
assumes ``decide``/``synthesize``/``conform`` are *pure, deterministic*
functions of their content-hashed inputs: a verdict computed once is
served forever.  That assumption is not locally checkable: an
``os.environ`` read or unseeded RNG four calls below a persisted entry
point silently poisons every cached result.  This module checks it
globally.

Three stages:

1. **Call graph** (:mod:`repro.check.callgraph`): module-qualified call
   resolution over the whole package, with conservative dynamic dispatch.
2. **Effect inference**: each function gets a *direct* effect set drawn
   from the lattice below, then effects propagate caller-ward through the
   call graph to fixpoint.  Three modules are **declared boundaries** whose
   internal effects do not propagate — calls into them surface as a single
   benign effect instead: :mod:`repro.obs` (write-only telemetry with
   declared merge policies), :mod:`repro.topology.diskstore` (the cache
   itself) and :mod:`repro.topology.cache` (the memo layer itself).
3. **Rules** over the propagated signatures:

   * **RC50x cache-soundness** — every function reachable from a cached
     entry point (``memoized_method``-decorated, or calling
     ``diskstore.load``/``store``) must be effect-free apart from the
     boundary effects and argument-seeded RNG.  Unseeded RNG (RC501) and
     environment reads (RC502) are *hard* errors the baseline cannot
     declare away; clock reads (RC503), filesystem access (RC504),
     global/class-state writes (RC505) and interned-object mutation
     (RC506) are errors unless declared in the committed baseline.
   * **RC51x fork-safety** — functions dispatched to ``multiprocessing``
     pool workers must be module-level picklable callables (RC511), must
     not mutate pre-fork warm tables or other global state (RC512,
     baseline-declarable), and must not set gauges whose merge policy is
     never declared with ``set_gauge_policy`` (RC513).

Every diagnostic carries a **call-path witness** from the entry point to
the concrete offending source line.

The effect lattice
------------------

===================  =======================================================
effect               direct sources
===================  =======================================================
``rng-unseeded``     module-level ``random.*`` calls, ``random.Random()``
                     with no seed, ``os.urandom``, ``uuid.uuid4``,
                     ``secrets.*``, ``numpy.random.*`` without a seed
``rng-seeded``       ``random.Random(seed)`` / ``default_rng(seed)`` with
                     an explicit seed argument (allowed under caching —
                     determinism flows from the argument)
``clock``            ``time.time``/``perf_counter``/``process_time``/…,
                     ``datetime.now``/``utcnow``, ``date.today``
``env-read``         ``os.environ`` reads, ``os.getenv``
``fs``               ``open``, ``os`` file operations, ``tempfile``,
                     ``shutil``
``global-write``     ``global`` rebinding, mutation of module-level
                     containers, class-attribute writes
``interned-mutation``  attribute writes to interned Simplex/Vertex state,
                     ``object.__setattr__`` outside the topology core
``process-spawn``    ``multiprocessing`` pools, ``subprocess``
``obs``              any call into :mod:`repro.obs` (boundary)
``diskstore``        any call into :mod:`repro.topology.diskstore`
                     (boundary)
``memo-cache``       any call into :mod:`repro.topology.cache` (boundary)
===================  =======================================================

The committed baseline (``src/repro/check/effects_baseline.json``) maps
*origin* functions to declared effects with a human reason; a declaration
covers every entry point whose witness path ends at that origin, so
intentional effects are reviewed once, in one file.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .astlint import INTERNED_ATTRS, _TOPOLOGY_CORE
from .callgraph import CallGraph, FunctionInfo, build_call_graph
from .diagnostics import Diagnostic
from .passes import CheckResult
from .suppress import find_suppressions, unknown_suppression_diagnostics

#: packaged default baseline, shipped next to this module
DEFAULT_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "effects_baseline.json")

#: baseline schema identifier
BASELINE_SCHEMA = "repro-effects-baseline/1"

#: boundary modules: dotted module (exact or package prefix) -> effect
BOUNDARY_MODULES: Mapping[str, str] = {
    "repro.obs": "obs",
    "repro.topology.diskstore": "diskstore",
    "repro.topology.cache": "memo-cache",
}

#: effects that never violate cache soundness
BENIGN_EFFECTS = frozenset({"obs", "diskstore", "memo-cache", "rng-seeded", "process-spawn"})

#: RC50x: effect -> (code, hard); hard errors cannot be baseline-declared
CACHE_RULES: Mapping[str, Tuple[str, bool]] = {
    "rng-unseeded": ("RC501", True),
    "env-read": ("RC502", True),
    "clock": ("RC503", False),
    "fs": ("RC504", False),
    "global-write": ("RC505", False),
    "interned-mutation": ("RC506", False),
}

#: RC512: effects a pool worker must not carry undeclared
FORK_RULES: Mapping[str, str] = {
    "global-write": "RC512",
    "interned-mutation": "RC512",
}

#: decorators that make a function a memoized cache entry point
_MEMO_DECORATORS = frozenset({"memoized_method", "lru_cache", "cache", "cached_property"})

#: diskstore functions whose callers become persisted entry points
_PERSIST_FUNCTIONS = frozenset(
    {"repro.topology.diskstore.load", "repro.topology.diskstore.store"}
)

#: pool methods that dispatch a callable to worker processes
_POOL_DISPATCH_ALWAYS = frozenset(
    {"imap", "imap_unordered", "map_async", "imap_async", "starmap",
     "starmap_async", "apply_async"}
)
#: dispatch names too generic to trust without a pool/executor receiver
_POOL_DISPATCH_GUARDED = frozenset({"map", "submit", "apply"})

#: wall-clock / monotonic-clock call tails
_CLOCK_CALLS = frozenset(
    {"time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
     "time.perf_counter", "time.perf_counter_ns", "time.process_time",
     "time.process_time_ns", "datetime.now", "datetime.utcnow",
     "datetime.today", "date.today"}
)

#: module-level random functions sharing hidden global RNG state
_RANDOM_MODULE_FNS = frozenset(
    {"random", "randint", "randrange", "choice", "choices", "shuffle",
     "sample", "uniform", "getrandbits", "betavariate", "gauss", "seed"}
)

#: os functions that touch the filesystem
_OS_FS_FNS = frozenset(
    {"makedirs", "mkdir", "remove", "unlink", "replace", "rename", "rmdir",
     "listdir", "walk", "stat", "scandir", "chmod", "truncate", "link",
     "symlink", "mkstemp", "open"}
)

#: container-mutating method names (for module-global mutation detection)
_MUTATING_METHODS = frozenset(
    {"setdefault", "append", "update", "add", "extend", "insert", "pop",
     "popitem", "clear", "remove", "discard", "__setitem__", "sort",
     "reverse"}
)


@dataclass(frozen=True)
class EffectSite:
    """A direct effect: which effect, where, and what the source said."""

    effect: str
    detail: str
    relpath: str
    lineno: int
    col: int = 0


#: an effect's origin in a signature: a direct site, or the callee
#: qualname it propagated from
Origin = Union[EffectSite, str]


def boundary_effect(module: str) -> Optional[str]:
    """The boundary effect for calls into ``module``, or ``None``."""
    for prefix, effect in BOUNDARY_MODULES.items():
        if module == prefix or module.startswith(prefix + "."):
            return effect
    return None


# ---------------------------------------------------------------------------
# Direct-effect extraction
# ---------------------------------------------------------------------------


class _DirectEffects(ast.NodeVisitor):
    """Extract one function's direct effects (no propagation)."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.module = graph.modules[fn.module]
        self.sites: List[EffectSite] = []
        self.gauge_calls: List[Tuple[Optional[str], int]] = []
        self._globals_declared: Set[str] = set()
        self._locals: Set[str] = set()
        self._in_topology_core = fn.relpath in _TOPOLOGY_CORE
        self._collect_locals(fn.node)

    def _collect_locals(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._locals.update(self.fn.params)
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
                continue
            if isinstance(sub, ast.Assign):
                for t in sub.targets:
                    if isinstance(t, ast.Name):
                        self._locals.add(t.id)
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(sub.target, ast.Name):
                    self._locals.add(sub.target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for n in ast.walk(sub.target):
                    if isinstance(n, ast.Name):
                        self._locals.add(n.id)
            elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
                for n in ast.walk(sub.optional_vars):
                    if isinstance(n, ast.Name):
                        self._locals.add(n.id)

    # -- plumbing ----------------------------------------------------------

    def _emit(self, effect: str, detail: str, node: ast.AST) -> None:
        self.sites.append(
            EffectSite(
                effect=effect,
                detail=detail,
                relpath=self.fn.relpath,
                lineno=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0),
            )
        )

    def _dotted(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = self._dotted(node.value)
            return f"{base}.{node.attr}" if base is not None else None
        return None

    def _expand(self, dotted: str) -> str:
        """Expand the head through import aliases (``np.random`` → ``numpy.random``)."""
        parts = dotted.split(".")
        if parts[0] in self.module.imports:
            return ".".join([self.module.imports[parts[0]]] + parts[1:])
        return dotted

    def _is_module_global(self, name: str) -> bool:
        if name in self._globals_declared:
            return True
        return name in self.module.global_names and name not in self._locals

    # -- nested functions are separate graph nodes -------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.fn.node:
            self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is self.fn.node:
            self.generic_visit(node)

    # -- global rebinding --------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._globals_declared.update(node.names)
        self.generic_visit(node)

    def _root_name(self, node: ast.AST) -> Optional[str]:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _check_store(self, target: ast.AST, node: ast.AST) -> None:
        # rebinding a declared global
        if isinstance(target, ast.Name) and target.id in self._globals_declared:
            self._emit("global-write", f"global {target.id} rebound", node)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            # interned-object mutation (attribute writes to interned state)
            if (
                isinstance(target, ast.Attribute)
                and target.attr in INTERNED_ATTRS
                and not self._in_topology_core
            ):
                self._emit(
                    "interned-mutation",
                    f"write to interned attribute {target.attr!r}",
                    node,
                )
                return
            root = self._root_name(target)
            if root is not None and self._is_module_global(root):
                kind = "item" if isinstance(target, ast.Subscript) else "attribute"
                self._emit(
                    "global-write",
                    f"{kind} write into module-level {root!r}",
                    node,
                )
            # class-attribute write: ClassName.attr = …
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.module.classes
            ):
                self._emit(
                    "global-write",
                    f"class attribute {target.value.id}.{target.attr} written",
                    node,
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_store(t, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._check_store(t, node)
        self.generic_visit(node)

    # -- environment reads -------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = self._dotted(node.value)
        if dotted is not None and self._expand(dotted) == "os.environ":
            self._emit("env-read", "os.environ[...] read", node)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def _classify_external(self, expanded: str, node: ast.Call) -> None:
        parts = expanded.split(".")
        tail2 = ".".join(parts[-2:]) if len(parts) >= 2 else expanded
        last = parts[-1]
        n_seed_args = len(node.args) + len(node.keywords)

        if tail2 in _CLOCK_CALLS:
            self._emit("clock", f"{expanded}()", node)
        elif expanded in ("os.getenv", "os.environ.get") or tail2 == "environ.get":
            self._emit("env-read", f"{expanded}()", node)
        elif expanded == "os.urandom" or tail2 == "uuid.uuid4" or parts[0] == "secrets":
            self._emit("rng-unseeded", f"{expanded}()", node)
        elif tail2 == f"random.{last}" and last in _RANDOM_MODULE_FNS and len(parts) >= 2:
            self._emit(
                "rng-unseeded", f"module-level {expanded}() (hidden global state)", node
            )
        elif last == "Random" and (len(parts) == 1 or parts[-2] == "random"):
            effect = "rng-seeded" if n_seed_args else "rng-unseeded"
            self._emit(effect, f"{expanded}({'seed' if n_seed_args else ''})", node)
        elif last == "default_rng" or tail2.startswith("random.") and parts[0] == "numpy":
            effect = "rng-seeded" if n_seed_args else "rng-unseeded"
            self._emit(effect, f"{expanded}()", node)
        elif expanded == "open" or expanded == "io.open":
            self._emit("fs", "open()", node)
        elif parts[0] == "os" and last in _OS_FS_FNS:
            self._emit("fs", f"{expanded}()", node)
        elif parts[0] in ("tempfile", "shutil"):
            self._emit("fs", f"{expanded}()", node)
        elif parts[0] == "subprocess" or last in ("Pool", "Process") or tail2.startswith(
            "multiprocessing."
        ):
            self._emit("process-spawn", f"{expanded}()", node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            expanded = self._expand(dotted)
            self._classify_external(expanded, node)
            last = expanded.split(".")[-1]
            if (
                last == "__setattr__"
                and expanded.startswith("object.")
                and not self._in_topology_core
            ):
                self._emit(
                    "interned-mutation", "object.__setattr__ bypasses immutability", node
                )
            # gauge declarations / writes, matched by tail (the obs module
            # is a boundary, so these would otherwise be invisible)
            if last == "gauge_set":
                name = None
                if node.args and isinstance(node.args[0], ast.Constant):
                    if isinstance(node.args[0].value, str):
                        name = node.args[0].value
                self.gauge_calls.append((name, node.lineno))
            # mutating-method call on a module-level container
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
            ):
                root = self._root_name(node.func.value)
                if root is not None and self._is_module_global(root):
                    self._emit(
                        "global-write",
                        f"mutating {root}.{node.func.attr}() on module state",
                        node,
                    )
        self.generic_visit(node)


@dataclass
class EffectAnalysis:
    """The analyzed package: graph, per-function signatures, rule inputs."""

    graph: CallGraph
    #: function qualname -> {effect: origin}
    signatures: Dict[str, Dict[str, Origin]] = field(default_factory=dict)
    #: function qualname -> direct sites (pre-propagation)
    direct: Dict[str, List[EffectSite]] = field(default_factory=dict)
    #: cache entry points: qualname -> "memoized" | "persisted"
    entry_points: Dict[str, str] = field(default_factory=dict)
    #: worker entry points: qualname -> dispatch site "relpath:lineno"
    worker_entries: Dict[str, str] = field(default_factory=dict)
    #: RC511 dispatch hazards found during worker discovery
    dispatch_hazards: List[Diagnostic] = field(default_factory=list)
    #: gauge_set literals per function: qualname -> [(name|None, lineno)]
    gauge_calls: Dict[str, List[Tuple[Optional[str], int]]] = field(default_factory=dict)
    #: every gauge name with a declared merge policy, package-wide
    declared_policies: Set[str] = field(default_factory=set)

    def effects_of(self, qualname: str) -> Dict[str, Origin]:
        return self.signatures.get(qualname, {})

    def origin_site(self, qualname: str, effect: str) -> Tuple[List[str], Optional[EffectSite]]:
        """Follow the via-chain: the call path from ``qualname`` and the site."""
        path = [qualname]
        current = qualname
        for _ in range(len(self.signatures) + 1):
            origin = self.signatures.get(current, {}).get(effect)
            if origin is None:
                return path, None
            if isinstance(origin, EffectSite):
                return path, origin
            current = origin
            path.append(current)
        return path, None  # pragma: no cover - origin chains cannot cycle


def _pool_receiver_ok(attr: str, receiver: Optional[str]) -> bool:
    if attr in _POOL_DISPATCH_ALWAYS:
        return True
    if attr in _POOL_DISPATCH_GUARDED and receiver is not None:
        low = receiver.lower()
        return "pool" in low or "executor" in low
    return False


def _discover_workers(analysis: EffectAnalysis) -> None:
    """Find pool-dispatched worker functions and RC511 dispatch hazards."""
    graph = analysis.graph
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        module = graph.modules[fn.module]
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            receiver = None
            if isinstance(node.func.value, ast.Name):
                receiver = node.func.value.id
            if not _pool_receiver_ok(attr, receiver):
                continue
            if not node.args:
                continue
            target = node.args[0]
            where = f"{fn.relpath}:{node.lineno}"
            location = f"{fn.filename}:{node.lineno}:{node.col_offset + 1}"
            if isinstance(target, ast.Lambda):
                analysis.dispatch_hazards.append(
                    Diagnostic(
                        code="RC511",
                        message=(
                            "lambda dispatched to a pool worker: lambdas are "
                            "unpicklable and capture the parent's closure"
                        ),
                        subject=qual,
                        witness=f"{receiver or '<pool>'}.{attr}(<lambda>, …)",
                        location=location,
                    )
                )
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in module.functions:
                analysis.worker_entries.setdefault(module.functions[name], where)
                continue
            if name in module.imports and module.imports[name] in graph.functions:
                analysis.worker_entries.setdefault(module.imports[name], where)
                continue
            # a name that resolves to a *nested* function of this caller
            nested = f"{qual}.{name}"
            if nested in graph.functions:
                analysis.dispatch_hazards.append(
                    Diagnostic(
                        code="RC511",
                        message=(
                            f"nested function {name}() dispatched to a pool "
                            "worker: closures are unpicklable and capture "
                            "parent state"
                        ),
                        subject=qual,
                        witness=f"{receiver or '<pool>'}.{attr}({name}, …)",
                        location=location,
                    )
                )


def analyze_package(root: Optional[str] = None) -> EffectAnalysis:
    """Build the call graph and propagate effect signatures to fixpoint."""
    graph = build_call_graph(root)
    analysis = EffectAnalysis(graph=graph)

    # direct effects, gauge calls, policy declarations
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        extractor = _DirectEffects(graph, fn)
        extractor.visit(fn.node)
        analysis.direct[qual] = extractor.sites
        sig: Dict[str, Origin] = {}
        for site in extractor.sites:
            sig.setdefault(site.effect, site)
        # boundary-module calls surface as single benign effects
        for call in graph.callees(qual):
            callee = graph.functions.get(call.callee)
            if callee is None:
                continue
            effect = boundary_effect(callee.module)
            if effect is not None and effect not in sig:
                sig[effect] = EffectSite(
                    effect=effect,
                    detail=f"call into {callee.module}",
                    relpath=fn.relpath,
                    lineno=call.lineno,
                )
        analysis.signatures[qual] = sig
        if extractor.gauge_calls:
            analysis.gauge_calls[qual] = extractor.gauge_calls

    # policy declarations count wherever they appear — module level
    # included — so sweep whole trees rather than function bodies
    for module in graph.modules.values():
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, (ast.Name, ast.Attribute))
                and (node.func.id if isinstance(node.func, ast.Name) else node.func.attr)
                == "set_gauge_policy"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                analysis.declared_policies.add(node.args[0].value)

    # propagate caller-ward to fixpoint (boundary modules do not propagate)
    changed = True
    while changed:
        changed = False
        for qual in sorted(graph.functions):
            fn = graph.functions[qual]
            if boundary_effect(fn.module) is not None:
                continue
            sig = analysis.signatures[qual]
            for call in graph.callees(qual):
                callee = graph.functions.get(call.callee)
                if callee is None or boundary_effect(callee.module) is not None:
                    continue
                for effect in analysis.signatures.get(call.callee, {}):
                    if effect not in sig:
                        sig[effect] = call.callee
                        changed = True

    # cache entry points
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if boundary_effect(fn.module) is not None:
            continue
        if any(d.split(".")[-1] in _MEMO_DECORATORS for d in fn.decorators):
            analysis.entry_points[qual] = "memoized"
            continue
        for call in graph.callees(qual):
            if call.callee in _PERSIST_FUNCTIONS:
                analysis.entry_points[qual] = "persisted"
                break

    _discover_workers(analysis)
    return analysis


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


@dataclass
class Baseline:
    """Declared effect signatures: origin qualname -> {effect: reason}."""

    declared: Dict[str, Dict[str, str]] = field(default_factory=dict)
    path: Optional[str] = None
    used: Set[Tuple[str, str]] = field(default_factory=set)

    def covers(self, qualname: str, effect: str) -> bool:
        if effect in self.declared.get(qualname, {}):
            self.used.add((qualname, effect))
            return True
        return False

    def stale_entries(self) -> List[Tuple[str, str]]:
        out = []
        for qualname in sorted(self.declared):
            for effect in sorted(self.declared[qualname]):
                if (qualname, effect) not in self.used:
                    out.append((qualname, effect))
        return out


def load_baseline(path: Optional[str] = None) -> Baseline:
    """Load a baseline file; a missing default baseline is simply empty."""
    resolved = path or DEFAULT_BASELINE_PATH
    if not os.path.isfile(resolved):
        if path is not None:
            raise FileNotFoundError(f"effects baseline not found: {path}")
        return Baseline(path=resolved)
    with open(resolved, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{resolved}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    declared = payload.get("declared", {})
    if not isinstance(declared, dict) or not all(
        isinstance(k, str)
        and isinstance(v, dict)
        and all(isinstance(e, str) and isinstance(r, str) for e, r in v.items())
        for k, v in declared.items()
    ):
        raise ValueError(
            f"{resolved}: 'declared' must map function qualnames to "
            "{effect: reason} objects"
        )
    return Baseline(declared={k: dict(v) for k, v in declared.items()}, path=resolved)


def render_baseline(analysis: EffectAnalysis, previous: Optional[Baseline] = None) -> Dict:
    """A baseline payload declaring every current non-hard finding.

    Reasons from ``previous`` are preserved; new entries get a
    placeholder reason that should be reviewed and rewritten.
    """
    declared: Dict[str, Dict[str, str]] = {}

    def declare(origin_fn: str, effect: str) -> None:
        old = (previous.declared if previous else {}).get(origin_fn, {})
        reason = old.get(effect, "TODO: explain why this effect is cache-safe")
        declared.setdefault(origin_fn, {})[effect] = reason

    for entry in sorted(analysis.entry_points):
        for effect, (code, hard) in sorted(CACHE_RULES.items()):
            if hard or effect not in analysis.effects_of(entry):
                continue
            path, site = analysis.origin_site(entry, effect)
            if site is not None:
                declare(path[-1], effect)
    for worker in sorted(analysis.worker_entries):
        for effect in sorted(FORK_RULES):
            if effect not in analysis.effects_of(worker):
                continue
            path, site = analysis.origin_site(worker, effect)
            if site is not None:
                declare(path[-1], effect)
    return {
        "schema": BASELINE_SCHEMA,
        "declared": {k: dict(sorted(v.items())) for k, v in sorted(declared.items())},
    }


def write_baseline(
    path: Optional[str] = None, root: Optional[str] = None
) -> Dict:
    """Analyze ``root`` and (re)write the baseline file at ``path``."""
    resolved = path or DEFAULT_BASELINE_PATH
    previous: Optional[Baseline] = None
    if os.path.isfile(resolved):
        previous = load_baseline(resolved)
    payload = render_baseline(analyze_package(root), previous)
    with open(resolved, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


# ---------------------------------------------------------------------------
# Rule evaluation
# ---------------------------------------------------------------------------


def _witness(path: Sequence[str], site: EffectSite) -> str:
    shown = [q.removeprefix("repro.") for q in path]
    return f"{' → '.join(shown)}; {site.detail} at {site.relpath}:{site.lineno}"


def _location(analysis: EffectAnalysis, site: EffectSite) -> Optional[str]:
    module = next(
        (m for m in analysis.graph.modules.values() if m.relpath == site.relpath), None
    )
    filename = module.filename if module else site.relpath
    return f"{filename}:{site.lineno}:{site.col + 1}"


def _suppressed(analysis: EffectAnalysis, site: EffectSite, code: str) -> bool:
    module = next(
        (m for m in analysis.graph.modules.values() if m.relpath == site.relpath), None
    )
    if module is None:
        return False
    return code in find_suppressions(module.source).get(site.lineno, set())


def evaluate(
    analysis: EffectAnalysis, baseline: Optional[Baseline] = None
) -> List[Diagnostic]:
    """Apply the RC50x/RC51x rules; returns witness-carrying diagnostics."""
    baseline = baseline or Baseline()
    out: List[Diagnostic] = []
    # one finding per (code, origin function): a single undeclared effect
    # is one defect however many entry points reach it
    reported: Dict[Tuple[str, str], Diagnostic] = {}
    reach_counts: Dict[Tuple[str, str], int] = {}

    def report(
        code: str,
        entry: str,
        kind: str,
        effect: str,
        hard: bool,
        extra_message: str,
    ) -> None:
        path, site = analysis.origin_site(entry, effect)
        if site is None:
            return
        origin_fn = path[-1]
        key = (code, origin_fn + ":" + str(site.lineno))
        reach_counts[key] = reach_counts.get(key, 0) + 1
        if key in reported:
            return
        if not hard and baseline.covers(origin_fn, effect):
            return
        if _suppressed(analysis, site, code):
            return
        diag = Diagnostic(
            code=code,
            message=(
                f"{extra_message} (entry point {entry.removeprefix('repro.')!r}, "
                f"{kind})"
            ),
            subject=entry.removeprefix("repro."),
            witness=_witness(path, site),
            location=_location(analysis, site),
            extra={"effect": effect, "origin": origin_fn, "entry_kind": kind},
        )
        reported[key] = diag
        out.append(diag)

    for entry in sorted(analysis.entry_points):
        kind = analysis.entry_points[entry]
        effects = analysis.effects_of(entry)
        for effect, (code, hard) in sorted(CACHE_RULES.items()):
            if effect not in effects:
                continue
            noun = {
                "rng-unseeded": "unseeded RNG",
                "env-read": "environment read",
                "clock": "clock read",
                "fs": "filesystem access",
                "global-write": "global-state write",
                "interned-mutation": "interned-object mutation",
            }[effect]
            report(
                code,
                entry,
                kind,
                effect,
                hard,
                f"cache-unsound {noun} reachable from a cached entry point",
            )

    for worker in sorted(analysis.worker_entries):
        effects = analysis.effects_of(worker)
        for effect in sorted(FORK_RULES):
            if effect not in effects:
                continue
            report(
                FORK_RULES[effect],
                worker,
                f"pool worker dispatched at {analysis.worker_entries[worker]}",
                effect,
                False,
                "fork-unsafe mutation of pre-fork shared state in a pool worker",
            )

    out.extend(analysis.dispatch_hazards)

    # RC513: gauges set in worker-reachable code need a declared policy
    worker_reachable: Set[str] = set()
    from .callgraph import iter_reachable

    for worker in sorted(analysis.worker_entries):
        for qual in iter_reachable(analysis.graph, worker):
            worker_reachable.add(qual)
    seen_gauges: Set[str] = set()
    for qual in sorted(worker_reachable):
        for name, lineno in analysis.gauge_calls.get(qual, []):
            if name is None or name in analysis.declared_policies:
                continue
            if name in seen_gauges:
                continue
            seen_gauges.add(name)
            fn = analysis.graph.functions[qual]
            site = EffectSite("obs", f'gauge_set("{name}", …)', fn.relpath, lineno)
            if _suppressed(analysis, site, "RC513"):
                continue
            out.append(
                Diagnostic(
                    code="RC513",
                    message=(
                        f"gauge {name!r} is set in pool-worker-reachable code "
                        "but no set_gauge_policy() call declares how it "
                        "merges across worker snapshots"
                    ),
                    subject=qual.removeprefix("repro."),
                    witness=f'gauge_set("{name}", …) at {fn.relpath}:{lineno}',
                    location=f"{fn.filename}:{lineno}:1",
                    extra={"gauge": name},
                )
            )

    # RC509: stale baseline declarations (warning — the effect is gone)
    for qualname, effect in baseline.stale_entries():
        out.append(
            Diagnostic(
                code="RC509",
                message=(
                    f"baseline declares effect {effect!r} on "
                    f"{qualname.removeprefix('repro.')!r} but the analysis no "
                    "longer finds it; remove the stale entry"
                ),
                subject=qualname.removeprefix("repro."),
                witness=f"{qualname}: {effect}",
                severity="warning",
                extra={"effect": effect, "origin": qualname},
            )
        )

    # annotate multi-entry findings
    for key, diag in reported.items():
        n = reach_counts.get(key, 1)
        if n > 1 and diag in out:
            idx = out.index(diag)
            out[idx] = Diagnostic(
                code=diag.code,
                message=f"{diag.message} — reaches {n} cached/worker entry point(s)",
                subject=diag.subject,
                witness=diag.witness,
                location=diag.location,
                severity=diag.severity,
                extra=diag.extra,
            )
    return out


def effects_result(
    root: Optional[str] = None,
    baseline_path: Optional[str] = None,
    report_unknown_suppressions: bool = True,
) -> CheckResult:
    """Run the full Level-3 analysis and wrap findings in a CheckResult.

    ``report_unknown_suppressions=False`` skips the RC407 sweep — the CLI
    passes this when the Level-2 lint already ran over the same tree, so
    unknown suppression codes are not reported twice.
    """
    analysis = analyze_package(root)
    baseline = load_baseline(baseline_path)
    diagnostics = evaluate(analysis, baseline)
    if report_unknown_suppressions:
        # suppression comments with unknown codes are themselves findings
        for module in sorted(analysis.graph.modules.values(), key=lambda m: m.relpath):
            diagnostics.extend(
                unknown_suppression_diagnostics(
                    module.source, module.relpath, module.filename
                )
            )
    return CheckResult(
        diagnostics=diagnostics,
        subjects=[analysis.graph.root],
        passes_run=len(CACHE_RULES) + len(FORK_RULES) + 2,  # +RC511, +RC513
    )


__all__ = [
    "BASELINE_SCHEMA",
    "BOUNDARY_MODULES",
    "Baseline",
    "CACHE_RULES",
    "DEFAULT_BASELINE_PATH",
    "EffectAnalysis",
    "EffectSite",
    "analyze_package",
    "boundary_effect",
    "effects_result",
    "evaluate",
    "load_baseline",
    "render_baseline",
    "write_baseline",
]
