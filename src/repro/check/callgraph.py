"""Whole-package call graph over ``src/repro``, from the stdlib ``ast``.

The Level-3 effect analysis (:mod:`repro.check.effects`) needs to answer
"which functions can run when this cached entry point runs?" — an
*interprocedural* question the per-file Level-2 lint cannot ask.  This
module builds the structure that question is asked against:

* a **symbol table** per module: functions, classes (with methods and
  base classes), import aliases (module- and function-level, absolute and
  relative), and the module-level names assigned at import time;
* **call edges** with module-qualified resolution: plain names resolve to
  local functions, then import aliases; ``mod.func(...)`` resolves through
  module aliases; ``self.method(...)`` / ``cls.method(...)`` resolve
  through the enclosing class and its in-package bases; constructing a
  package class edges into its ``__new__``/``__init__``;
* **conservative dynamic dispatch**: an attribute call on an unresolvable
  receiver (``x.level(...)``) joins over *every* package method of that
  name, and loading a known function as a value (callbacks, dispatch
  tables like ``OBSTRUCTION_CHECKS``) adds a call edge from the loading
  function — indirect calls are over- rather than under-approximated;
* **external references**: calls that leave the package (``time.time``,
  ``os.environ.get``) are kept per function as fully expanded dotted
  names, which is what the effect extractor classifies.

The graph is a pure function of the source tree: building it twice over
the same files yields identical edges in identical order, so diagnostics
downstream are stable.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astlint import iter_python_files, package_root

#: the package every analyzed relpath is rooted under
PACKAGE = "repro"

#: receiver names treated as "the enclosing instance/class"
_SELF_NAMES = frozenset({"self", "cls"})

#: dunder methods never joined over by dynamic dispatch (too common to be
#: a useful over-approximation, and never cache-relevant on their own)
_NO_JOIN = frozenset(
    {"__init__", "__new__", "__repr__", "__str__", "__hash__", "__eq__",
     "__lt__", "__le__", "__gt__", "__ge__", "__len__", "__iter__",
     "__contains__", "__getitem__", "__enter__", "__exit__"}
)


def module_name(relpath: str) -> str:
    """Dotted module name for a package-relative posix path.

    >>> module_name("analysis/census.py")
    'repro.analysis.census'
    >>> module_name("tasks/zoo/__init__.py")
    'repro.tasks.zoo'
    """
    parts = relpath[: -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([PACKAGE] + [p for p in parts if p])


@dataclass
class FunctionInfo:
    """One function or method: identity, AST body, and context."""

    qualname: str  # e.g. repro.analysis.census.Census.add
    name: str
    module: str  # dotted module
    relpath: str
    filename: str
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname, if a method
    decorators: Tuple[str, ...] = ()
    params: Tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One class: its methods by name and its (dotted) base names."""

    qualname: str
    name: str
    module: str
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname


@dataclass
class ModuleInfo:
    """Per-module symbol table."""

    relpath: str
    filename: str
    module: str
    tree: ast.Module
    source: str
    imports: Dict[str, str] = field(default_factory=dict)  # alias -> dotted
    functions: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    classes: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    global_names: Set[str] = field(default_factory=set)
    #: module-level name -> function qualnames referenced in its value
    #: (dispatch tables: ``OBSTRUCTION_CHECKS = ((…, corollary_5_5), …)``)
    global_fn_refs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge (caller recorded by the graph's edge map)."""

    callee: str
    lineno: int


@dataclass(frozen=True)
class ExternalRef:
    """One call that leaves the package, as an expanded dotted name."""

    dotted: str
    lineno: int
    n_args: int = 0
    n_keywords: int = 0


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` expressions; ``None`` for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _resolve_relative(module: str, is_package: bool, level: int, target: str) -> str:
    """Resolve ``from ..x import y``-style module references to dotted form."""
    parts = module.split(".")
    # level 1 from a plain module means "the containing package"
    drop = level if is_package else level
    base = parts[: len(parts) - drop + (1 if is_package else 0)]
    if target:
        base = base + target.split(".")
    return ".".join(base)


class _SymbolCollector(ast.NodeVisitor):
    """First pass over one module: functions, classes, imports, globals."""

    def __init__(self, info: ModuleInfo, graph: "CallGraph") -> None:
        self.info = info
        self.graph = graph
        self._stack: List[str] = []  # class/function name nesting
        self._class_stack: List[ClassInfo] = []
        self._is_package = info.relpath.endswith("__init__.py")

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.info.imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.info.imports[alias.asname] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            base = _resolve_relative(
                self.info.module, self._is_package, node.level, node.module or ""
            )
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            self.info.imports[alias.asname or alias.name] = (
                f"{base}.{alias.name}" if base else alias.name
            )
        self.generic_visit(node)

    # -- definitions -------------------------------------------------------

    def _qual(self, name: str) -> str:
        return ".".join([self.info.module] + self._stack + [name])

    def _visit_funcdef(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = self._qual(node.name)
        cls = self._class_stack[-1] if self._class_stack else None
        decorators = tuple(
            d for d in (_dotted(dec.func if isinstance(dec, ast.Call) else dec)
                        for dec in node.decorator_list)
            if d is not None
        )
        params = tuple(
            a.arg
            for a in (node.args.posonlyargs + node.args.args + node.args.kwonlyargs)
        )
        fn = FunctionInfo(
            qualname=qual,
            name=node.name,
            module=self.info.module,
            relpath=self.info.relpath,
            filename=self.info.filename,
            lineno=node.lineno,
            node=node,
            cls=cls.qualname if cls else None,
            decorators=decorators,
            params=params,
        )
        self.graph.functions[qual] = fn
        if cls is not None and node.name not in cls.methods:
            cls.methods[node.name] = qual
        if not self._stack:
            self.info.functions[node.name] = qual
            self.info.global_names.add(node.name)
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_funcdef
    visit_AsyncFunctionDef = _visit_funcdef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        bases = tuple(b for b in (_dotted(base) for base in node.bases) if b)
        cls = ClassInfo(
            qualname=qual, name=node.name, module=self.info.module, bases=bases
        )
        self.graph.classes[qual] = cls
        if not self._stack:
            self.info.classes[node.name] = qual
            self.info.global_names.add(node.name)
        self._stack.append(node.name)
        self._class_stack.append(cls)
        self.generic_visit(node)
        self._class_stack.pop()
        self._stack.pop()

    # -- module-level assignments (dispatch tables, globals) ---------------

    def _record_global(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if self._stack or not isinstance(target, ast.Name):
            return
        self.info.global_names.add(target.id)
        if value is None:
            return
        refs = tuple(
            sorted(
                {
                    n.id
                    for n in ast.walk(value)
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
                }
            )
        )
        if refs:
            self.info.global_fn_refs[target.id] = refs

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._record_global(t, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_global(node.target, node.value)
        self.generic_visit(node)


@dataclass
class CallGraph:
    """The package-wide graph: symbols, call edges, external references."""

    root: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: caller qualname -> resolved in-package call sites
    edges: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: caller qualname -> calls leaving the package
    external: Dict[str, List[ExternalRef]] = field(default_factory=dict)
    #: method name -> every package function qualname implementing it
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)

    def callees(self, qualname: str) -> List[CallSite]:
        return self.edges.get(qualname, [])

    def external_refs(self, qualname: str) -> List[ExternalRef]:
        return self.external.get(qualname, [])

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        fn = self.functions.get(qualname)
        return self.modules.get(fn.module) if fn else None

    def resolve_class(self, module: ModuleInfo, dotted: str) -> Optional[ClassInfo]:
        """A package class named by ``dotted`` as seen from ``module``."""
        head = dotted.split(".")[0]
        if head in module.classes and dotted == head:
            return self.classes.get(module.classes[head])
        expanded = self._expand(module, dotted)
        if expanded is not None and expanded in self.classes:
            return self.classes[expanded]
        return None

    def _expand(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Expand a dotted name through ``module``'s import aliases."""
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        if head in module.imports:
            return ".".join([module.imports[head]] + rest)
        if head in module.functions:
            return module.functions[head] if not rest else None
        if head in module.classes:
            return ".".join([module.classes[head]] + rest)
        return None

    def method_on(self, cls: ClassInfo, name: str) -> Optional[str]:
        """Look ``name`` up on a class and its in-package bases."""
        seen: Set[str] = set()
        stack = [cls]
        while stack:
            c = stack.pop(0)
            if c.qualname in seen:
                continue
            seen.add(c.qualname)
            if name in c.methods:
                return c.methods[name]
            mod = self.modules.get(c.module)
            if mod is None:
                continue
            for base in c.bases:
                resolved = self.resolve_class(mod, base)
                if resolved is not None:
                    stack.append(resolved)
        return None


class _CallCollector(ast.NodeVisitor):
    """Second pass: resolve the calls and function references of one function."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.module = graph.modules[fn.module]
        self.sites: List[CallSite] = []
        self.externals: List[ExternalRef] = []
        self._seen_edges: Set[Tuple[str, int]] = set()

    # nested defs are their own functions; don't descend into their bodies
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.fn.node:
            self._edge(f"{self.fn.qualname}.{node.name}", node.lineno)
            return
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is not self.fn.node:
            self._edge(f"{self.fn.qualname}.{node.name}", node.lineno)
            return
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # a class defined inside a function: out of scope

    def _edge(self, callee: str, lineno: int) -> None:
        key = (callee, lineno)
        if key not in self._seen_edges:
            self._seen_edges.add(key)
            self.sites.append(CallSite(callee=callee, lineno=lineno))

    def _class_ctor_edges(self, cls: ClassInfo, lineno: int) -> None:
        for ctor in ("__new__", "__init__"):
            method = self.graph.method_on(cls, ctor)
            if method is not None:
                self._edge(method, lineno)

    def _resolve_call(self, node: ast.Call) -> None:
        lineno = node.lineno
        dotted = _dotted(node.func)
        if dotted is None:
            # a computed callee (subscript, call result): dynamic join on
            # nothing — the Name loads inside were already turned into
            # reference edges by visit_Name
            return
        parts = dotted.split(".")
        head = parts[0]

        # self.method() / cls.method() through the enclosing class
        if head in _SELF_NAMES and len(parts) == 2 and self.fn.cls:
            cls = self.graph.classes.get(self.fn.cls)
            if cls is not None:
                target = self.graph.method_on(cls, parts[1])
                if target is not None:
                    self._edge(target, lineno)
                    return
            self._dynamic_join(parts[1], lineno)
            return

        # plain name: local function, local class, or import alias
        if len(parts) == 1:
            if head in self.module.functions:
                self._edge(self.module.functions[head], lineno)
                return
            if head in self.module.classes:
                cls = self.graph.classes.get(self.module.classes[head])
                if cls is not None:
                    self._class_ctor_edges(cls, lineno)
                return
            if head in self.module.imports:
                self._route_expanded(self.module.imports[head], node)
                return
            self._external(dotted, node)
            return

        # dotted: expand the head through imports, then route
        if head in self.module.imports:
            expanded = ".".join([self.module.imports[head]] + parts[1:])
            self._route_expanded(expanded, node)
            return
        if head in self.module.classes:
            expanded = ".".join([self.module.classes[head]] + parts[1:])
            self._route_expanded(expanded, node)
            return

        # unknown receiver: conservative dynamic-dispatch join on the
        # method name (package methods only)
        self._dynamic_join(parts[-1], lineno)
        self._external(dotted, node)

    def _route_expanded(self, expanded: str, node: ast.Call) -> None:
        """Route a fully expanded dotted name to package symbols."""
        lineno = node.lineno
        if expanded in self.graph.functions:
            self._edge(expanded, lineno)
            return
        if expanded in self.graph.classes:
            self._class_ctor_edges(self.graph.classes[expanded], lineno)
            return
        # module alias + attribute chain: repro.topology.diskstore.store
        if expanded.startswith(PACKAGE + "."):
            mod_path, _, attr = expanded.rpartition(".")
            target_mod = self.graph.modules.get(mod_path)
            if target_mod is not None:
                if attr in target_mod.functions:
                    self._edge(target_mod.functions[attr], node.lineno)
                    return
                if attr in target_mod.classes:
                    cls = self.graph.classes.get(target_mod.classes[attr])
                    if cls is not None:
                        self._class_ctor_edges(cls, node.lineno)
                    return
                if attr in target_mod.imports:
                    self._route_expanded(target_mod.imports[attr], node)
                    return
            # something inside the package we cannot see (re-export):
            # join on the attribute name
            self._dynamic_join(expanded.rsplit(".", 1)[-1], node.lineno)
            return
        self._external(expanded, node)

    def _dynamic_join(self, method_name: str, lineno: int) -> None:
        if method_name in _NO_JOIN or method_name.startswith("__"):
            return
        for qual in self.graph.methods_by_name.get(method_name, ()):
            self._edge(qual, lineno)

    def _external(self, dotted: str, node: ast.Call) -> None:
        self.externals.append(
            ExternalRef(
                dotted=dotted,
                lineno=node.lineno,
                n_args=len(node.args),
                n_keywords=len(node.keywords),
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        self._resolve_call(node)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # loading a known function as a value: a callback / dispatch-table
        # reference, treated as a potential call (conservative)
        if isinstance(node.ctx, ast.Load):
            if node.id in self.module.functions:
                self._edge(self.module.functions[node.id], node.lineno)
            elif node.id in self.module.imports:
                expanded = self.module.imports[node.id]
                if expanded in self.graph.functions:
                    self._edge(expanded, node.lineno)
            elif node.id in self.module.global_fn_refs:
                # a module-level dispatch table: edge to every function its
                # value expression references
                for ref in self.module.global_fn_refs[node.id]:
                    if ref in self.module.functions:
                        self._edge(self.module.functions[ref], node.lineno)
                    elif ref in self.module.imports:
                        expanded = self.module.imports[ref]
                        if expanded in self.graph.functions:
                            self._edge(expanded, node.lineno)
        self.generic_visit(node)


def build_call_graph(root: Optional[str] = None) -> CallGraph:
    """Build the package call graph for the tree under ``root``.

    ``root`` defaults to the live ``src/repro`` package; tests point it at
    fixture trees laid out with the same relative paths.
    """
    base = root or package_root()
    graph = CallGraph(root=base)

    # pass 1: symbols
    for full, rel in iter_python_files(base):
        with open(full, "r", encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=full)
        info = ModuleInfo(
            relpath=rel,
            filename=full,
            module=module_name(rel),
            tree=tree,
            source=source,
        )
        graph.modules[info.module] = info
        _SymbolCollector(info, graph).visit(tree)

    # keep only dispatch-table refs that actually name functions
    for info in graph.modules.values():
        pruned: Dict[str, Tuple[str, ...]] = {}
        for name, refs in info.global_fn_refs.items():
            fn_refs = tuple(
                r
                for r in refs
                if r in info.functions
                or (r in info.imports and info.imports[r] in graph.functions)
            )
            if fn_refs:
                pruned[name] = fn_refs
        info.global_fn_refs = pruned

    # method-name join table
    for cls in graph.classes.values():
        for name, qual in cls.methods.items():
            graph.methods_by_name.setdefault(name, []).append(qual)
    for name in graph.methods_by_name:
        graph.methods_by_name[name].sort()

    # pass 2: edges
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        collector = _CallCollector(graph, fn)
        collector.visit(fn.node)
        if collector.sites:
            graph.edges[qual] = collector.sites
        if collector.externals:
            graph.external[qual] = collector.externals

    return graph


def iter_reachable(graph: CallGraph, entry: str) -> Iterator[str]:
    """BFS over call edges from ``entry`` (deterministic order, entry first)."""
    seen: Set[str] = {entry}
    queue: List[str] = [entry]
    while queue:
        current = queue.pop(0)
        yield current
        for site in graph.callees(current):
            if site.callee not in seen and site.callee in graph.functions:
                seen.add(site.callee)
                queue.append(site.callee)


def find_path(graph: CallGraph, entry: str, target: str) -> Optional[List[str]]:
    """A shortest call path ``entry → … → target``, or ``None``."""
    if entry == target:
        return [entry]
    seen: Set[str] = {entry}
    queue: List[Tuple[str, List[str]]] = [(entry, [entry])]
    while queue:
        current, path = queue.pop(0)
        for site in graph.callees(current):
            if site.callee in seen or site.callee not in graph.functions:
                continue
            next_path = path + [site.callee]
            if site.callee == target:
                return next_path
            seen.add(site.callee)
            queue.append((site.callee, next_path))
    return None


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "ExternalRef",
    "FunctionInfo",
    "ModuleInfo",
    "build_call_graph",
    "find_path",
    "iter_reachable",
    "module_name",
]
