"""Level-2 source lint: repo-specific hazards, enforced with ``ast``.

The fast topology core (PR 1) made several conventions load-bearing:
simplices and vertices are *interned*, so mutating one corrupts every
aliased copy; complex queries are memoized through a private ``_cache``
slot whose layout only :mod:`repro.topology.cache` may know; census
aggregates are reproducible only because task generation is seeded.  None
of these rules can be expressed in mypy or ruff, so this module walks the
``src/repro`` ASTs itself.

Rules (see ``docs/static_analysis.md`` for examples):

``RC401``
    No attribute writes to interned ``Simplex``/``Vertex`` state (and no
    ``object.__setattr__`` escape hatch) outside the topology core.
``RC402``
    No access to memoization internals — the ``_cache`` slot, or private
    globals of :mod:`repro.topology.cache` — outside the topology core.
``RC403``
    No memoized-query calls inside ``caching_disabled()`` blocks in
    library code (the bypass exists for benchmarks).
``RC404``
    Dataclasses in :mod:`repro.topology` and :mod:`repro.splitting` must
    be ``frozen=True``, and the core topology value types must stay
    ``__slots__``-ed.
``RC405``
    No unseeded randomness or wall-clock reads in census/task-generation
    code (``repro.analysis``, ``repro.tasks.zoo.random_tasks``).
``RC406``
    No legacy simplex-object construction (``Simplex``, ``Vertex``,
    ``SimplicialComplex``, …) inside loops of the bit-packed kernels in
    :mod:`repro.topology.bitcore` — the whole point of that module is to
    stay in packed integers; decode helpers at the boundary are exempt.

All rules are pure functions of a single file's AST; ``lint_source`` lints
one source string (unit-testable) and ``lint_paths`` walks a tree.
"""

from __future__ import annotations

import ast
import os
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .diagnostics import Diagnostic

if TYPE_CHECKING:
    from .passes import CheckResult

#: attributes that make up interned Simplex/Vertex state
INTERNED_ATTRS: FrozenSet[str] = frozenset(
    {"color", "value", "vertices", "_hash", "_sorted", "_key", "_colors", "_chromatic", "_faces"}
)

#: memoized SimplicialComplex queries (kept in sync by the test suite)
MEMOIZED_QUERIES: FrozenSet[str] = frozenset(
    {
        "simplices",
        "f_vector",
        "is_pure",
        "is_chromatic",
        "colors",
        "skeleton",
        "star",
        "link",
        "is_connected",
        "connected_components",
        "is_link_connected",
        "_graph",
        "_bits",
    }
)

#: private module state of repro.topology.cache
CACHE_PRIVATE_NAMES: FrozenSet[str] = frozenset({"_enabled", "_epoch", "_stats", "_EPOCH_KEY"})

#: files allowed to touch interned state / cache internals (topology core)
_TOPOLOGY_CORE: FrozenSet[str] = frozenset(
    {
        "topology/simplex.py",
        "topology/complexes.py",
        "topology/cache.py",
    }
)

#: directories whose dataclasses must be frozen
_FROZEN_DATACLASS_DIRS: Tuple[str, ...] = ("topology/", "splitting/")

#: core value-type modules that must keep __slots__ on every class
_SLOTTED_MODULES: FrozenSet[str] = frozenset(
    {
        "topology/simplex.py",
        "topology/complexes.py",
        "topology/chromatic.py",
        "topology/carrier.py",
        "topology/maps.py",
    }
)

#: files in which determinism is load-bearing for census reproducibility
_DETERMINISM_SCOPE: Tuple[str, ...] = ("analysis/", "tasks/zoo/random_tasks.py")

#: wall-clock / entropy calls banned in the determinism scope
_NONDETERMINISTIC_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "date.today",
        "os.urandom",
        "uuid.uuid4",
    }
)

#: modules whose loops must stay in packed integers (RC406)
_BITCORE_MODULES: FrozenSet[str] = frozenset({"topology/bitcore.py"})

#: legacy simplex-object constructors banned in bitcore hot loops
_LEGACY_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {"Simplex", "Vertex", "SimplicialComplex", "ChromaticComplex", "Barycenter"}
)

#: unseeded module-level random functions banned in the determinism scope
_RANDOM_MODULE_FNS: FrozenSet[str] = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "seed",
    }
)

#: rule metadata: code -> short name (mirrors docs/static_analysis.md)
LINT_RULES: Dict[str, str] = {
    "RC401": "interned-mutation",
    "RC402": "cache-internals-access",
    "RC403": "memoized-call-in-caching-disabled",
    "RC404": "mutable-topology-dataclass",
    "RC405": "nondeterministic-generation",
    "RC406": "legacy-construction-in-bitcore-loop",
    "RC407": "unknown-suppression-code",
}


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` call targets; ``None`` for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


class _FileLinter(ast.NodeVisitor):
    """One-file visitor implementing every RC4xx rule."""

    def __init__(self, relpath: str, filename: str) -> None:
        self.relpath = relpath
        self.filename = filename
        self.diagnostics: List[Diagnostic] = []
        self._cache_aliases: Set[str] = set()
        self._disabled_depth = 0
        self._loop_depth = 0
        self._func_stack: List[str] = []
        self.in_bitcore = relpath in _BITCORE_MODULES
        self.in_topology_core = relpath in _TOPOLOGY_CORE
        self.in_determinism_scope = any(
            relpath.startswith(p) if p.endswith("/") else relpath == p
            for p in _DETERMINISM_SCOPE
        )
        self.wants_frozen_dataclasses = any(
            relpath.startswith(d) for d in _FROZEN_DATACLASS_DIRS
        )
        self.wants_slots = relpath in _SLOTTED_MODULES

    # -- helpers -----------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST, witness: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                subject=self.relpath,
                witness=witness,
                location=f"{self.filename}:{line}:{col + 1}",
            )
        )

    # -- imports (track aliases of repro.topology.cache) -------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.endswith("topology.cache"):
                self._cache_aliases.add(alias.asname or alias.name.split(".")[0])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        from_topology = module.endswith("topology") or (node.level > 0 and module == "")
        for alias in node.names:
            if alias.name == "cache" and (from_topology or node.level > 0):
                self._cache_aliases.add(alias.asname or alias.name)
            if (
                module.endswith("cache")
                and alias.name in CACHE_PRIVATE_NAMES
                and not self.in_topology_core
            ):
                self._emit(
                    "RC402",
                    "importing private state of repro.topology.cache",
                    node,
                    f"from {module} import {alias.name}",
                )
        self.generic_visit(node)

    # -- RC401 / RC402: attribute writes and cache internals ---------------

    def _check_attr_write(self, target: ast.AST, node: ast.AST) -> None:
        if not isinstance(target, ast.Attribute):
            return
        if target.attr in INTERNED_ATTRS and not self.in_topology_core:
            self._emit(
                "RC401",
                f"write to interned attribute {target.attr!r} "
                "(interned Simplex/Vertex state is shared by aliasing)",
                node,
                _dotted(target) or target.attr,
            )
        if target.attr == "_cache" and not self.in_topology_core:
            self._emit(
                "RC402",
                "write to the private memoization slot `_cache`",
                node,
                _dotted(target) or target.attr,
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            self._check_attr_write(t, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_attr_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_attr_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for t in node.targets:
            self._check_attr_write(t, node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_cache" and not self.in_topology_core:
            if isinstance(node.ctx, ast.Load):
                self._emit(
                    "RC402",
                    "read of the private memoization slot `_cache` "
                    "(use repro.topology.cache_info() instead)",
                    node,
                    _dotted(node) or node.attr,
                )
        if (
            node.attr in CACHE_PRIVATE_NAMES
            and isinstance(node.value, ast.Name)
            and node.value.id in self._cache_aliases
            and not self.in_topology_core
        ):
            self._emit(
                "RC402",
                "access to private state of repro.topology.cache",
                node,
                _dotted(node) or node.attr,
            )
        self.generic_visit(node)

    # -- loop / function tracking (RC406 scope) ----------------------------

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop
    visit_ListComp = _visit_loop
    visit_SetComp = _visit_loop
    visit_DictComp = _visit_loop
    visit_GeneratorExp = _visit_loop

    def _visit_funcdef(self, node: ast.AST) -> None:
        self._func_stack.append(getattr(node, "name", ""))
        # a nested function starts its own loop context
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._func_stack.pop()

    visit_FunctionDef = _visit_funcdef
    visit_AsyncFunctionDef = _visit_funcdef

    def _in_decode_helper(self) -> bool:
        return any(name.lstrip("_").startswith("decode") for name in self._func_stack)

    # -- RC401: the object.__setattr__ escape hatch ------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if (
            dotted in ("object.__setattr__", "object.__delattr__")
            and not self.in_topology_core
        ):
            self._emit(
                "RC401",
                f"{dotted} bypasses immutability of interned/frozen objects",
                node,
                dotted,
            )
        if self._disabled_depth > 0 and isinstance(node.func, ast.Attribute):
            if node.func.attr in MEMOIZED_QUERIES:
                self._emit(
                    "RC403",
                    f"memoized query {node.func.attr}() called inside a "
                    "caching_disabled() block",
                    node,
                    _dotted(node.func) or node.func.attr,
                )
        if (
            self.in_bitcore
            and self._loop_depth > 0
            and dotted is not None
            and dotted.split(".")[-1] in _LEGACY_CONSTRUCTORS
            and not self._in_decode_helper()
        ):
            self._emit(
                "RC406",
                f"legacy constructor {dotted}() in a bitcore loop — packed "
                "kernels must stay in integers (decode at the boundary)",
                node,
                dotted,
            )
        if self.in_determinism_scope and dotted is not None:
            parts = dotted.split(".")
            tail = ".".join(parts[-2:]) if len(parts) >= 2 else dotted
            if tail in _NONDETERMINISTIC_CALLS:
                self._emit(
                    "RC405",
                    f"wall-clock/entropy source {dotted}() in seeded-"
                    "generation code",
                    node,
                    dotted,
                )
            elif len(parts) == 2 and parts[0] == "random":
                if parts[1] in _RANDOM_MODULE_FNS:
                    self._emit(
                        "RC405",
                        f"module-level random.{parts[1]}() shares hidden "
                        "global state; use a seeded random.Random instance",
                        node,
                        dotted,
                    )
                elif parts[1] == "Random" and not node.args and not node.keywords:
                    self._emit(
                        "RC405",
                        "random.Random() without a seed is entropy-seeded",
                        node,
                        dotted,
                    )
        self.generic_visit(node)

    # -- RC403: caching_disabled() blocks ----------------------------------

    def visit_With(self, node: ast.With) -> None:
        disabling = any(
            isinstance(item.context_expr, ast.Call)
            and (_dotted(item.context_expr.func) or "").split(".")[-1]
            == "caching_disabled"
            for item in node.items
        )
        if disabling:
            self._disabled_depth += 1
        self.generic_visit(node)
        if disabling:
            self._disabled_depth -= 1

    # -- RC404: dataclass / __slots__ conformance --------------------------

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            if (_dotted(target) or "").split(".")[-1] == "dataclass":
                return dec
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        dec = self._dataclass_decorator(node)
        if dec is not None and self.wants_frozen_dataclasses:
            frozen = False
            if isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                        frozen = bool(kw.value.value)
            if not frozen:
                self._emit(
                    "RC404",
                    f"dataclass {node.name} in a topology/splitting module "
                    "must be frozen=True",
                    node,
                    node.name,
                )
        if self.wants_slots and dec is None and not _is_exception_class(node):
            has_slots = any(
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__slots__"
                    for t in stmt.targets
                )
                for stmt in node.body
            )
            if not has_slots:
                self._emit(
                    "RC404",
                    f"class {node.name} in a core topology module must "
                    "declare __slots__",
                    node,
                    node.name,
                )
        self.generic_visit(node)


def _is_exception_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = (_dotted(base) or "").split(".")[-1]
        if name.endswith("Error") or name.endswith("Exception") or name == "Warning":
            return True
    return False


def lint_source(source: str, relpath: str, filename: Optional[str] = None) -> List[Diagnostic]:
    """Lint one source string as if it lived at ``relpath`` inside ``repro``.

    ``relpath`` uses ``/`` separators relative to the package root, e.g.
    ``"topology/simplex.py"``; it decides which rule scopes apply.

    Findings on a line carrying ``# repro: ignore[RCxxx]`` for their code
    are dropped; suppressions naming unknown codes are reported as RC407.
    """
    from .suppress import (
        apply_suppressions,
        find_suppressions,
        unknown_suppression_diagnostics,
    )

    tree = ast.parse(source, filename=filename or relpath)
    linter = _FileLinter(relpath=relpath, filename=filename or relpath)
    linter.visit(tree)
    kept, _ = apply_suppressions(linter.diagnostics, find_suppressions(source))
    kept.extend(unknown_suppression_diagnostics(source, relpath, filename))
    return kept


def package_root() -> str:
    """The ``src/repro`` directory this installation runs from."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def iter_python_files(root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(absolute path, package-relative posix path)`` pairs."""
    root = os.path.abspath(root)
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                yield full, rel


def lint_paths(root: Optional[str] = None) -> List[Diagnostic]:
    """Lint every Python file under ``root`` (default: the live package)."""
    base = root or package_root()
    out: List[Diagnostic] = []
    for full, rel in iter_python_files(base):
        with open(full, "r", encoding="utf-8") as fh:
            source = fh.read()
        out.extend(lint_source(source, rel, filename=full))
    return out


def lint_result(root: Optional[str] = None) -> "CheckResult":
    """Run the lint and wrap findings in a :class:`CheckResult`."""
    from .passes import CheckResult

    diags = lint_paths(root)
    return CheckResult(
        diagnostics=diags,
        subjects=[root or package_root()],
        passes_run=len(LINT_RULES),
    )
