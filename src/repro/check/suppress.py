"""Inline suppression comments: ``# repro: ignore[RC401]``.

A finding that is *intentional* should be silenced on the flagged line,
where the next reader sees it — not with a global ``--ignore RC401``
prefix that silences the whole rule everywhere.  The comment form is::

    obj._hash = h  # repro: ignore[RC401]
    t0 = time.perf_counter()  # repro: ignore[RC503, RC405]

Several codes may be listed, comma-separated.  A suppression only masks
diagnostics *on its own line*; it never widens to the statement's other
lines.  Listing a code that does not exist in the registry is itself a
finding (``RC407``) — otherwise a typo like ``RC41`` would silently
suppress nothing while looking like it worked.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .diagnostics import CODES, Diagnostic

#: the suppression comment grammar (the bracket payload is validated
#: separately so malformed codes can be reported rather than ignored)
SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]")


def _parse_payload(payload: str) -> List[str]:
    return [part.strip() for part in payload.split(",") if part.strip()]


def _iter_comment_matches(source: str) -> Iterator[Tuple[int, int, "re.Match[str]"]]:
    """Yield ``(lineno, col, match)`` for suppression comments.

    Tokenizing (rather than regex over raw lines) keeps the grammar out
    of string literals and docstrings — only real comments suppress.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        for match in SUPPRESS_RE.finditer(tok.string):
            yield tok.start[0], tok.start[1] + match.start(), match


def find_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of codes suppressed there.

    Only codes present in the registry are returned; unknown codes are
    reported by :func:`unknown_suppression_diagnostics` instead of being
    silently honoured.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, _col, match in _iter_comment_matches(source):
        codes = {c for c in _parse_payload(match.group(1)) if c in CODES}
        if codes:
            out.setdefault(lineno, set()).update(codes)
    return out


def unknown_suppression_diagnostics(
    source: str, relpath: str, filename: Optional[str] = None
) -> List[Diagnostic]:
    """RC407 findings for suppression comments naming unknown codes."""
    out: List[Diagnostic] = []
    for lineno, col, match in _iter_comment_matches(source):
        codes = _parse_payload(match.group(1))
        unknown = [c for c in codes if c not in CODES]
        if not codes:
            unknown = ["<empty>"]
        for code in unknown:
            out.append(
                Diagnostic(
                    code="RC407",
                    message=(
                        f"suppression names unknown diagnostic code "
                        f"{code!r}; it suppresses nothing"
                    ),
                    subject=relpath,
                    witness=match.group(0),
                    location=f"{filename or relpath}:{lineno}:{col + 1}",
                )
            )
    return out


def _location_line(location: Optional[str]) -> Optional[int]:
    if location is None:
        return None
    parts = location.rsplit(":", 2)
    if len(parts) != 3:
        return None
    try:
        return int(parts[1])
    except ValueError:
        return None


def apply_suppressions(
    diagnostics: Iterable[Diagnostic], suppressions: Dict[int, Set[str]]
) -> Tuple[List[Diagnostic], int]:
    """Drop diagnostics whose location line suppresses their code.

    Returns ``(kept, n_suppressed)``.
    """
    kept: List[Diagnostic] = []
    dropped = 0
    for d in diagnostics:
        line = _location_line(d.location)
        if line is not None and d.code in suppressions.get(line, set()):
            dropped += 1
            continue
        kept.append(d)
    return kept, dropped


__all__ = [
    "SUPPRESS_RE",
    "apply_suppressions",
    "find_suppressions",
    "unknown_suppression_diagnostics",
]
