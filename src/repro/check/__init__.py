"""``repro.check`` — a pass-based static verifier for tasks and the repo.

The solvability pipeline (canonical form → LAP elimination → carried-map
search; Theorems 3.1/4.3/5.1) is only sound on inputs satisfying structural
invariants: proper chromatic coloring, monotone name-preserving carrier
maps, total rigid deltas, genuinely link-connected outputs.  This package
verifies those invariants *statically*, before any decision procedure runs,
and additionally lints the library's own sources for the hazards the fast
topology core introduced (interned-object mutation, cache-internal access,
nondeterministic task generation).

Two levels:

* **Level 1 — domain passes** (:mod:`repro.check.domain`): a pass manager
  over :class:`~repro.tasks.task.Task`,
  :class:`~repro.topology.complexes.SimplicialComplex` and
  :class:`~repro.topology.carrier.CarrierMap` objects.  Every finding is a
  :class:`~repro.check.diagnostics.Diagnostic` with a stable ``RCxxx`` code
  and a concrete witness (the offending simplex, vertex or link component).
* **Level 2 — code passes** (:mod:`repro.check.astlint`): a stdlib-``ast``
  lint over ``src/repro`` enforcing repo-specific rules, plus gated runners
  for ``mypy --strict`` and ``ruff`` (:mod:`repro.check.tooling`).

Entry points: ``python -m repro check`` (text/JSON/SARIF output; see
:mod:`repro.check.cli`) and the ``validate=`` pre-flight hook of
:func:`repro.solvability.decision.decide_solvability` (see
:func:`preflight_check`).  ``docs/static_analysis.md`` catalogues every
diagnostic code.
"""

from .astlint import LINT_RULES, lint_paths, lint_source
from .diagnostics import CODES, CodeInfo, Diagnostic, Severity, describe_code
from .domain import (
    DOMAIN_PASSES,
    check_carrier_map,
    check_complex,
    check_task,
    run_domain_checks,
)
from .passes import CheckResult, DomainPass, iter_passes
from .preflight import PreflightError, preflight_check
from .tooling import ToolReport, run_mypy, run_ruff

__all__ = [
    "CODES",
    "CheckResult",
    "CodeInfo",
    "DOMAIN_PASSES",
    "Diagnostic",
    "DomainPass",
    "LINT_RULES",
    "PreflightError",
    "Severity",
    "ToolReport",
    "check_carrier_map",
    "check_complex",
    "check_task",
    "describe_code",
    "iter_passes",
    "lint_paths",
    "lint_source",
    "preflight_check",
    "run_domain_checks",
    "run_mypy",
    "run_ruff",
]
