"""``repro.check`` — a pass-based static verifier for tasks and the repo.

The solvability pipeline (canonical form → LAP elimination → carried-map
search; Theorems 3.1/4.3/5.1) is only sound on inputs satisfying structural
invariants: proper chromatic coloring, monotone name-preserving carrier
maps, total rigid deltas, genuinely link-connected outputs.  This package
verifies those invariants *statically*, before any decision procedure runs,
and additionally lints the library's own sources for the hazards the fast
topology core introduced (interned-object mutation, cache-internal access,
nondeterministic task generation).

Three levels:

* **Level 1 — domain passes** (:mod:`repro.check.domain`): a pass manager
  over :class:`~repro.tasks.task.Task`,
  :class:`~repro.topology.complexes.SimplicialComplex` and
  :class:`~repro.topology.carrier.CarrierMap` objects.  Every finding is a
  :class:`~repro.check.diagnostics.Diagnostic` with a stable ``RCxxx`` code
  and a concrete witness (the offending simplex, vertex or link component).
* **Level 2 — code passes** (:mod:`repro.check.astlint`): a stdlib-``ast``
  lint over ``src/repro`` enforcing repo-specific rules, plus gated runners
  for ``mypy --strict`` and ``ruff`` (:mod:`repro.check.tooling`).
  Findings suppress locally with ``# repro: ignore[RCxxx]`` comments
  (:mod:`repro.check.suppress`).
* **Level 3 — effect analysis** (:mod:`repro.check.effects`): a
  whole-package call graph (:mod:`repro.check.callgraph`) with per-function
  effect signatures propagated to fixpoint, enforcing cache-soundness
  (``RC50x``) and fork-safety (``RC51x``) against a committed effect
  baseline.

Entry points: ``python -m repro check`` (text/JSON/SARIF output; see
:mod:`repro.check.cli`) and the ``validate=`` pre-flight hook of
:func:`repro.solvability.decision.decide_solvability` (see
:func:`preflight_check`).  ``docs/static_analysis.md`` catalogues every
diagnostic code.
"""

from .astlint import LINT_RULES, lint_paths, lint_source
from .callgraph import CallGraph, build_call_graph, find_path, iter_reachable
from .diagnostics import CODES, CodeInfo, Diagnostic, Severity, describe_code
from .domain import (
    DOMAIN_PASSES,
    check_carrier_map,
    check_complex,
    check_task,
    run_domain_checks,
)
from .effects import (
    Baseline,
    EffectAnalysis,
    analyze_package,
    effects_result,
    load_baseline,
    write_baseline,
)
from .passes import CheckResult, DomainPass, iter_passes
from .preflight import PreflightError, preflight_check
from .suppress import find_suppressions, unknown_suppression_diagnostics
from .tooling import ToolReport, run_mypy, run_ruff

__all__ = [
    "Baseline",
    "CODES",
    "CallGraph",
    "CheckResult",
    "CodeInfo",
    "DOMAIN_PASSES",
    "Diagnostic",
    "DomainPass",
    "EffectAnalysis",
    "LINT_RULES",
    "PreflightError",
    "Severity",
    "ToolReport",
    "analyze_package",
    "build_call_graph",
    "check_carrier_map",
    "check_complex",
    "check_task",
    "describe_code",
    "effects_result",
    "find_path",
    "find_suppressions",
    "iter_passes",
    "iter_reachable",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "preflight_check",
    "run_domain_checks",
    "run_mypy",
    "run_ruff",
    "unknown_suppression_diagnostics",
    "write_baseline",
]
