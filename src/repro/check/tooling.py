"""Gated runners for the external tools in the ``check --self`` gate.

The self-check wires three things together: the stdlib AST lint (always
available), ``mypy --strict`` over the typed gate modules, and ``ruff``.
This environment may lack mypy/ruff (the repo pins no network access), so
each runner *gates* on availability: a missing tool yields a
:class:`ToolReport` with status ``"skipped"`` rather than a failure, and
``--strict-tools`` upgrades skips to errors for CI, where the tools are
installed.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

#: modules held to ``mypy --strict`` (the typed gate)
MYPY_GATE: Tuple[str, ...] = (
    "src/repro/check",
    "src/repro/perf.py",
    "src/repro/topology/cache.py",
)

#: additional mypy flags applied to every gate run
MYPY_FLAGS: Tuple[str, ...] = ("--strict", "--no-error-summary")


@dataclass
class ToolReport:
    """Outcome of one external-tool invocation."""

    tool: str
    status: str  # "ok" | "failed" | "skipped"
    detail: str = ""
    output_lines: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    def render(self) -> str:
        head = f"[{self.tool}] {self.status}"
        if self.detail:
            head += f" — {self.detail}"
        body = "".join(f"\n  {line}" for line in self.output_lines[:40])
        return head + body


def _find_tool(name: str) -> Optional[List[str]]:
    """Resolve a tool to an argv prefix, preferring the current interpreter."""
    try:
        __import__(name)
        return [sys.executable, "-m", name]
    except ImportError:
        pass
    exe = shutil.which(name)
    if exe is not None:
        return [exe]
    return None


def _run(argv: Sequence[str], cwd: Optional[str], tool: str) -> ToolReport:
    try:
        proc = subprocess.run(
            list(argv),
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=600,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        return ToolReport(tool=tool, status="failed", detail=str(exc))
    lines = [ln for ln in (proc.stdout + proc.stderr).splitlines() if ln.strip()]
    if proc.returncode == 0:
        return ToolReport(tool=tool, status="ok", output_lines=lines)
    return ToolReport(
        tool=tool,
        status="failed",
        detail=f"exit code {proc.returncode}",
        output_lines=lines,
    )


def run_mypy(
    targets: Sequence[str] = MYPY_GATE, cwd: Optional[str] = None
) -> ToolReport:
    """``mypy --strict`` over the typed gate, or a skip when unavailable."""
    argv = _find_tool("mypy")
    if argv is None:
        return ToolReport(
            tool="mypy",
            status="skipped",
            detail="mypy is not installed in this environment",
        )
    return _run([*argv, *MYPY_FLAGS, *targets], cwd, "mypy")


def run_ruff(targets: Sequence[str] = ("src", "tests"), cwd: Optional[str] = None) -> ToolReport:
    """``ruff check`` (config comes from pyproject), or a skip when unavailable."""
    argv = _find_tool("ruff")
    if argv is None:
        return ToolReport(
            tool="ruff",
            status="skipped",
            detail="ruff is not installed in this environment",
        )
    return _run([*argv, "check", *targets], cwd, "ruff")
