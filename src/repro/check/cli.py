"""The ``python -m repro check`` subcommand.

Three modes share one entry point:

* **domain mode** (default): verify zoo tasks and/or task JSON files with
  the Level-1 passes.  ``--deep`` additionally pushes each task through
  the Section 3/4 transform and holds the result to the ``canonical`` and
  ``link`` invariants.
* **self mode** (``--self``): lint the library's own sources with the
  Level-2 AST rules and the gated ``mypy --strict`` / ``ruff`` runners.
* **effects mode** (``--effects``): the Level-3 interprocedural
  cache-soundness / fork-safety analysis of :mod:`repro.check.effects`,
  judged against the committed effect baseline (override with
  ``--baseline``, regenerate with ``--write-baseline``).  Combines with
  ``--self`` for the full source gate.

Output formats: ``text`` (default), ``json``, ``sarif``.  Exit status: 0
when no error-severity finding (and no tool failure) was reported, 1
otherwise; usage errors exit 2 via argparse.

Check runs are observable like every other pipeline command: with
``--trace``/``--store`` (or ``REPRO_TELEMETRY``) the run lands in the
telemetry store with per-code diagnostic counts as counters, so
``obs trend`` tracks finding counts across commits.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import Counter
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from ..tasks.task import Task

from .astlint import lint_result, package_root
from .domain import check_task
from .output import render
from .passes import CheckResult
from .tooling import ToolReport, run_mypy, run_ruff


def _split_codes(spec: Optional[str]) -> Optional[List[str]]:
    if spec is None:
        return None
    parts = [p.strip() for p in spec.split(",") if p.strip()]
    return parts or None


def repo_root() -> Optional[str]:
    """The repository checkout containing this package, if there is one.

    Returns ``None`` when running from an installed distribution — the
    external-tool gate then reports a skip instead of failing on missing
    source paths.
    """
    candidate = os.path.dirname(os.path.dirname(package_root()))
    if os.path.isfile(os.path.join(candidate, "pyproject.toml")):
        return candidate
    return None


def _self_check(args: argparse.Namespace) -> Tuple[CheckResult, List[ToolReport]]:
    result = lint_result()
    tools: List[ToolReport] = []
    if not args.no_tools:
        root = repo_root()
        if root is None:
            tools.append(
                ToolReport(
                    tool="mypy",
                    status="skipped",
                    detail="no repository checkout found",
                )
            )
            tools.append(
                ToolReport(
                    tool="ruff",
                    status="skipped",
                    detail="no repository checkout found",
                )
            )
        else:
            tools.append(run_mypy(cwd=root))
            tools.append(run_ruff(cwd=root))
    return result, tools


def _load_target(spec: str) -> "Task":
    # imported here: __main__ owns the zoo registry and imports this module
    from ..__main__ import ZOO
    from ..io import load_task

    if spec in ZOO:
        return ZOO[spec]()
    if spec.endswith(".json"):
        # check=False: reporting malformedness is the verifier's job, so the
        # constructor's own validation must not shadow the diagnostics
        return load_task(spec, check=False)
    raise SystemExit(
        f"unknown task {spec!r}; use one of {', '.join(sorted(ZOO))} or a .json file"
    )


def _domain_check(args: argparse.Namespace) -> CheckResult:
    from ..__main__ import ZOO

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    targets: Sequence[str] = args.targets or sorted(ZOO)
    result = CheckResult()
    for spec in targets:
        task = _load_target(spec)
        result.extend(
            check_task(task, deep=args.deep, select=select, ignore=ignore, name=spec)
        )
    return result


def _filter_result(
    result: CheckResult,
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> CheckResult:
    """Apply ``--select``/``--ignore`` code prefixes to reported findings."""
    if select is None and ignore is None:
        return result

    def keep(code: str) -> bool:
        if select is not None and not any(code.startswith(p) for p in select):
            return False
        if ignore is not None and any(code.startswith(p) for p in ignore):
            return False
        return True

    return CheckResult(
        diagnostics=[d for d in result.diagnostics if keep(d.code)],
        subjects=result.subjects,
        passes_run=result.passes_run,
    )


def _record_obs_counters(result: CheckResult) -> None:
    """Record finding counts into the active trace (no-op untraced).

    One counter per reported code plus error/warning totals: the shape
    ``obs trend`` needs to plot finding counts across stored check runs.
    """
    from .. import obs

    if not obs.tracing_enabled():
        return
    for code, n in sorted(Counter(d.code for d in result.diagnostics).items()):
        obs.counter_add(f"check.diag.{code}", float(n))
    obs.counter_add(
        "check.errors",
        float(sum(1 for d in result.diagnostics if d.severity == "error")),
    )
    obs.counter_add(
        "check.warnings",
        float(sum(1 for d in result.diagnostics if d.severity == "warning")),
    )


def cmd_check(args: argparse.Namespace) -> int:
    """Entry point for the ``check`` subcommand."""
    # lazy: __main__ owns the tracing context and imports this module
    from ..__main__ import _tracing_to

    if args.write_baseline:
        if not args.effects:
            raise SystemExit("--write-baseline requires --effects")
        from .effects import DEFAULT_BASELINE_PATH, write_baseline

        path = args.baseline or DEFAULT_BASELINE_PATH
        payload = write_baseline(path)
        n = sum(len(v) for v in payload["declared"].values())
        print(f"wrote {path} ({n} declared effect(s))")
        return 0
    if args.baseline and not args.effects:
        raise SystemExit("--baseline requires --effects")

    source_mode = args.self_check or args.effects
    if source_mode and (args.targets or args.deep):
        raise SystemExit(
            "--self/--effects cannot be combined with task targets or --deep"
        )

    with _tracing_to(args, "check"):
        tools: List[ToolReport] = []
        if source_mode:
            result = CheckResult()
            if args.self_check:
                lint, tools = _self_check(args)
                result.extend(lint)
            if args.effects:
                from .effects import effects_result

                try:
                    result.extend(
                        effects_result(
                            baseline_path=args.baseline,
                            # --self already swept suppressions for RC407
                            report_unknown_suppressions=not args.self_check,
                        )
                    )
                except (FileNotFoundError, ValueError) as exc:
                    raise SystemExit(f"effects baseline error: {exc}")
            result = _filter_result(
                result, _split_codes(args.select), _split_codes(args.ignore)
            )
            if args.strict_tools:
                for t in tools:
                    if t.skipped:
                        t.status = "failed"
                        t.detail = (
                            f"required by --strict-tools but unavailable: {t.detail}"
                        )
        else:
            result = _domain_check(args)
        _record_obs_counters(result)

    report = render(args.format, result, tools, verbose=args.verbose)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
            fh.write("\n")
        print(f"wrote {args.output}")
    else:
        print(report)

    failed_tools = [t for t in tools if not (t.ok or t.skipped)]
    if failed_tools and args.format == "text":
        print(
            f"tool failure(s): {', '.join(t.tool for t in failed_tools)}",
            file=sys.stderr,
        )
    return 0 if result.ok and not failed_tools else 1


def add_check_parser(sub: "argparse._SubParsersAction") -> None:
    """Register the ``check`` subcommand on the repro CLI."""
    p = sub.add_parser(
        "check",
        help="statically verify tasks (and the repo itself)",
        description=(
            "Level-1 domain verification of task invariants with stable "
            "RCxxx diagnostics, (--self) the Level-2 source lint + "
            "mypy/ruff gate, and (--effects) the Level-3 interprocedural "
            "cache-soundness/fork-safety analysis. See "
            "docs/static_analysis.md for the code catalogue."
        ),
    )
    p.add_argument(
        "targets",
        nargs="*",
        help="zoo task names or task JSON files (default: the whole zoo)",
    )
    p.add_argument(
        "--deep",
        action="store_true",
        help="also transform each task (canonicalize + split) and verify "
        "the canonical/link-stage invariants on the result",
    )
    p.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help="lint the repro sources (AST rules; plus mypy --strict and "
        "ruff when installed)",
    )
    p.add_argument(
        "--effects",
        action="store_true",
        help="run the Level-3 interprocedural effect analysis (RC50x "
        "cache-soundness + RC51x fork-safety) against the committed "
        "effect baseline; combines with --self",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="with --effects: judge findings against this baseline file "
        "instead of the committed src/repro/check/effects_baseline.json",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="with --effects: regenerate the baseline from the current "
        "findings (preserving existing reasons) instead of checking",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    p.add_argument("--output", metavar="FILE", help="write the report to a file")
    p.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated code prefixes to run exclusively (e.g. RC1,RC203)",
    )
    p.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated code prefixes to suppress",
    )
    p.add_argument(
        "--no-tools",
        action="store_true",
        help="with --self: run only the AST lint, skip mypy/ruff",
    )
    p.add_argument(
        "--strict-tools",
        action="store_true",
        help="with --self: treat missing mypy/ruff as failures (CI mode)",
    )
    p.add_argument("--verbose", action="store_true", help="list checked subjects")
    # lazy: __main__ owns the observability flags and imports this module
    from ..__main__ import _add_observability_args

    _add_observability_args(p)
    p.set_defaults(fn=cmd_check)
