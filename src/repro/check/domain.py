"""Level-1 domain passes over tasks, complexes and carrier maps.

Each pass verifies one invariant the solvability pipeline assumes, and
every finding carries a concrete witness: the offending simplex, the
face/coface pair breaking monotonicity, the vertex whose link falls apart
(with its components), and so on.  Passes never mutate their subject and
never raise on malformed input — *reporting* malformedness is their job.

The default ``structure`` stage is sound for any task; the ``canonical``
and ``link`` stages assert invariants that only hold after the Section 3
and Section 4 transforms and are therefore opt-in (the CLI's ``--deep``
mode runs them on the transformed task).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Union

from ..splitting.lap import iter_local_articulation_points
from ..tasks.canonical import vertex_preimages
from ..tasks.task import Task
from ..topology.carrier import CarrierMap
from ..topology.complexes import SimplicialComplex
from ..topology.simplex import Simplex
from .diagnostics import Diagnostic
from .passes import CheckResult, DomainPass, PassFn, iter_passes

#: A carrier rule: a pass body already narrowed to CarrierMap subjects.
CarrierRule = Callable[[CarrierMap, str], Iterator[Diagnostic]]

Subject = Union[Task, SimplicialComplex, CarrierMap]

#: How many findings a single pass reports per subject before truncating.
MAX_FINDINGS_PER_PASS = 25


def _subject_name(subject: Subject, name: Optional[str]) -> str:
    if name:
        return name
    explicit = getattr(subject, "name", None)
    if isinstance(explicit, str) and explicit:
        return explicit
    return type(subject).__name__


def _capped(diags: Iterator[Diagnostic]) -> Iterator[Diagnostic]:
    for i, d in enumerate(diags):
        if i >= MAX_FINDINGS_PER_PASS:
            break
        yield d


# -- shared carrier-map rules (used by both Task and CarrierMap passes) ----


def _iter_improper_coloring(
    complexes: Sequence[SimplicialComplex], labels: Sequence[str], where: str
) -> Iterator[Diagnostic]:
    for cx, label in zip(complexes, labels):
        for facet in cx.facets:
            if not facet.is_chromatic():
                yield Diagnostic(
                    code="RC101",
                    message=f"{label} facet is not properly colored",
                    subject=where,
                    witness=repr(facet),
                )


def _iter_not_monotone(delta: CarrierMap, where: str) -> Iterator[Diagnostic]:
    for s in delta.domain.simplices():
        if s.dim == 0:
            continue
        img = delta(s)
        for face in s.boundary():
            if not delta(face).is_subcomplex_of(img):
                yield Diagnostic(
                    code="RC102",
                    message="Δ is not monotone: Δ(face) ⊄ Δ(simplex)",
                    subject=where,
                    witness=f"face={face!r} simplex={s!r}",
                )


def _iter_name_not_preserved(delta: CarrierMap, where: str) -> Iterator[Diagnostic]:
    for s, img in delta.items():
        try:
            want = s.colors()
        except ValueError:
            continue  # RC101 already covers colorless domain simplices
        for f in img.facets:
            try:
                got = f.colors()
            except ValueError:
                yield Diagnostic(
                    code="RC103",
                    message="image facet has a colorless vertex",
                    subject=where,
                    witness=f"Δ({s!r}) ∋ {f!r}",
                )
                continue
            if got != want:
                yield Diagnostic(
                    code="RC103",
                    message=(
                        "image facet carries colors "
                        f"{sorted(got)} but the input simplex carries {sorted(want)}"
                    ),
                    subject=where,
                    witness=f"Δ({s!r}) ∋ {f!r}",
                )


def _iter_image_outside_codomain(delta: CarrierMap, where: str) -> Iterator[Diagnostic]:
    for s, img in delta.items():
        for f in img.facets:
            if f not in delta.codomain:
                yield Diagnostic(
                    code="RC106",
                    message="image contains a simplex absent from the codomain",
                    subject=where,
                    witness=f"Δ({s!r}) ∋ {f!r}",
                )


def _iter_not_rigid(delta: CarrierMap, where: str) -> Iterator[Diagnostic]:
    for s, img in delta.items():
        if not img:
            continue  # RC301's concern
        if img.dim != s.dim:
            yield Diagnostic(
                code="RC107",
                message=f"image has dimension {img.dim}, expected {s.dim}",
                subject=where,
                witness=f"Δ({s!r})",
            )
        elif not img.is_pure():
            low = min((f for f in img.facets), key=Simplex.sort_key)
            yield Diagnostic(
                code="RC107",
                message="image is not pure",
                subject=where,
                witness=f"Δ({s!r}) has facet {low!r} of dimension {low.dim}",
            )


def _iter_not_total(delta: CarrierMap, where: str) -> Iterator[Diagnostic]:
    for s, img in delta.items():
        if not img:
            yield Diagnostic(
                code="RC301",
                message="Δ is not total: input simplex has an empty image",
                subject=where,
                witness=repr(s),
            )


# -- Task passes -----------------------------------------------------------


def _pass_improper_coloring(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    yield from _iter_improper_coloring(
        (task.input_complex, task.output_complex),
        ("input complex", "output complex"),
        where,
    )


def _pass_not_monotone(subject: object, where: str) -> Iterator[Diagnostic]:
    assert isinstance(subject, Task)
    yield from _iter_not_monotone(subject.delta, where)


def _pass_name_not_preserved(subject: object, where: str) -> Iterator[Diagnostic]:
    assert isinstance(subject, Task)
    yield from _iter_name_not_preserved(subject.delta, where)


def _pass_dimensions(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    in_dim = task.input_complex.dim
    out_dim = task.output_complex.dim
    if in_dim != out_dim:
        yield Diagnostic(
            code="RC104",
            message=f"input dimension {in_dim} ≠ output dimension {out_dim}",
            subject=where,
            witness=f"dim(I)={in_dim}, dim(O)={out_dim}",
        )


def _pass_purity(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    cx = task.input_complex
    if not cx.is_pure():
        for facet in cx.facets:
            if facet.dim < cx.dim:
                yield Diagnostic(
                    code="RC105",
                    message=(
                        f"input complex of dimension {cx.dim} has a facet of "
                        f"dimension {facet.dim}"
                    ),
                    subject=where,
                    witness=repr(facet),
                )


def _pass_image_outside_codomain(subject: object, where: str) -> Iterator[Diagnostic]:
    assert isinstance(subject, Task)
    yield from _iter_image_outside_codomain(subject.delta, where)


def _pass_not_rigid(subject: object, where: str) -> Iterator[Diagnostic]:
    assert isinstance(subject, Task)
    yield from _iter_not_rigid(subject.delta, where)


def _pass_not_total(subject: object, where: str) -> Iterator[Diagnostic]:
    assert isinstance(subject, Task)
    yield from _iter_not_total(subject.delta, where)


def _pass_output_unreachable(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    reachable = task.delta.image()
    for facet in task.output_complex.facets:
        if facet not in reachable:
            yield Diagnostic(
                code="RC302",
                message="output facet is unreachable by Δ (O ≠ ∪ Δ(σ))",
                subject=where,
                witness=repr(facet),
                severity="warning",
            )


def _pass_not_canonical(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    for w in task.reachable_outputs().vertices:
        pre = vertex_preimages(task, w)
        if len(pre) != 1:
            yield Diagnostic(
                code="RC201",
                message=(
                    f"output vertex has {len(pre)} input-vertex preimages "
                    "(canonical form requires exactly one, Claim 1)"
                ),
                subject=where,
                witness=f"{w!r} ← {list(pre)!r}",
            )
    facets = task.input_complex.facets
    for i, s1 in enumerate(facets):
        img1 = set(task.delta(s1).facets)
        for s2 in facets[i + 1 :]:
            shared = img1 & set(task.delta(s2).facets)
            if shared:
                f = min(shared, key=Simplex.sort_key)
                yield Diagnostic(
                    code="RC201",
                    message="two input facets share an image facet",
                    subject=where,
                    witness=f"Δ({s1!r}) ∩ Δ({s2!r}) ∋ {f!r}",
                )


def _pass_residual_lap(subject: object, where: str) -> Iterator[Diagnostic]:
    task = subject
    assert isinstance(task, Task)
    if task.input_complex.dim != 2:
        return  # LAPs are a three-process notion (Section 4)
    for lap in iter_local_articulation_points(task):
        comps = " | ".join(
            "{" + ", ".join(repr(v) for v in sorted(c, key=repr)) + "}"
            for c in lap.components
        )
        yield Diagnostic(
            code="RC202",
            message=(
                f"local articulation point: link splits into "
                f"{lap.n_components} components inside Δ(σ)"
            ),
            subject=where,
            witness=f"{lap.vertex!r} w.r.t. σ={lap.facet!r}; components {comps}",
        )


# -- SimplicialComplex passes ----------------------------------------------


def _pass_link_disconnected(subject: object, where: str) -> Iterator[Diagnostic]:
    cx = subject
    assert isinstance(cx, SimplicialComplex)
    for v in cx.vertices:
        comps = cx.link_components(v)
        if len(comps) >= 2:
            rendered = " | ".join(
                "{" + ", ".join(repr(u) for u in sorted(c, key=repr)) + "}"
                for c in comps
            )
            yield Diagnostic(
                code="RC203",
                message=f"vertex link has {len(comps)} connected components",
                subject=where,
                witness=f"{v!r}; components {rendered}",
            )


def _pass_complex_improper_coloring(subject: object, where: str) -> Iterator[Diagnostic]:
    cx = subject
    assert isinstance(cx, SimplicialComplex)
    yield from _iter_improper_coloring((cx,), ("complex",), where)


# -- CarrierMap passes ------------------------------------------------------


def _carrier_pass(rule: CarrierRule) -> PassFn:
    def run(subject: object, where: str) -> Iterator[Diagnostic]:
        assert isinstance(subject, CarrierMap)
        yield from rule(subject, where)

    return run


#: The full pass registry, in execution order.
DOMAIN_PASSES: List[DomainPass] = [
    # Task / structure
    DomainPass("improper-coloring", ("RC101",), "structure", "task", _pass_improper_coloring),
    DomainPass("carrier-not-monotone", ("RC102",), "structure", "task", _pass_not_monotone),
    DomainPass("name-not-preserved", ("RC103",), "structure", "task", _pass_name_not_preserved),
    DomainPass("dimension-mismatch", ("RC104",), "structure", "task", _pass_dimensions),
    DomainPass("impure-complex", ("RC105",), "structure", "task", _pass_purity),
    DomainPass(
        "image-outside-codomain", ("RC106",), "structure", "task", _pass_image_outside_codomain
    ),
    DomainPass("delta-not-rigid", ("RC107",), "structure", "task", _pass_not_rigid),
    DomainPass("delta-not-total", ("RC301",), "structure", "task", _pass_not_total),
    DomainPass("output-unreachable", ("RC302",), "structure", "task", _pass_output_unreachable),
    # Task / pipeline stages
    DomainPass("not-canonical-form", ("RC201",), "canonical", "task", _pass_not_canonical),
    DomainPass("residual-LAP", ("RC202",), "link", "task", _pass_residual_lap),
    # Complex subjects
    DomainPass(
        "complex-improper-coloring",
        ("RC101",),
        "structure",
        "complex",
        _pass_complex_improper_coloring,
    ),
    DomainPass("link-disconnected", ("RC203",), "link", "complex", _pass_link_disconnected),
    # CarrierMap subjects
    DomainPass(
        "carrier-monotone", ("RC102",), "structure", "carrier", _carrier_pass(_iter_not_monotone)
    ),
    DomainPass(
        "carrier-chromatic",
        ("RC103",),
        "structure",
        "carrier",
        _carrier_pass(_iter_name_not_preserved),
    ),
    DomainPass(
        "carrier-codomain",
        ("RC106",),
        "structure",
        "carrier",
        _carrier_pass(_iter_image_outside_codomain),
    ),
    DomainPass(
        "carrier-rigid", ("RC107",), "structure", "carrier", _carrier_pass(_iter_not_rigid)
    ),
    DomainPass(
        "carrier-total", ("RC301",), "structure", "carrier", _carrier_pass(_iter_not_total)
    ),
]


def _kind_of(subject: Subject) -> str:
    if isinstance(subject, Task):
        return "task"
    if isinstance(subject, CarrierMap):
        return "carrier"
    if isinstance(subject, SimplicialComplex):
        return "complex"
    raise TypeError(f"cannot check {type(subject).__name__} objects")


def run_domain_checks(
    subject: Subject,
    stages: Sequence[str] = ("structure",),
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> CheckResult:
    """Run the applicable domain passes over one subject.

    ``stages`` picks pass groups (``structure``, ``canonical``, ``link``);
    ``select``/``ignore`` filter by code prefix (a selected code's pass
    runs regardless of stage).  Per pass, at most
    :data:`MAX_FINDINGS_PER_PASS` findings are reported.
    """
    where = _subject_name(subject, name)
    result = CheckResult(subjects=[where])
    for p in iter_passes(DOMAIN_PASSES, _kind_of(subject), stages, select, ignore):
        result.diagnostics.extend(_capped(iter(p.run(subject, where))))
        result.passes_run += 1
    return result


def check_task(
    task: Task,
    deep: bool = False,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> CheckResult:
    """Check one task.

    The default run verifies the structural invariants every pipeline
    entry point assumes.  With ``deep=True`` the task is additionally
    pushed through :func:`~repro.splitting.pipeline.link_connected_form`
    and the transformed task is held to the ``canonical`` and ``link``
    stage invariants (Theorems 3.1 and 4.3 guarantee they hold — a finding
    there means the transform itself is broken).
    """
    result = run_domain_checks(task, ("structure",), select, ignore, name)
    if deep and result.ok:
        from ..splitting.pipeline import link_connected_form

        transform = link_connected_form(task)
        where = _subject_name(task, name)
        result.extend(
            run_domain_checks(
                transform.task,
                ("structure", "canonical", "link"),
                select,
                ignore,
                name=f"{where} (transformed)",
            )
        )
    return result


def check_complex(
    cx: SimplicialComplex,
    stages: Sequence[str] = ("structure", "link"),
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> CheckResult:
    """Check a bare complex (coloring plus link-connectivity by default)."""
    return run_domain_checks(cx, stages, select, ignore, name)


def check_carrier_map(
    delta: CarrierMap,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
) -> CheckResult:
    """Check a bare carrier map (monotonicity, rigidity, totality, colors)."""
    return run_domain_checks(delta, ("structure",), select, ignore, name)
