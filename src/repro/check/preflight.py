"""Pre-flight validation for the decision procedure.

:func:`repro.solvability.decision.decide_solvability` accepts
``validate=True`` to run the Level-1 structural passes before deciding
anything; a malformed task then fails *loudly*, with every diagnostic and
witness, instead of silently producing a wrong verdict.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..tasks.task import TaskError
from .diagnostics import Diagnostic

if TYPE_CHECKING:
    from ..tasks.task import Task


class PreflightError(TaskError):
    """A task failed static verification before the decision procedure.

    Subclasses :class:`~repro.tasks.task.TaskError` so existing callers
    that guard against malformed tasks keep working; carries the full
    diagnostic list for programmatic access.
    """

    def __init__(self, task_name: str, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = [
            f"task {task_name!r} failed pre-flight verification "
            f"({len(diagnostics)} finding(s)):"
        ]
        lines.extend(f"  {d.render()}" for d in diagnostics[:10])
        if len(diagnostics) > 10:
            lines.append(f"  … and {len(diagnostics) - 10} more")
        super().__init__("\n".join(lines))


def preflight_check(task: "Task") -> None:
    """Raise :class:`PreflightError` if a task violates structural invariants.

    Runs the ``structure`` stage of the domain passes (RC1xx/RC3xx);
    warnings (e.g. ``RC302 output-unreachable``) do not fail the
    pre-flight, matching what the pipeline actually tolerates
    (``link_connected_form`` restricts to the reachable part itself).
    """
    from .domain import run_domain_checks

    result = run_domain_checks(task, stages=("structure",))
    errors = [d for d in result.diagnostics if d.severity == "error"]
    if errors:
        raise PreflightError(task.name or "task", errors)
