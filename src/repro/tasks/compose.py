"""Sequential composition of tasks.

If every legal output configuration of ``T1`` is a legal input
configuration of ``T2``, the *sequential composition* ``T1 ; T2`` is the
task "solve ``T1``, then solve ``T2`` on what you decided".  Its
specification is the carrier-map composition ``Δ2 ∘ Δ1``, and its
operational content is protocol composition: wait-free protocols compose
sequentially, so solvability of both factors implies solvability of the
composition (the converse is false — a composition can be easier than its
factors).

This is the building block behind staged protocols (e.g. "first narrow
the candidates with set agreement, then run a solvable refinement"), and
it gives the test suite an algebra to check the decision procedure
against.
"""

from __future__ import annotations

from typing import Optional

from ..topology.carrier import CarrierMap
from .task import Task, TaskError


def composable(first: Task, second: Task) -> bool:
    """Whether ``first``'s reachable outputs are inputs of ``second``."""
    reachable = first.reachable_outputs()
    return all(f in second.input_complex for f in reachable.facets)


def sequential_composition(
    first: Task, second: Task, name: Optional[str] = None
) -> Task:
    """The task ``first ; second``.

    Requires the output vocabulary of ``first`` to embed in the input
    complex of ``second`` (checked).  The composed Δ is
    ``σ ↦ ⋃ { Δ2(τ) : τ ∈ Δ1(σ) }``; the composed output complex is the
    reachable part of ``second``'s outputs.
    """
    if not composable(first, second):
        raise TaskError(
            "tasks do not compose: some output of the first task is not an "
            "input simplex of the second"
        )
    delta = first.delta.compose(second.delta)
    composed = Task(
        first.input_complex,
        second.output_complex,
        delta,
        name=name or f"{first.name or 'T1'};{second.name or 'T2'}",
        check=True,
    )
    return composed.restrict_to_reachable()


def _run_stage(gen, prefix: str):
    """Drive a stage's generator with namespaced shared-object names.

    Yields the stage's ops with object names prefixed (the two stages must
    not share snapshot arrays), and returns the stage's decision.
    """
    result = None
    while True:
        op = gen.send(result)
        kind = op[0]
        if kind == "decide":
            return op[1]
        result = yield (kind, f"{prefix}{op[1]}", *op[2:])


def compose_protocol_factories(first_build, second_build):
    """Compose protocol factory builders sequentially.

    ``first_build(inputs)`` / ``second_build(inputs)`` are factory builders
    as used by :func:`repro.runtime.simulation.validate_protocol`.  The
    composite runs the first protocol, then uses each process's decision
    as its input vertex for the second protocol (factories keyed on input
    vertices make this per-process hand-off possible); the stages run in
    disjoint shared-memory namespaces.
    """
    from ..topology.simplex import Simplex

    def build(inputs):
        first_factories = first_build(inputs)

        def make(pid: int, first_factory):
            def factory(p: int):
                def body():
                    decision = yield from _run_stage(first_factory(p), "s1/")
                    second_factories = second_build(Simplex([decision]))
                    final = yield from _run_stage(second_factories[p](p), "s2/")
                    yield ("decide", final)

                return body()

            return factory

        return {pid: make(pid, f) for pid, f in first_factories.items()}

    return build
