"""Distributed tasks ``(I, O, Δ)``.

A *task* for ``n`` processes (Section 2.3 of the paper) is a triple of an
``(n-1)``-dimensional chromatic input complex ``I``, an output complex
``O`` of the same dimension, and a chromatic carrier map ``Δ : I → 2^O``
specifying, for every input simplex, the legal output simplices with the
same ids.  Solvability of a task in the wait-free read/write model is the
question the whole library answers.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple, Union

from ..topology.carrier import CarrierMap, CarrierMapError
from ..topology.chromatic import ChromaticComplex, colorless_complex, strip_colors
from ..topology.complexes import SimplicialComplex
from ..topology.simplex import Simplex, Vertex


class TaskError(ValueError):
    """Raised when a task triple fails validation."""


class Task:
    """A chromatic task ``(I, O, Δ)``.

    Parameters
    ----------
    input_complex, output_complex:
        Pure chromatic complexes of equal dimension.
    delta:
        Either a ready :class:`CarrierMap` or a mapping from input simplices
        to iterables of output simplices (closures are taken).
    name:
        Optional human-readable name.
    check:
        When true (default), run :meth:`validate`.
    """

    def __init__(
        self,
        input_complex: ChromaticComplex,
        output_complex: ChromaticComplex,
        delta: Union[CarrierMap, Mapping],
        name: Optional[str] = None,
        check: bool = True,
    ):
        self.input_complex = input_complex
        self.output_complex = output_complex
        if isinstance(delta, CarrierMap):
            self.delta = delta
        else:
            self.delta = CarrierMap(input_complex, output_complex, delta, check=False)
        self.name = name
        if check:
            self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check the task triple against the paper's definition.

        Verifies: chromatic complexes, purity, equal dimension, Δ being a
        monotonic chromatic carrier map with rigid (pure, dimension-
        preserving) nonempty images, and Δ's domain/codomain being the
        task's complexes.
        """
        if not isinstance(self.input_complex, SimplicialComplex) or not isinstance(
            self.output_complex, SimplicialComplex
        ):
            raise TaskError("input and output must be simplicial complexes")
        if not self.input_complex.is_chromatic():
            raise TaskError("input complex is not chromatic")
        if not self.output_complex.is_chromatic():
            raise TaskError("output complex is not chromatic")
        if not self.input_complex.is_pure():
            raise TaskError("input complex is not pure")
        if self.input_complex.dim != self.output_complex.dim:
            raise TaskError(
                f"dimension mismatch: input dim {self.input_complex.dim}, "
                f"output dim {self.output_complex.dim}"
            )
        if self.delta.domain != self.input_complex:
            raise TaskError("Δ's domain is not the input complex")
        if self.delta.codomain != self.output_complex:
            raise TaskError("Δ's codomain is not the output complex")
        try:
            self.delta.validate()
        except CarrierMapError as exc:
            raise TaskError(f"Δ is not a carrier map: {exc}") from exc
        if not self.delta.is_strict():
            missing = [s for s, img in self.delta.items() if not img]
            raise TaskError(f"Δ has empty images, e.g. for {missing[0]!r}")
        if not self.delta.is_rigid():
            raise TaskError("Δ is not rigid (some image is impure or of wrong dimension)")
        if not self.delta.is_chromatic():
            raise TaskError("Δ is not chromatic (some image has mismatched colors)")

    # -- structure --------------------------------------------------------------

    @property
    def n_processes(self) -> int:
        """Number of processes: ``dim(I) + 1``."""
        return self.input_complex.dim + 1

    @property
    def colors(self) -> FrozenSet[int]:
        """Process ids appearing in the input complex."""
        return self.input_complex.colors()

    def input_facets(self) -> Tuple[Simplex, ...]:
        """Facets of the input complex (the full-participation inputs)."""
        return self.input_complex.facets

    def outputs_for(self, sigma) -> SimplicialComplex:
        """``Δ(σ)``: the legal outputs for an input simplex."""
        if not isinstance(sigma, Simplex):
            sigma = Simplex(sigma)
        return self.delta(sigma)

    def reachable_outputs(self) -> SimplicialComplex:
        """``∪_σ Δ(σ)``: the part of ``O`` an algorithm could ever decide."""
        return self.delta.image()

    def restrict_to_reachable(self) -> "Task":
        """The same task with ``O`` shrunk to the reachable subcomplex.

        Section 4 assumes all of ``O`` is reachable; unreachable simplices
        can clearly be omitted.
        """
        reachable = self.reachable_outputs()
        out = ChromaticComplex(reachable.facets, name=self.output_complex.name)
        delta = CarrierMap(
            self.input_complex,
            out,
            {s: img for s, img in self.delta.items()},
            check=False,
        )
        return Task(self.input_complex, out, delta, name=self.name, check=False)

    def is_output_reachable(self) -> bool:
        """Whether ``O`` equals the union of the images of Δ."""
        return self.reachable_outputs() == SimplicialComplex(self.output_complex.facets)

    # -- output checking (used by the simulation harness) ----------------------

    def is_legal_output(self, sigma: Simplex, decisions: Mapping[int, Vertex]) -> bool:
        """Whether per-process decisions are legal for input simplex ``σ``.

        ``decisions`` maps participating process ids to decided output
        vertices; the decided vertices must form a simplex of ``Δ(σ)`` and
        each process must decide a vertex of its own color.
        """
        if set(decisions.keys()) != set(sigma.colors()):
            return False
        for pid, v in decisions.items():
            if not isinstance(v, Vertex) or v.color != pid:
                return False
        return Simplex(decisions.values()) in self.delta(sigma)

    # -- colorless projection (Section 5.2) -------------------------------------

    def colorless_variant(self) -> "ColorlessTask":
        """The colorless variant used by the color-agnostic step.

        Inputs and outputs become value sets; Δ maps a value set to every
        output value set obtainable by stripping colors from a legal output
        of *some* input simplex with those values.
        """
        in_c = colorless_complex(self.input_complex)
        out_c = colorless_complex(self.output_complex)
        images: Dict[Simplex, set] = {}
        for sigma, img in self.delta.items():
            key = Simplex(strip_colors(sigma))
            bucket = images.setdefault(key, set())
            for f in img.facets:
                bucket.add(Simplex(strip_colors(f)))
        carrier = CarrierMap(
            in_c,
            out_c,
            {k: SimplicialComplex(v) for k, v in images.items()},
            check=False,
        ).monotonize()
        return ColorlessTask(in_c, out_c, carrier, name=f"colorless({self.name})")

    # -- protocol ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return (
            self.input_complex == other.input_complex
            and self.output_complex == other.output_complex
            and self.delta == other.delta
        )

    def __hash__(self) -> int:
        return hash((self.input_complex, self.output_complex, self.delta))

    def __repr__(self) -> str:
        label = self.name or "Task"
        return (
            f"{label}(n={self.n_processes}, |I|={len(self.input_complex.facets)} facets, "
            f"|O|={len(self.output_complex.facets)} facets)"
        )


class ColorlessTask:
    """A colorless task: complexes of value sets, no process ids.

    Used on the colorless side of the characterization (Section 5.2): once
    the output complex is link-connected, chromatic solvability coincides
    with solvability of this variant.
    """

    def __init__(
        self,
        input_complex: SimplicialComplex,
        output_complex: SimplicialComplex,
        delta: Union[CarrierMap, Mapping],
        name: Optional[str] = None,
    ):
        self.input_complex = input_complex
        self.output_complex = output_complex
        if isinstance(delta, CarrierMap):
            self.delta = delta
        else:
            self.delta = CarrierMap(input_complex, output_complex, delta, check=False)
        self.name = name

    def __repr__(self) -> str:
        label = self.name or "ColorlessTask"
        return (
            f"{label}(|I|={len(self.input_complex.facets)} facets, "
            f"|O|={len(self.output_complex.facets)} facets)"
        )


def delta_from_function(
    input_complex: ChromaticComplex,
    output_complex: ChromaticComplex,
    rule: Callable[[Simplex], Iterable],
) -> CarrierMap:
    """Build Δ by evaluating ``rule`` on every input simplex.

    ``rule(σ)`` returns the facets of ``Δ(σ)`` (iterable of simplices or
    vertex iterables).  This is the main convenience used by the task zoo.
    """
    images = {}
    for s in input_complex.simplices():
        facets = [f if isinstance(f, Simplex) else Simplex(f) for f in rule(s)]
        images[s] = SimplicialComplex(facets)
    return CarrierMap(input_complex, output_complex, images, check=False)


def task_from_function(
    input_complex: ChromaticComplex,
    output_complex: ChromaticComplex,
    rule: Callable[[Simplex], Iterable],
    name: Optional[str] = None,
    check: bool = True,
) -> Task:
    """Shorthand: build a :class:`Task` whose Δ comes from ``rule``."""
    delta = delta_from_function(input_complex, output_complex, rule)
    return Task(input_complex, output_complex, delta, name=name, check=check)
