"""Canonical tasks (Section 3 of the paper).

A task is *canonical* when each output vertex is the image, under Δ, of a
unique input vertex, and more generally when the images of distinct input
simplices only overlap over their shared faces.  Canonical form is obtained
by the *chromatic product* construction: each process outputs its input in
addition to its decision, replacing every legal output simplex ``Y ∈ Δ(X)``
by the paired simplex ``X × Y``.

Theorem 3.1: ``T`` is solvable iff its canonical form ``T*`` is solvable.
The :class:`CanonicalForm` wrapper carries the projection map needed to
convert a protocol for ``T*`` back into one for ``T`` (and vice versa).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..topology.carrier import CarrierMap
from ..topology.chromatic import ChromaticComplex
from ..topology.complexes import SimplicialComplex
from ..topology.maps import SimplicialMap
from ..topology.simplex import Simplex, Vertex
from .task import Task, TaskError


def chromatic_product_simplex(x: Simplex, y: Simplex) -> Simplex:
    """The paired simplex ``X × Y`` of two chromatic simplices with equal ids.

    The vertex of color ``i`` becomes ``(i, (x_i, y_i))``.
    """
    if x.colors() != y.colors():
        raise ValueError(f"cannot pair {x!r} with {y!r}: ids differ")
    verts = []
    for c in x.colors():
        u = x.vertex_of_color(c)
        v = y.vertex_of_color(c)
        verts.append(Vertex(c, (u.value, v.value)))
    return Simplex(verts)


def product_vertex(u: Vertex, v: Vertex) -> Vertex:
    """The product vertex ``(i, (x, y))`` of two same-colored vertices."""
    if u.color != v.color:
        raise ValueError(f"colors differ: {u!r} vs {v!r}")
    return Vertex(u.color, (u.value, v.value))


def split_product_vertex(w: Vertex) -> Tuple[Vertex, Vertex]:
    """Invert :func:`product_vertex`."""
    x_value, y_value = w.value
    return Vertex(w.color, x_value), Vertex(w.color, y_value)


@dataclass(frozen=True)
class CanonicalForm:
    """A canonical task ``T*`` together with its relation to the original.

    Attributes
    ----------
    original:
        The task that was canonicalized.
    task:
        The canonical task ``T* = (I, O*, Δ*)``.
    projection:
        The chromatic simplicial map ``O* → O`` dropping the input
        coordinate; applying it to a protocol's decisions for ``T*`` yields
        decisions for ``T`` (the easy direction of Theorem 3.1).
    """

    original: Task
    task: Task
    projection: SimplicialMap

    def project_vertex(self, w: Vertex) -> Vertex:
        """Map an ``O*`` vertex back to the original output vertex."""
        return self.projection.vertex_image(w)

    def lift_decision(self, input_vertex: Vertex, output_vertex: Vertex) -> Vertex:
        """Map an original decision to the corresponding ``O*`` vertex."""
        return product_vertex(input_vertex, output_vertex)

    def preimage_input_vertex(self, w: Vertex) -> Vertex:
        """The unique input vertex ``x`` with ``w ∈ Δ*(x)`` (Claim 1)."""
        return unique_vertex_preimage(self.task, w)


def vertex_preimages(task: Task, w: Vertex) -> Tuple[Vertex, ...]:
    """All input vertices that can be credited with the output vertex ``w``.

    An input vertex ``x`` is a preimage of ``w`` when some input simplex
    ``τ`` containing ``x`` has ``w ∈ V(Δ(τ))`` and ``x`` is the vertex of
    ``τ`` matching ``w``'s color.  For canonical tasks this set is a
    singleton (Claim 1).
    """
    found = set()
    for tau, img in task.delta.items():
        if w not in set(img.vertices):
            continue
        try:
            found.add(tau.vertex_of_color(w.color))
        except KeyError:
            continue
    return tuple(sorted(found, key=lambda v: repr(v)))


def unique_vertex_preimage(task: Task, w: Vertex) -> Vertex:
    """The unique input vertex whose Δ-image accounts for ``w``.

    Well-defined exactly for canonical tasks (Claim 1 of the paper); raises
    :class:`TaskError` when the preimage is absent or ambiguous.
    """
    found = vertex_preimages(task, w)
    if len(found) != 1:
        raise TaskError(
            f"output vertex {w!r} has {len(found)} vertex preimages; task is not canonical"
        )
    return found[0]


def canonicalize(task: Task) -> CanonicalForm:
    """Compute the canonical form ``T*`` of a task (Section 3).

    ``O*`` is the subcomplex of the chromatic product ``I × O`` induced by
    all ``X × Y`` with ``Y ∈ Δ(X)``; ``Δ*(X) = { X × Y : Y ∈ Δ(X) }``.
    """
    images: Dict[Simplex, SimplicialComplex] = {}
    star_facets: List[Simplex] = []
    for x, img in task.delta.items():
        paired = []
        for y in img.facets:
            if y.colors() != x.colors():
                raise TaskError(
                    f"Δ({x!r}) contains {y!r} with mismatched ids; task is not chromatic"
                )
            paired.append(chromatic_product_simplex(x, y))
        images[x] = SimplicialComplex(paired)
        star_facets.extend(paired)
    output_star = ChromaticComplex(
        star_facets, name=f"{task.output_complex.name or 'O'}*"
    )
    delta_star = CarrierMap(task.input_complex, output_star, images, check=False)
    star = Task(
        task.input_complex,
        output_star,
        delta_star,
        name=f"{task.name or 'T'}*",
        check=False,
    )
    projection = SimplicialMap(
        output_star,
        task.output_complex,
        {w: split_product_vertex(w)[1] for w in output_star.vertices},
        check=False,
    )
    return CanonicalForm(original=task, task=star, projection=projection)


def is_canonical(task: Task) -> bool:
    """Whether a task already satisfies the canonical-form properties.

    Checked conditions:

    1. every reachable output vertex is accounted for by a *unique* input
       vertex (the vertex of matching color in any input simplex whose image
       contains it);
    2. distinct input facets have no common facet in their images ("no facet
       is in ``Δ*(σ1) ∩ Δ*(σ2)``", Section 3).
    """
    for w in task.reachable_outputs().vertices:
        if len(vertex_preimages(task, w)) != 1:
            return False
    facets = task.input_complex.facets
    for i, s1 in enumerate(facets):
        img1 = task.delta(s1)
        for s2 in facets[i + 1 :]:
            shared = {f for f in img1.facets} & {f for f in task.delta(s2).facets}
            if shared:
                return False
    return True


def canonicalize_if_needed(task: Task) -> CanonicalForm:
    """Return a :class:`CanonicalForm`, reusing the task when already canonical.

    When the task is already canonical the wrapper's projection is the
    identity on output vertices, so downstream code can treat both cases
    uniformly.
    """
    if is_canonical(task):
        identity = SimplicialMap(
            task.output_complex,
            task.output_complex,
            {w: w for w in task.output_complex.vertices},
            check=False,
        )
        return CanonicalForm(original=task, task=task, projection=identity)
    return canonicalize(task)
