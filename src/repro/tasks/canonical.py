"""Canonical tasks (Section 3 of the paper).

A task is *canonical* when each output vertex is the image, under Δ, of a
unique input vertex, and more generally when the images of distinct input
simplices only overlap over their shared faces.  Canonical form is obtained
by the *chromatic product* construction: each process outputs its input in
addition to its decision, replacing every legal output simplex ``Y ∈ Δ(X)``
by the paired simplex ``X × Y``.

Theorem 3.1: ``T`` is solvable iff its canonical form ``T*`` is solvable.
The :class:`CanonicalForm` wrapper carries the projection map needed to
convert a protocol for ``T*`` back into one for ``T`` (and vice versa).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..topology.carrier import CarrierMap
from ..topology.chromatic import ChromaticComplex
from ..topology.complexes import SimplicialComplex
from ..topology.maps import SimplicialMap
from ..topology.simplex import Simplex, Vertex
from .task import Task, TaskError


def chromatic_product_simplex(x: Simplex, y: Simplex) -> Simplex:
    """The paired simplex ``X × Y`` of two chromatic simplices with equal ids.

    The vertex of color ``i`` becomes ``(i, (x_i, y_i))``.
    """
    if x.colors() != y.colors():
        raise ValueError(f"cannot pair {x!r} with {y!r}: ids differ")
    verts = []
    for c in x.colors():
        u = x.vertex_of_color(c)
        v = y.vertex_of_color(c)
        verts.append(Vertex(c, (u.value, v.value)))
    return Simplex(verts)


def product_vertex(u: Vertex, v: Vertex) -> Vertex:
    """The product vertex ``(i, (x, y))`` of two same-colored vertices."""
    if u.color != v.color:
        raise ValueError(f"colors differ: {u!r} vs {v!r}")
    return Vertex(u.color, (u.value, v.value))


def split_product_vertex(w: Vertex) -> Tuple[Vertex, Vertex]:
    """Invert :func:`product_vertex`."""
    x_value, y_value = w.value
    return Vertex(w.color, x_value), Vertex(w.color, y_value)


@dataclass(frozen=True)
class CanonicalForm:
    """A canonical task ``T*`` together with its relation to the original.

    Attributes
    ----------
    original:
        The task that was canonicalized.
    task:
        The canonical task ``T* = (I, O*, Δ*)``.
    projection:
        The chromatic simplicial map ``O* → O`` dropping the input
        coordinate; applying it to a protocol's decisions for ``T*`` yields
        decisions for ``T`` (the easy direction of Theorem 3.1).
    """

    original: Task
    task: Task
    projection: SimplicialMap

    def project_vertex(self, w: Vertex) -> Vertex:
        """Map an ``O*`` vertex back to the original output vertex."""
        return self.projection.vertex_image(w)

    def lift_decision(self, input_vertex: Vertex, output_vertex: Vertex) -> Vertex:
        """Map an original decision to the corresponding ``O*`` vertex."""
        return product_vertex(input_vertex, output_vertex)

    def preimage_input_vertex(self, w: Vertex) -> Vertex:
        """The unique input vertex ``x`` with ``w ∈ Δ*(x)`` (Claim 1)."""
        return unique_vertex_preimage(self.task, w)


def vertex_preimages(task: Task, w: Vertex) -> Tuple[Vertex, ...]:
    """All input vertices that can be credited with the output vertex ``w``.

    An input vertex ``x`` is a preimage of ``w`` when some input simplex
    ``τ`` containing ``x`` has ``w ∈ V(Δ(τ))`` and ``x`` is the vertex of
    ``τ`` matching ``w``'s color.  For canonical tasks this set is a
    singleton (Claim 1).
    """
    found = set()
    for tau, img in task.delta.items():
        if w not in set(img.vertices):
            continue
        try:
            found.add(tau.vertex_of_color(w.color))
        except KeyError:
            continue
    return tuple(sorted(found, key=lambda v: repr(v)))


def unique_vertex_preimage(task: Task, w: Vertex) -> Vertex:
    """The unique input vertex whose Δ-image accounts for ``w``.

    Well-defined exactly for canonical tasks (Claim 1 of the paper); raises
    :class:`TaskError` when the preimage is absent or ambiguous.
    """
    found = vertex_preimages(task, w)
    if len(found) != 1:
        raise TaskError(
            f"output vertex {w!r} has {len(found)} vertex preimages; task is not canonical"
        )
    return found[0]


def canonicalize(task: Task) -> CanonicalForm:
    """Compute the canonical form ``T*`` of a task (Section 3).

    ``O*`` is the subcomplex of the chromatic product ``I × O`` induced by
    all ``X × Y`` with ``Y ∈ Δ(X)``; ``Δ*(X) = { X × Y : Y ∈ Δ(X) }``.
    """
    images: Dict[Simplex, SimplicialComplex] = {}
    star_facets: List[Simplex] = []
    for x, img in task.delta.items():
        paired = []
        for y in img.facets:
            if y.colors() != x.colors():
                raise TaskError(
                    f"Δ({x!r}) contains {y!r} with mismatched ids; task is not chromatic"
                )
            paired.append(chromatic_product_simplex(x, y))
        images[x] = SimplicialComplex(paired)
        star_facets.extend(paired)
    output_star = ChromaticComplex(
        star_facets, name=f"{task.output_complex.name or 'O'}*"
    )
    delta_star = CarrierMap(task.input_complex, output_star, images, check=False)
    star = Task(
        task.input_complex,
        output_star,
        delta_star,
        name=f"{task.name or 'T'}*",
        check=False,
    )
    projection = SimplicialMap(
        output_star,
        task.output_complex,
        {w: split_product_vertex(w)[1] for w in output_star.vertices},
        check=False,
    )
    return CanonicalForm(original=task, task=star, projection=projection)


def is_canonical(task: Task) -> bool:
    """Whether a task already satisfies the canonical-form properties.

    Checked conditions:

    1. every reachable output vertex is accounted for by a *unique* input
       vertex (the vertex of matching color in any input simplex whose image
       contains it);
    2. distinct input facets have no common facet in their images ("no facet
       is in ``Δ*(σ1) ∩ Δ*(σ2)``", Section 3).
    """
    for w in task.reachable_outputs().vertices:
        if len(vertex_preimages(task, w)) != 1:
            return False
    facets = task.input_complex.facets
    for i, s1 in enumerate(facets):
        img1 = task.delta(s1)
        for s2 in facets[i + 1 :]:
            shared = {f for f in img1.facets} & {f for f in task.delta(s2).facets}
            if shared:
                return False
    return True


# ---------------------------------------------------------------------------
# Canonical text up to output-value renaming (isomorphism dedup)
# ---------------------------------------------------------------------------
#
# Two generated tasks that differ only by a per-color bijection of output
# values are the same task for every question the census asks (solvability
# is invariant under chromatic isomorphism of the output complex and Δ).
# ``iso_canonical_text`` computes a renaming-invariant canonical description:
# equal texts <=> the tasks are related by such a renaming.  The corpus
# pipeline hashes this text (via ``diskstore.content_hash``) to skip
# isomorphic duplicates before deciding them.

#: renaming assignments explored before falling back to the exact text
ISO_SEARCH_CAP = 20_000


def task_text(task: Task) -> str:
    """Exact canonical text of a task (same content as ``diskstore.task_key``).

    Facets are in canonical sorted order and vertex reprs deterministic, so
    equal tasks produce equal texts in every process.
    """
    parts = [
        "in:" + "\n".join(repr(f) for f in task.input_complex.facets),
        "out:" + "\n".join(repr(f) for f in task.output_complex.facets),
    ]
    for s, image in sorted(task.delta.items(), key=lambda kv: kv[0].sort_key()):
        parts.append(f"{s!r}=>" + ";".join(repr(f) for f in image.facets))
    return "\n".join(parts)


def _facet_tuples(complex_: SimplicialComplex) -> List[Tuple[Tuple[int, Hashable], ...]]:
    """Facets as sorted ``(color, value)`` tuples (renaming-friendly form)."""
    out = []
    for f in complex_.facets:
        out.append(
            tuple(sorted(((v.color, v.value) for v in f.vertices), key=repr))
        )
    return out


def _refined_value_signatures(
    facets: List[Tuple[Tuple[int, Hashable], ...]]
) -> Dict[Tuple[int, Hashable], int]:
    """Renaming-invariant signature per ``(color, value)`` output vertex.

    Weisfeiler–Leman-style refinement over the facet hypergraph: a vertex's
    signature folds in the multiset of its facets' other-vertex signatures
    until the partition stabilizes.  Signatures depend only on structure —
    never on the values themselves — so any per-color value bijection maps
    equal-signature values to equal-signature values.
    """
    vertices = sorted({cv for f in facets for cv in f}, key=repr)
    incident: Dict[Tuple[int, Hashable], List[Tuple[Tuple[int, Hashable], ...]]] = {
        cv: [f for f in facets if cv in f] for cv in vertices
    }
    sig = {cv: 0 for cv in vertices}
    for _ in range(len(vertices)):
        raw = {
            cv: (
                sig[cv],
                tuple(
                    sorted(
                        tuple(sorted((oc, sig[(oc, ov)]) for oc, ov in f if (oc, ov) != cv))
                        for f in incident[cv]
                    )
                ),
            )
            for cv in vertices
        }
        ranks = {key: i for i, key in enumerate(sorted(set(raw.values()), key=repr))}
        new_sig = {cv: ranks[raw[cv]] for cv in vertices}
        if new_sig == sig:
            break
        sig = new_sig
    return sig


def iso_canonical_text(task: Task, cap: int = ISO_SEARCH_CAP) -> str:
    """A canonical description of ``task`` up to per-color output-value renaming.

    Output values of each color are relabeled ``0..k-1``; among all
    signature-respecting relabelings the lexicographically smallest full
    description (input facets, relabeled output facets, relabeled Δ) is
    returned.  Equal texts exactly characterize isomorphic tasks (same
    input complex, outputs related by a per-color value bijection).

    Signature refinement prunes the search to bijections between
    structurally equivalent values; if the residual assignment count still
    exceeds ``cap`` (adversarially symmetric outputs), the *exact* text is
    returned instead — dedup degrades to exact-duplicate detection, never
    to unsound merging.
    """
    out_facets = _facet_tuples(task.output_complex)
    sig = _refined_value_signatures(out_facets)

    # per color: tie groups of values with equal signatures, in signature order
    by_color: Dict[int, Dict[int, List[Hashable]]] = {}
    for (color, value), s in sig.items():
        by_color.setdefault(color, {}).setdefault(s, []).append(value)
    groups: Dict[int, List[List[Hashable]]] = {
        color: [sorted(vals, key=repr) for _, vals in sorted(tiers.items())]
        for color, tiers in sorted(by_color.items())
    }
    n_assignments = 1
    for tiers in groups.values():
        for tier in tiers:
            n_assignments *= math.factorial(len(tier))
    if n_assignments > cap:
        return "exact:" + task_text(task)

    delta_rows = [
        (repr(s), _facet_tuples(image))
        for s, image in sorted(task.delta.items(), key=lambda kv: kv[0].sort_key())
    ]
    input_text = ";".join(repr(f) for f in task.input_complex.facets)

    def render(mapping: Dict[Tuple[int, Hashable], int]) -> str:
        def relabel(facets: List[Tuple[Tuple[int, Hashable], ...]]) -> str:
            rows = sorted(
                tuple(sorted((c, mapping[(c, v)]) for c, v in f)) for f in facets
            )
            return ";".join(repr(r) for r in rows)

        body = [f"in:{input_text}", "out:" + relabel(out_facets)]
        body.extend(f"{key}=>" + relabel(img) for key, img in delta_rows)
        return "\n".join(body)

    best: Optional[str] = None
    per_color_orders = [
        [
            list(itertools.chain.from_iterable(combo))
            for combo in itertools.product(
                *(itertools.permutations(tier) for tier in tiers)
            )
        ]
        for _, tiers in sorted(groups.items())
    ]
    colors = sorted(groups)
    for orders in itertools.product(*per_color_orders):
        mapping = {
            (color, value): i
            for color, order in zip(colors, orders)
            for i, value in enumerate(order)
        }
        text = render(mapping)
        if best is None or text < best:
            best = text
    return "iso:" + (best if best is not None else f"in:{input_text}\nout:")


def canonicalize_if_needed(task: Task) -> CanonicalForm:
    """Return a :class:`CanonicalForm`, reusing the task when already canonical.

    When the task is already canonical the wrapper's projection is the
    identity on output vertices, so downstream code can treat both cases
    uniformly.
    """
    if is_canonical(task):
        identity = SimplicialMap(
            task.output_complex,
            task.output_complex,
            {w: w for w in task.output_complex.vertices},
            check=False,
        )
        return CanonicalForm(original=task, task=task, projection=identity)
    return canonicalize(task)
