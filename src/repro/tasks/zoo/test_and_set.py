"""The test-and-set (leader election) task.

Every participating process outputs 0 ("won") or 1 ("lost"); exactly one
participant wins, and a solo participant must win.  One-shot test-and-set
has consensus number 2, so it is wait-free unsolvable from read/write
registers for two or more processes — here the characterization sees it
immediately: for any two participants the legal outputs form two disjoint
edges (i wins / j wins), so the solo outputs (both "win") are separated in
``Δ(edge)`` and Corollary 5.5 fires without any splitting.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ...topology.chromatic import ChromaticComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task, task_from_function
from .builders import single_facet_input

WIN, LOSE = 0, 1


def test_and_set_task(n: int = 3, name: str = None) -> Task:
    """Build the one-shot test-and-set task for ``n`` processes."""
    if n < 2:
        raise ValueError("test-and-set needs at least two processes")
    inputs = single_facet_input(n, values=tuple(f"x{i}" for i in range(n)),
                                name="I_tas")
    out_facets = []
    for winner in range(n):
        out_facets.append(
            Simplex(
                Vertex(i, WIN if i == winner else LOSE) for i in range(n)
            )
        )
    outputs = ChromaticComplex(out_facets, name="O_tas")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        for winner in ids:
            yield Simplex(
                Vertex(i, WIN if i == winner else LOSE) for i in ids
            )

    return task_from_function(inputs, outputs, rule, name=name or f"test-and-set(n={n})")
