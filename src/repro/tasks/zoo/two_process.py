"""Two-process tasks, for Proposition 5.4.

For two processes a task is solvable iff there is a continuous map
``|I| → |O|`` carried by Δ — no articulation-point machinery is needed
(a disconnected link in dimension 1 means a disconnected complex).  These
tasks exercise that baseline: the *path task* (an approximate-agreement
style task, solvable) and two-process consensus (unsolvable).
"""

from __future__ import annotations

from typing import Dict

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task
from .builders import single_facet_input


def path_task(length: int = 3, name: str = None) -> Task:
    """Two processes must decide the two endpoints of one edge of a path.

    The output complex is a path of ``length`` edges with alternating
    colors, whose endpoints are the solo decisions.  Solvable for any
    ``length`` (this is ε-agreement in disguise), and a minimal example of
    a task that needs more than zero communication rounds.
    """
    if length < 1 or length % 2 == 0:
        raise ValueError("length must be odd and positive so endpoints alternate")
    inputs = single_facet_input(2, values=("u", "v"), name="I_path")
    verts = [Vertex(k % 2, k) for k in range(length + 1)]
    edges = [Simplex([a, b]) for a, b in zip(verts, verts[1:])]
    outputs = ChromaticComplex(edges, name="O_path")

    x0 = Simplex([Vertex(0, "u")])
    x1 = Simplex([Vertex(1, "v")])
    facet = Simplex([Vertex(0, "u"), Vertex(1, "v")])
    images: Dict[Simplex, SimplicialComplex] = {
        x0: SimplicialComplex([Simplex([verts[0]])]),
        x1: SimplicialComplex([Simplex([verts[-1]])]),
        facet: SimplicialComplex(edges),
    }
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name or f"path(length={length})")


def two_process_fork_task(name: str = "fork") -> Task:
    """A two-process task whose output complex is disconnected per edge image.

    Process solo decisions sit in different components of ``Δ(edge)``; the
    task is unsolvable by Proposition 5.4 (no continuous map can connect
    the components).  This is two-process consensus with the values renamed
    to make the structure explicit.
    """
    inputs = single_facet_input(2, values=("u", "v"), name="I_fork")
    left = Simplex([Vertex(0, "L"), Vertex(1, "L")])
    right = Simplex([Vertex(0, "R"), Vertex(1, "R")])
    outputs = ChromaticComplex([left, right], name="O_fork")

    x0 = Simplex([Vertex(0, "u")])
    x1 = Simplex([Vertex(1, "v")])
    facet = Simplex([Vertex(0, "u"), Vertex(1, "v")])
    images: Dict[Simplex, SimplicialComplex] = {
        x0: SimplicialComplex([Simplex([Vertex(0, "L")])]),
        x1: SimplicialComplex([Simplex([Vertex(1, "R")])]),
        facet: SimplicialComplex([left, right]),
    }
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name)
