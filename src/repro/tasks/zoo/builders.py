"""Shared constructors for the task zoo.

These helpers build the input complexes that recur across the zoo: the
*full* input complex where every process may start with any value from a
domain, and the *inputless* single-facet complex where process ``i`` starts
with a fixed value.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Sequence, Tuple

from ...topology.chromatic import ChromaticComplex
from ...topology.simplex import Simplex, Vertex


def full_input_complex(n: int, values: Iterable[Hashable], name: str = "I") -> ChromaticComplex:
    """All assignments of values to ``n`` processes.

    Facets are ``{(0, v_0), …, (n-1, v_{n-1})}`` over every choice of
    ``v_i`` from ``values``; the complex is the chromatic "pseudo-sphere"
    over the value set.
    """
    vals = tuple(values)
    if not vals:
        raise ValueError("need at least one input value")
    facets = []
    for combo in itertools.product(vals, repeat=n):
        facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    return ChromaticComplex(facets, name=name)


def single_facet_input(
    n: int, values: Sequence[Hashable] = None, name: str = "I"
) -> ChromaticComplex:
    """A single input facet (the *inputless* setting of the paper).

    Process ``i`` starts with ``values[i]``; by default its own id.
    """
    if values is None:
        values = tuple(range(n))
    if len(values) != n:
        raise ValueError(f"need exactly {n} values, got {len(values)}")
    return ChromaticComplex(
        [Simplex(Vertex(i, v) for i, v in enumerate(values))], name=name
    )


def chromatic_facets_over_values(
    n: int, value_sets: Iterable[Tuple[Hashable, ...]]
) -> Tuple[Simplex, ...]:
    """Chromatic facets ``{(i, v_i)}`` for each value tuple in ``value_sets``."""
    out = []
    for combo in value_sets:
        if len(combo) != n:
            raise ValueError(f"value tuple {combo!r} has wrong arity")
        out.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    return tuple(out)


def simplex_values(s: Simplex) -> frozenset:
    """The set of values carried by a chromatic simplex."""
    return frozenset(v.value for v in s.vertices)


def participants(s: Simplex) -> frozenset:
    """The ids of a chromatic simplex (alias for readability in Δ rules)."""
    return s.colors()
