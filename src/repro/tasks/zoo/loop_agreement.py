"""Loop agreement tasks [HR97, GK98].

A loop agreement task is specified by a 2-dimensional (colorless) complex
``K``, three distinguished vertices ``v0, v1, v2`` and three simple paths
``p01, p12, p20`` joining them in ``K``.  Processes start on distinguished
vertices; with one distinct input they decide that vertex, with two they
decide a simplex on the connecting path, with three they may decide any
simplex of ``K``.

Loop agreement is the engine of the undecidability results discussed in
the paper's related-work section: solvability of a loop agreement task is
equivalent to contractibility of its loop.  The chromatic encoding here
assigns each process a vertex of ``K`` as its value; an output triple is
legal when the underlying value set is a simplex of ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task
from .builders import full_input_complex


@dataclass(frozen=True)
class Loop:
    """A triangle loop in a colorless complex: three corners and three paths.

    Each path is a vertex sequence; ``paths[k]`` joins ``corners[k]`` to
    ``corners[(k+1) % 3]``.
    """

    complex: SimplicialComplex
    corners: Tuple[Hashable, Hashable, Hashable]
    paths: Tuple[Tuple[Hashable, ...], Tuple[Hashable, ...], Tuple[Hashable, ...]]

    def __post_init__(self) -> None:
        for k, path in enumerate(self.paths):
            if path[0] != self.corners[k] or path[-1] != self.corners[(k + 1) % 3]:
                raise ValueError(f"path {k} does not join its corners")
            for a, b in zip(path, path[1:]):
                if Simplex([a, b]) not in self.complex:
                    raise ValueError(f"path {k} uses non-edge {(a, b)!r}")

    def path_between(self, i: int, j: int) -> Tuple[Hashable, ...]:
        """The vertex sequence of the path joining corners ``i`` and ``j``."""
        key = (min(i, j), max(i, j))
        index = {(0, 1): 0, (1, 2): 1, (0, 2): 2}[key]
        return self.paths[index]

    def full_cycle(self) -> Tuple[Hashable, ...]:
        """The loop as a closed vertex sequence."""
        out: List[Hashable] = list(self.paths[0])
        out.extend(self.paths[1][1:])
        out.extend(self.paths[2][1:])
        return tuple(out)


def _chromatic_facets_over(k: SimplicialComplex, ids: Sequence[int]) -> List[Simplex]:
    """All chromatic simplices on ``ids`` whose value set is a simplex of ``k``."""
    import itertools

    out = []
    for combo in itertools.product(k.vertices, repeat=len(ids)):
        if Simplex(set(combo)) in k:
            out.append(Simplex(Vertex(i, v) for i, v in zip(ids, combo)))
    return out


def _path_edge_facets(path: Sequence[Hashable], ids: Sequence[int]) -> List[Simplex]:
    """Chromatic edges over two ids whose values lie on a common path edge."""
    out = []
    i, j = ids
    for a, b in zip(path, path[1:]):
        for va, vb in ((a, a), (a, b), (b, a), (b, b)):
            out.append(Simplex([Vertex(i, va), Vertex(j, vb)]))
    return out


def loop_agreement_task(loop: Loop, name: str = None) -> Task:
    """Build the (chromatic encoding of the) loop agreement task of ``loop``."""
    k = loop.complex
    inputs = full_input_complex(3, (0, 1, 2), name="I_loop")
    out_facets = _chromatic_facets_over(k, (0, 1, 2))
    outputs = ChromaticComplex(out_facets, name="O_loop")

    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in inputs.simplices():
        ids = sorted(tau.colors())
        starts = sorted({v.value for v in tau.vertices})
        if len(starts) == 1:
            corner = loop.corners[starts[0]]
            images[tau] = SimplicialComplex(
                [Simplex(Vertex(i, corner) for i in ids)]
            )
        elif len(starts) == 2:
            path = loop.path_between(*starts)
            if len(ids) == 2:
                images[tau] = SimplicialComplex(_path_edge_facets(path, ids))
            else:
                facets = []
                for a, b in zip(path, path[1:]):
                    sub = SimplicialComplex([Simplex([a, b])])
                    facets.extend(_chromatic_facets_over(sub, ids))
                images[tau] = SimplicialComplex(facets)
        else:
            images[tau] = SimplicialComplex(_chromatic_facets_over(k, ids))
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name or "loop-agreement").restrict_to_reachable()


def triangle_loop(filled: bool) -> Loop:
    """The simplest loop: a triangle boundary, optionally filled.

    The filled loop is contractible (task solvable); the hollow one is not
    (task unsolvable) — the minimal pair exercising the contractibility
    obstruction.
    """
    if filled:
        k = SimplicialComplex([("u", "v", "w")], name="disk")
    else:
        k = SimplicialComplex([("u", "v"), ("v", "w"), ("w", "u")], name="circle")
    return Loop(k, ("u", "v", "w"), (("u", "v"), ("v", "w"), ("w", "u")))


def projective_plane_loop() -> Loop:
    """A loop generating the 2-torsion of the projective plane.

    The complex is the minimal 6-vertex triangulation of RP²; the loop
    ``1–2–4–1`` generates ``H1(RP²) = Z/2``: it does not bound (so the
    loop agreement task is unsolvable) although *twice* the loop does —
    the canonical example where integer (not mod-2 rank) homology is
    needed, exercising the Smith-normal-form machinery end to end.
    """
    facets = [
        (1, 2, 3), (1, 3, 4), (1, 4, 5), (1, 5, 6), (1, 6, 2),
        (2, 3, 5), (3, 4, 6), (4, 5, 2), (5, 6, 3), (6, 2, 4),
    ]
    k = SimplicialComplex(facets, name="RP2")
    return Loop(k, (1, 2, 4), ((1, 2), (2, 4), (4, 1)))


def annulus_loop() -> Loop:
    """A loop winding once around an annulus — not contractible.

    The annulus is the triangulated product of a hexagon with an interval;
    the distinguished loop is the inner boundary hexagon.
    """
    inner = [f"i{t}" for t in range(6)]
    outer = [f"o{t}" for t in range(6)]
    facets = []
    for t in range(6):
        t2 = (t + 1) % 6
        facets.append((inner[t], inner[t2], outer[t]))
        facets.append((inner[t2], outer[t], outer[t2]))
    k = SimplicialComplex(facets, name="annulus")
    return Loop(
        k,
        (inner[0], inner[2], inner[4]),
        (
            (inner[0], inner[1], inner[2]),
            (inner[2], inner[3], inner[4]),
            (inner[4], inner[5], inner[0]),
        ),
    )
