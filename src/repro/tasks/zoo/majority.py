"""The majority consensus task (Figure 1 of the paper).

Three processes start with binary inputs and each decides a value that
appeared as an input of a participant.  When all three participate, either
all decide the same value or strictly more processes decide 0 than 1.

The paper uses this task to show the failure of the naive continuous-map
characterization for chromatic tasks: majority consensus satisfies the
colorless-ACT condition yet is wait-free unsolvable.  After splitting the
local articulation points, the deformed output complex ``O'`` falls into
two connected components and Corollary 5.5 applies.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ...topology.chromatic import ChromaticComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task, task_from_function
from .builders import full_input_complex, simplex_values

_N = 3


def _allowed_triple(decisions: tuple) -> bool:
    """All equal, or strictly more zeros than ones."""
    if len(set(decisions)) == 1:
        return True
    zeros = sum(1 for d in decisions if d == 0)
    ones = sum(1 for d in decisions if d == 1)
    return zeros > ones


def majority_consensus_task(name: str = "majority-consensus") -> Task:
    """Build the majority consensus task of Figure 1."""
    inputs = full_input_complex(_N, (0, 1), name="I_majority")
    out_facets = []
    for combo in itertools.product((0, 1), repeat=_N):
        if _allowed_triple(combo):
            out_facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    outputs = ChromaticComplex(out_facets, name="O_majority")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        vals = sorted(simplex_values(sigma))
        for combo in itertools.product(vals, repeat=len(ids)):
            if len(ids) == _N and not _allowed_triple(combo):
                continue
            candidate = Simplex(Vertex(i, v) for i, v in zip(ids, combo))
            # fewer than three participants: any valid-value combination
            # whose simplex exists in O (i.e. extends to an allowed triple)
            if candidate in outputs:
                yield candidate

    return task_from_function(inputs, outputs, rule, name=name)
