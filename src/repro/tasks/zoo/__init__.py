"""The task zoo: every task discussed in the paper, plus baselines.

* Figure 1 — :func:`majority_consensus_task`
* Figure 2 — :func:`hourglass_task`
* Figure 3 — :func:`figure3_task`
* Figure 8 — :func:`pinwheel_task`
* baselines — consensus, k-set agreement, loop agreement, identity,
  constant, two-process tasks, seeded random tasks
"""

from .approximate import approximate_agreement_task
from .builders import (
    chromatic_facets_over_values,
    full_input_complex,
    participants,
    simplex_values,
    single_facet_input,
)
from .consensus import (
    consensus_task,
    inputless_set_agreement_task,
    set_agreement_task,
)
from .hourglass import (
    HOURGLASS_TRIANGLES,
    hourglass_articulation_vertex,
    hourglass_task,
)
from .loop_agreement import (
    Loop,
    annulus_loop,
    loop_agreement_task,
    projective_plane_loop,
    triangle_loop,
)
from .majority import majority_consensus_task
from .pinwheel import pinwheel_task, pinwheel_triangles
from .random_tasks import (
    random_multi_facet_task,
    random_output_complex,
    random_single_input_task,
    random_sparse_task,
)
from .simple import constant_task, figure3_task, identity_task
from .synthetic import fan_task
from .test_and_set import test_and_set_task
from .two_process import path_task, two_process_fork_task


def standard_zoo():
    """Name → zero-argument constructor for every addressable zoo task.

    This is the single registry behind the ``python -m repro`` CLI and the
    conformance campaign engine: workers in a multiprocessing pool receive
    task *names* and reconstruct the tasks locally through this function,
    so no task object ever crosses a process boundary.
    """
    return {
        "identity": lambda: identity_task(3),
        "constant": lambda: constant_task(3),
        "consensus": lambda: consensus_task(3),
        "consensus-2p": lambda: consensus_task(2),
        "2-set-agreement": lambda: inputless_set_agreement_task(3, 2),
        "3-set-agreement": lambda: set_agreement_task(3, 3),
        "majority": majority_consensus_task,
        "hourglass": hourglass_task,
        "pinwheel": pinwheel_task,
        "figure3": figure3_task,
        "loop-filled": lambda: loop_agreement_task(triangle_loop(True)),
        "loop-hollow": lambda: loop_agreement_task(triangle_loop(False)),
        "loop-projective": lambda: loop_agreement_task(projective_plane_loop()),
        "approx-agreement": lambda: approximate_agreement_task(2),
        "path": lambda: path_task(3),
        "fork": two_process_fork_task,
        "test-and-set": lambda: test_and_set_task(3),
        "fan": lambda: fan_task(2, 2),
        "twisted-fan": lambda: fan_task(2, 2, twisted=True),
    }


__all__ = [
    "HOURGLASS_TRIANGLES",
    "approximate_agreement_task",
    "Loop",
    "annulus_loop",
    "chromatic_facets_over_values",
    "consensus_task",
    "constant_task",
    "fan_task",
    "figure3_task",
    "full_input_complex",
    "hourglass_articulation_vertex",
    "hourglass_task",
    "identity_task",
    "inputless_set_agreement_task",
    "loop_agreement_task",
    "majority_consensus_task",
    "participants",
    "path_task",
    "pinwheel_task",
    "projective_plane_loop",
    "pinwheel_triangles",
    "random_multi_facet_task",
    "random_output_complex",
    "random_single_input_task",
    "random_sparse_task",
    "set_agreement_task",
    "simplex_values",
    "standard_zoo",
    "test_and_set_task",
    "single_facet_input",
    "triangle_loop",
    "two_process_fork_task",
]
