"""The hourglass task (Figure 2 of the paper, after [HKR13, §11.1]).

A single input configuration for three processes ``P0`` (black), ``P1``
(white), ``P2`` (gray).  Solo runs decide 0.  ``P0`` running with ``P1`` or
with ``P2`` may additionally decide value 1 — and crucially ``P0``'s
value-1 vertex is *shared* between the two sides ("pinching at the
waist").  ``P1`` and ``P2`` running together may additionally decide value
2.  With all three running, any output triangle is allowed.

The output complex is two 2-dimensional lobes joined at ``P0``'s value-1
vertex ``a1``: the realization is contractible, so a continuous map
``|I| → |O|`` respecting Δ exists and the colorless-ACT condition holds —
yet the task is wait-free unsolvable.  ``a1`` is a local articulation
point; splitting it disconnects ``O``, and Corollary 5.5 (a consensus-style
argument) yields the impossibility.

The paper's figure does not enumerate the lobes' triangulation; this module
uses the minimal triangulation consistent with every property the paper
states (single LAP at ``a1``, two link components — one containing ``P1``'s
value-1 vertex — contractible realization, split complex with two connected
components).  See EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task
from ...topology.carrier import CarrierMap
from .builders import single_facet_input

# Output vertices: process p's vertex with decision value v.
A0, A1 = Vertex(0, 0), Vertex(0, 1)
B0, B1, B2 = Vertex(1, 0), Vertex(1, 1), Vertex(1, 2)
C0, C1, C2 = Vertex(2, 0), Vertex(2, 1), Vertex(2, 2)

#: The five output triangles: lobe A = {A0B1C1, A1B1C1},
#: lobe B = {A1B0C2, A1B2C2, A1B2C0}; the lobes meet exactly at A1.
HOURGLASS_TRIANGLES = (
    Simplex([A0, B1, C1]),
    Simplex([A1, B1, C1]),
    Simplex([A1, B0, C2]),
    Simplex([A1, B2, C2]),
    Simplex([A1, B2, C0]),
)

#: The two-process output paths (the subdivided input edges, with P0's
#: midpoints identified into A1).
_EDGE_PATHS = {
    frozenset((0, 1)): (Simplex([A0, B1]), Simplex([B1, A1]), Simplex([A1, B0])),
    frozenset((0, 2)): (Simplex([A0, C1]), Simplex([C1, A1]), Simplex([A1, C0])),
    frozenset((1, 2)): (Simplex([B0, C2]), Simplex([C2, B2]), Simplex([B2, C0])),
}

_SOLO = {0: A0, 1: B0, 2: C0}


def hourglass_task(name: str = "hourglass") -> Task:
    """Build the hourglass task of Figure 2."""
    inputs = single_facet_input(3, values=("x0", "x1", "x2"), name="I_hourglass")
    outputs = ChromaticComplex(HOURGLASS_TRIANGLES, name="O_hourglass")

    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in inputs.simplices():
        ids = tau.colors()
        if len(ids) == 1:
            (pid,) = ids
            images[tau] = SimplicialComplex([Simplex([_SOLO[pid]])])
        elif len(ids) == 2:
            images[tau] = SimplicialComplex(_EDGE_PATHS[ids])
        else:
            images[tau] = SimplicialComplex(HOURGLASS_TRIANGLES)
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name)


def hourglass_articulation_vertex() -> Vertex:
    """``P0``'s value-1 vertex — the waist of the hourglass."""
    return A1
