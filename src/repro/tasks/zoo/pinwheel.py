"""The pinwheel task (Figure 8 of the paper).

The pinwheel is obtained from *inputless* 2-set agreement for three
processes (process ``i`` starts with value ``i``) by removing output
triangles while leaving every output edge (two-process behaviour) intact.
It is a subtask of 2-set agreement — hence wait-free unsolvable — but the
paper derives the impossibility from its articulation-point structure:
splitting the LAPs leaves an output complex ``O'`` with **three** connected
components, and no component contains copies of all three solo-decision
vertices, so Corollary 5.6's cycle argument applies.

The paper's figure does not list the removed triangles.  The set used here
was found by exhaustive search over the subsets of the 21 candidate
triangles that are symmetric under the rotation ``(i, v) → (i+1, v+1)``
(mod 3) and retain all 27 edges, requiring exactly the properties stated
in Section 6.2:

* each solo-decision vertex ``(i, i)`` is a LAP with exactly two link
  components (two copies after splitting);
* the split complex has exactly three connected components;
* every component contains copies of exactly two of the three
  solo-decision vertices ("neither of the copies of output vertex 3 is in
  the yellow component");
* the four-edge output cycle of each input edge is broken (not removed) by
  the splitting.

Two chiral solutions exist; this module uses the one keeping, besides the
three monochromatic triangles, the orbits of ``(0,0,1)``, ``(0,1,0)`` and
``(1,0,0)``.  See EXPERIMENTS.md for the reconstruction notes, including
the Corollary 5.5 vs 5.6 nuance introduced by monotonization.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task
from .builders import single_facet_input

#: Decision-value triples ``(v_0, v_1, v_2)`` of the kept output triangles.
PINWHEEL_VALUE_TRIPLES: Tuple[Tuple[int, int, int], ...] = (
    # monochromatic triangles
    (0, 0, 0),
    (1, 1, 1),
    (2, 2, 2),
    # orbit of (0, 0, 1) under (i, v) -> (i+1, v+1)
    (0, 0, 1),
    (2, 0, 2),
    (2, 1, 1),
    # orbit of (0, 1, 0)
    (0, 1, 0),
    (0, 2, 2),
    (1, 1, 2),
    # orbit of (1, 0, 0)
    (1, 0, 0),
    (1, 2, 1),
    (2, 2, 0),
)


def pinwheel_triangles() -> Tuple[Simplex, ...]:
    """The twelve output triangles of the pinwheel task."""
    return tuple(
        Simplex(Vertex(i, v) for i, v in enumerate(triple))
        for triple in PINWHEEL_VALUE_TRIPLES
    )


def pinwheel_task(name: str = "pinwheel") -> Task:
    """Build the pinwheel task of Figure 8.

    Solo runs decide the own input; two-process runs may decide any
    combination of the two inputs (the intact 4-cycle); full runs decide
    any kept triangle.
    """
    triangles = pinwheel_triangles()
    outputs = ChromaticComplex(triangles, name="O_pinwheel")
    inputs = single_facet_input(3, name="I_pinwheel")

    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in inputs.simplices():
        ids = sorted(tau.colors())
        if len(ids) == 1:
            (i,) = ids
            images[tau] = SimplicialComplex([Simplex([Vertex(i, i)])])
        elif len(ids) == 2:
            i, j = ids
            images[tau] = SimplicialComplex(
                Simplex([Vertex(i, a), Vertex(j, b)]) for a in (i, j) for b in (i, j)
            )
        else:
            images[tau] = SimplicialComplex(triangles)
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name)
