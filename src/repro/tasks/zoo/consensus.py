"""Consensus and k-set agreement tasks.

Consensus [FLP85] requires all participating processes to decide a common
input value; ``k``-set agreement [Chaudhuri93] relaxes this to at most
``k`` distinct decided values.  Both are the canonical *colorless* tasks;
they are included as baselines for the decision procedure (consensus and
2-set agreement are wait-free unsolvable for three processes, 3-set
agreement is trivially solvable) and as building blocks for the pinwheel
task of Figure 8.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Sequence

from ...topology.simplex import Simplex, Vertex
from ..task import Task, task_from_function
from .builders import full_input_complex, simplex_values
from ...topology.chromatic import ChromaticComplex


def consensus_task(n: int, values: Sequence[Hashable] = (0, 1), name: str = None) -> Task:
    """Binary (or multi-valued) consensus for ``n`` processes.

    Validity: the decided value is the input of some participating
    process.  Agreement: all participants decide the same value.
    """
    values = tuple(values)
    inputs = full_input_complex(n, values, name="I_consensus")
    out_facets = [
        Simplex(Vertex(i, v) for i in range(n)) for v in values
    ]
    outputs = ChromaticComplex(out_facets, name="O_consensus")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        for v in sorted(simplex_values(sigma), key=repr):
            yield Simplex(Vertex(i, v) for i in ids)

    return task_from_function(
        inputs, outputs, rule, name=name or f"consensus(n={n})"
    )


def set_agreement_task(
    n: int, k: int, values: Sequence[Hashable] = None, name: str = None
) -> Task:
    """``k``-set agreement for ``n`` processes.

    Validity: every decided value is some participant's input.  Agreement:
    at most ``k`` distinct values are decided.  With ``values`` omitted the
    inputs range over ``0 … n-1``.
    """
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    values = tuple(values) if values is not None else tuple(range(n))
    inputs = full_input_complex(n, values, name=f"I_{k}set")

    out_facets = []
    for combo in itertools.product(values, repeat=n):
        if len(set(combo)) <= k:
            out_facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    outputs = ChromaticComplex(out_facets, name=f"O_{k}set")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        vals = sorted(simplex_values(sigma), key=repr)
        for combo in itertools.product(vals, repeat=len(ids)):
            if len(set(combo)) <= k:
                yield Simplex(Vertex(i, v) for i, v in zip(ids, combo))

    return task_from_function(
        inputs, outputs, rule, name=name or f"{k}-set-agreement(n={n})"
    )


def inputless_set_agreement_task(n: int, k: int, name: str = None) -> Task:
    """``k``-set agreement restricted to the single input where process ``i``
    starts with value ``i`` (the *inputless* form used by Figure 8)."""
    from .builders import single_facet_input

    inputs = single_facet_input(n, name=f"I_{k}set_inputless")
    values = tuple(range(n))
    out_facets = []
    for combo in itertools.product(values, repeat=n):
        if len(set(combo)) <= k:
            out_facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    outputs = ChromaticComplex(out_facets, name=f"O_{k}set")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        vals = sorted(simplex_values(sigma), key=repr)
        for combo in itertools.product(vals, repeat=len(ids)):
            if len(set(combo)) <= k:
                yield Simplex(Vertex(i, v) for i, v in zip(ids, combo))

    return task_from_function(
        inputs, outputs, rule, name=name or f"inputless-{k}-set-agreement(n={n})"
    ).restrict_to_reachable()
