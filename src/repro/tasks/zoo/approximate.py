"""Approximate agreement with resolution ``1/k``.

Processes start with binary inputs (0 or 1) and must decide multiples of
``1/k`` (represented as integers ``0 … k``) that are (a) within the range
of the participants' inputs and (b) pairwise at most ``1/k`` apart.

Approximate agreement is the classical *solvable-but-not-in-zero-rounds*
task: unlike consensus, the output complex is connected, but reaching
resolution ``1/k`` requires more and more immediate-snapshot rounds.  In
this library it exercises the iterative-deepening side of the decision
procedure — the witness subdivision depth grows with ``k`` — and provides
the parameter sweep for the decision benchmark.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from ...topology.chromatic import ChromaticComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task, task_from_function
from .builders import full_input_complex, simplex_values

_N = 3


def approximate_agreement_task(k: int = 2, name: str = None) -> Task:
    """Build three-process approximate agreement with resolution ``1/k``.

    Output value ``j`` stands for the rational ``j/k``; legal simplices
    have values within the input range and spread at most 1 (i.e. ``1/k``).
    """
    if k < 1:
        raise ValueError("resolution denominator k must be positive")
    inputs = full_input_complex(_N, (0, 1), name="I_approx")
    out_facets = []
    for combo in itertools.product(range(k + 1), repeat=_N):
        if max(combo) - min(combo) <= 1:
            out_facets.append(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    outputs = ChromaticComplex(out_facets, name=f"O_approx_{k}")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        ids = sorted(sigma.colors())
        lo = k * min(simplex_values(sigma))
        hi = k * max(simplex_values(sigma))
        for combo in itertools.product(range(lo, hi + 1), repeat=len(ids)):
            if combo and max(combo) - min(combo) <= 1:
                yield Simplex(Vertex(i, v) for i, v in zip(ids, combo))

    return task_from_function(
        inputs, outputs, rule, name=name or f"approx-agreement(1/{k})"
    ).restrict_to_reachable()
