"""Seeded random task generation.

Random tasks drive the solvability-preservation experiment (Figure 6 /
Lemma 4.2: splitting must not change the verdict) and the property-based
tests.  Generation strategy: sample a random pure 2-dimensional chromatic
output complex over small value ranges, pick random facet images for each
input facet, then close downward (``Δ(τ)`` = faces of the chosen facets
restricted to ``τ``'s ids, intersected over all containing facets to force
monotonicity), retrying until the result validates as a task.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task, TaskError
from .builders import single_facet_input


def _faces_with_ids(complex_: SimplicialComplex, ids: frozenset) -> SimplicialComplex:
    """The subcomplex of simplices whose color set is exactly ``ids``, closed."""
    picked = [s for s in complex_.simplices() if s.colors() == ids]
    return SimplicialComplex(picked)


#: facets requested by default when the value range allows it
DEFAULT_N_FACETS = 6


def random_output_complex(
    rng: random.Random, n_values: int = 3, n_facets: Optional[int] = None
) -> ChromaticComplex:
    """A random pure 2-dimensional chromatic complex.

    Facets are triples ``{(0,a),(1,b),(2,c)}`` with values sampled from
    ``range(n_values)``; duplicates collapse, so the result may have fewer
    facets than requested.  Only ``n_values ** 3`` distinct facets exist,
    so requests beyond that bound are rejected (the sampling loop could
    never satisfy them); the default request is capped to the bound.
    """
    if n_values < 1:
        raise ValueError(f"n_values must be at least 1, got {n_values}")
    distinct = n_values**3
    if n_facets is None:
        n_facets = min(DEFAULT_N_FACETS, distinct)
    if n_facets < 1:
        raise ValueError(f"n_facets must be at least 1, got {n_facets}")
    if n_facets > distinct:
        raise ValueError(
            f"n_facets={n_facets} is unsatisfiable: only {distinct} distinct "
            f"facets exist over n_values={n_values} (the sampling loop would "
            "never terminate)"
        )
    facets = set()
    while len(facets) < n_facets:
        combo = tuple(rng.randrange(n_values) for _ in range(3))
        facets.add(Simplex(Vertex(i, v) for i, v in enumerate(combo)))
    return ChromaticComplex(facets, name="O_random")


def _sorted_facets(complex_: SimplicialComplex) -> List[Simplex]:
    """Facets in canonical sort order, as a list ``rng.sample`` accepts.

    Every ``rng.sample``/``rng.choice``/``rng.shuffle`` over facets must
    draw from this order: sampling a set-derived sequence would make the
    generated task depend on hash/iteration order rather than only on the
    seed (and so differ across processes and ``PYTHONHASHSEED`` values).
    """
    return sorted(complex_.facets, key=Simplex.sort_key)


def random_single_input_task(
    seed: int, n_values: int = 3, n_facets: Optional[int] = None, image_size: int = 3
) -> Task:
    """A random three-process task with a single input facet.

    ``image_size`` bounds how many output facets the full-participation
    image contains.  Lower-dimensional images are the induced faces, which
    makes Δ monotone and rigid by construction.
    """
    rng = random.Random(seed)
    inputs = single_facet_input(3, values=("x0", "x1", "x2"), name="I_random")
    for _ in range(200):
        outputs = random_output_complex(rng, n_values=n_values, n_facets=n_facets)
        pool = _sorted_facets(outputs)
        chosen = rng.sample(pool, min(image_size, len(pool)))
        image = SimplicialComplex(chosen)
        outputs = ChromaticComplex(image.facets, name="O_random")
        images: Dict[Simplex, SimplicialComplex] = {}
        for tau in inputs.simplices():
            images[tau] = _faces_with_ids(image, tau.colors())
        delta = CarrierMap(inputs, outputs, images, check=False)
        try:
            return Task(inputs, outputs, delta, name=f"random(seed={seed})")
        except TaskError:
            continue
    raise RuntimeError(f"could not generate a valid random task for seed {seed}")


def random_multi_facet_task(
    seed: int, n_values: int = 2, image_size: int = 2
) -> Task:
    """A random three-process task whose input complex has several facets.

    The input complex is the full binary assignment complex (8 facets
    sharing faces); each input facet gets a random set of output facets,
    and lower-dimensional images are intersections of the incident facet
    images (restricted to matching ids), which forces monotonicity.
    Retries until the construction validates, so shared faces always admit
    common outputs.  These tasks exercise the multi-facet paths of
    canonicalization and splitting that single-facet generators miss.
    """
    from .builders import full_input_complex

    rng = random.Random(seed ^ 0xFACE7)
    inputs = full_input_complex(3, tuple(range(n_values)), name="I_multi")
    for _ in range(500):
        outputs = random_output_complex(rng, n_values=3, n_facets=6)
        # a shared anchor facet keeps the images of neighboring input
        # facets compatible on their common faces (monotone + strict)
        pool = _sorted_facets(outputs)
        anchor = rng.choice(pool)
        facet_images: Dict[Simplex, List[Simplex]] = {}
        for sigma in inputs.facets:
            extra = rng.sample(pool, min(image_size - 1, len(pool)))
            facet_images[sigma] = [anchor] + extra
        images: Dict[Simplex, SimplicialComplex] = {}
        for tau in inputs.simplices():
            inter: Optional[SimplicialComplex] = None
            for sigma in inputs.facets:
                if not tau <= sigma:
                    continue
                proj = _faces_with_ids(
                    SimplicialComplex(facet_images[sigma]), tau.colors()
                )
                inter = proj if inter is None else inter.intersection(proj)
            images[tau] = inter if inter is not None else SimplicialComplex.empty()
        delta = CarrierMap(inputs, outputs, images, check=False)
        try:
            task = Task(inputs, outputs, delta, name=f"random-multi(seed={seed})")
            return task.restrict_to_reachable()
        except TaskError:
            continue
    raise RuntimeError(f"could not generate a multi-facet random task for seed {seed}")


def random_sparse_task(
    seed: int, n_values: int = 3, n_facets: Optional[int] = None, drop_edges: int = 2
) -> Task:
    """A random task whose lower-dimensional images are thinned.

    Starting from :func:`random_single_input_task`'s construction, random
    facets are removed from the edge-level images (keeping at least one and
    re-closing vertices by intersection), producing tasks with less
    regular Δ — a richer source of LAPs for the splitting pipeline.
    """
    if n_facets is None:
        n_facets = min(7, n_values**3)
    rng = random.Random(seed ^ 0x5EED)
    for attempt in range(200):
        base = random_single_input_task(
            rng.randrange(1 << 30), n_values=n_values, n_facets=n_facets
        )
        inputs = base.input_complex
        images: Dict[Simplex, SimplicialComplex] = {
            tau: base.delta(tau) for tau in inputs.simplices()
        }
        for tau in inputs.simplices(dim=1):
            img_facets: List[Simplex] = _sorted_facets(images[tau])
            rng.shuffle(img_facets)
            keep = img_facets[: max(1, len(img_facets) - drop_edges)]
            images[tau] = SimplicialComplex(keep)
        # re-derive vertex images as intersections of incident edge images
        for x in inputs.simplices(dim=0):
            inter: Optional[SimplicialComplex] = None
            for e in inputs.simplices(dim=1):
                if x <= e:
                    proj = _faces_with_ids(images[e], x.colors())
                    inter = proj if inter is None else inter.intersection(proj)
            if inter is not None:
                images[x] = inter
        try:
            delta = CarrierMap(base.input_complex, base.output_complex, images, check=False)
            return Task(
                base.input_complex,
                base.output_complex,
                delta,
                name=f"random-sparse(seed={seed})",
            )
        except TaskError:
            continue
    raise RuntimeError(f"could not generate a sparse random task for seed {seed}")
