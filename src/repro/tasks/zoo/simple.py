"""The running-example task of Figure 3 and trivial baseline tasks.

Figure 3 shows a small task whose Δ is *not* canonical: a green output
facet lies in the image of two distinct input facets, and its ``P0``
(black) vertex lies in the Δ-image of both black input vertices.
Canonicalizing it (Figure 4) duplicates that facet, one copy per input
facet.  The exact complexes in the figure are not enumerated in the text;
this reconstruction keeps the stated features: two input facets sharing
the white–gray edge, a green facet shared by both images, and a second
facet private to one of them.

The module also provides the trivial baselines: the *identity* task
(decide your own input; solvable by doing nothing) and the *constant*
task.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task, task_from_function
from .builders import full_input_complex


def figure3_task(name: str = "figure3") -> Task:
    """The simple (non-canonical) running-example task of Figure 3."""
    sigma = Simplex([Vertex(0, "p"), Vertex(1, "q"), Vertex(2, "r")])
    sigma_prime = Simplex([Vertex(0, "p'"), Vertex(1, "q"), Vertex(2, "r")])
    inputs = ChromaticComplex([sigma, sigma_prime], name="I_fig3")

    green = Simplex([Vertex(0, "g0"), Vertex(1, "g1"), Vertex(2, "g2")])
    blue = Simplex([Vertex(0, "h0"), Vertex(1, "g1"), Vertex(2, "h2")])
    outputs = ChromaticComplex([green, blue], name="O_fig3")

    def faces_with_ids(facets: Iterable[Simplex], ids: frozenset) -> SimplicialComplex:
        picked = []
        for f in facets:
            picked.append(Simplex(v for v in f.vertices if v.color in ids))
        return SimplicialComplex(picked)

    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in inputs.simplices():
        ids = tau.colors()
        if tau <= sigma and tau <= sigma_prime:
            # shared faces (white-gray edge and its vertices) must map into
            # the intersection of both facet images to keep Δ monotone
            images[tau] = faces_with_ids([green], ids)
        elif tau <= sigma:
            images[tau] = faces_with_ids([green, blue], ids)
        else:
            images[tau] = faces_with_ids([green], ids)
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=name)


def identity_task(n: int, values: Sequence[Hashable] = (0, 1), name: str = None) -> Task:
    """Each process decides its own input — solvable without communication."""
    inputs = full_input_complex(n, values, name="I_id")
    outputs = full_input_complex(n, values, name="O_id")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        yield sigma

    return task_from_function(inputs, outputs, rule, name=name or f"identity(n={n})")


def constant_task(n: int, values: Sequence[Hashable] = (0, 1), constant: Hashable = 0,
                  name: str = None) -> Task:
    """Every process decides the fixed value ``constant``."""
    inputs = full_input_complex(n, values, name="I_const")
    facet = Simplex(Vertex(i, constant) for i in range(n))
    outputs = ChromaticComplex([facet], name="O_const")

    def rule(sigma: Simplex) -> Iterable[Simplex]:
        yield Simplex(Vertex(i, constant) for i in sorted(sigma.colors()))

    return task_from_function(inputs, outputs, rule, name=name or f"constant(n={n})")
