"""Synthetic tasks with controlled articulation structure.

:func:`fan_task` builds a three-process task whose output complex is a
"fan": a central color-0 vertex ``y`` surrounded by ``r`` disjoint strips of
``m`` triangles each.  ``y``'s link inside ``Δ(σ)`` has exactly ``r``
connected components, so ``y`` is a LAP with a *configurable* number of
components and link length — the workload for the Figure 5 splitting
benchmark (the paper's generic split of an ``r``-component LAP) and for
scaling studies of the deformation.
"""

from __future__ import annotations

from typing import Dict, List

from ...topology.carrier import CarrierMap
from ...topology.chromatic import ChromaticComplex
from ...topology.complexes import SimplicialComplex
from ...topology.simplex import Simplex, Vertex
from ..task import Task
from .builders import single_facet_input


def fan_task(
    components: int = 2,
    strip_length: int = 1,
    twisted: bool = False,
    name: str = None,
) -> Task:
    """A task whose output has one LAP with ``components`` link components.

    Each component is a strip of ``strip_length`` triangles sharing the
    central vertex ``y = (0, "hub")``; within a strip, consecutive
    triangles share an edge at ``y``, so each strip contributes one
    connected path to ``y``'s link.  Colors alternate 1, 2 along the strip.

    With ``twisted=False`` the solo decisions of processes 1 and 2 both lie
    on strip 0 and the task is (trivially) solvable; with ``twisted=True``
    process 2's solo decision moves to strip 1, so after splitting the hub
    the two mandatory solo outputs end up in different connected components
    and the task is unsolvable by Corollary 5.5.
    """
    if components < 1 or strip_length < 1:
        raise ValueError("need at least one component and one triangle per strip")
    if twisted and components < 2:
        raise ValueError("a twisted fan needs at least two components")
    hub = Vertex(0, "hub")
    triangles: List[Simplex] = []
    strips: List[List[Vertex]] = []
    for c in range(components):
        rim: List[Vertex] = []
        for j in range(strip_length + 1):
            color = 1 if j % 2 == 0 else 2
            rim.append(Vertex(color, f"rim{c}_{j}"))
        strips.append(rim)
        for j in range(strip_length):
            triangles.append(Simplex([hub, rim[j], rim[j + 1]]))
    outputs = ChromaticComplex(triangles, name="O_fan")
    inputs = single_facet_input(3, values=("x0", "x1", "x2"), name="I_fan")

    first_rim = strips[0]
    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in inputs.simplices():
        ids = tau.colors()
        if ids == frozenset({0, 1, 2}):
            images[tau] = SimplicialComplex(triangles)
        elif ids == frozenset({1, 2}):
            images[tau] = SimplicialComplex(
                Simplex([a, b])
                for rim in strips
                for a, b in zip(rim, rim[1:])
            )
        elif ids == frozenset({0}):
            images[tau] = SimplicialComplex([Simplex([hub])])
        elif 0 in ids:
            other = next(iter(ids - {0}))
            images[tau] = SimplicialComplex(
                Simplex([hub, v])
                for rim in strips
                for v in rim
                if v.color == other
            )
        else:
            (i,) = ids
            rim = strips[1] if (twisted and i == 2) else first_rim
            images[tau] = SimplicialComplex(
                [Simplex([v]) for v in rim if v.color == i][:1]
            )
    delta = CarrierMap(inputs, outputs, images, check=False).monotonize()
    label = "twisted-fan" if twisted else "fan"
    return Task(
        inputs,
        outputs,
        delta,
        name=name or f"{label}(r={components}, m={strip_length})",
    )
