"""Task model: ``(I, O, Δ)`` triples, canonical form, and the task zoo."""

from .canonical import (
    CanonicalForm,
    canonicalize,
    canonicalize_if_needed,
    chromatic_product_simplex,
    is_canonical,
    product_vertex,
    split_product_vertex,
    unique_vertex_preimage,
    vertex_preimages,
)
from .task import (
    ColorlessTask,
    Task,
    TaskError,
    delta_from_function,
    task_from_function,
)

__all__ = [
    "CanonicalForm",
    "ColorlessTask",
    "Task",
    "TaskError",
    "canonicalize",
    "canonicalize_if_needed",
    "chromatic_product_simplex",
    "delta_from_function",
    "is_canonical",
    "product_vertex",
    "split_product_vertex",
    "task_from_function",
    "unique_vertex_preimage",
    "vertex_preimages",
]
