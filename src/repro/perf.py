"""Timing harness for the performance benchmarks.

The fast-topology work (interned simplices, memoized complex queries,
bitmask map search, the parallel census) is only trustworthy if its gains
are *measured*, on every PR, in a form later PRs can diff.  This module is
that instrument: a small wall-clock + counter harness whose reports are
machine-readable JSON (``benchmarks/BENCH_perf_core.json``) with a fixed,
validated schema — see :data:`SCHEMA` and :func:`validate_report`.

A report records, per workload:

* wall-clock seconds for every repeat (plus best/mean),
* counters — search nodes/backtracks from
  :class:`~repro.solvability.map_search.SearchStats`, cache hit rates from
  :func:`repro.topology.cache_info`, anything numeric the bench wants kept,
* free-form metadata (population sizes, worker counts, cache on/off…),

together with enough machine context (CPU count, Python version) to read
absolute numbers honestly across hosts.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

#: Report format identifier; bump the suffix on breaking changes.
SCHEMA = "repro-perf/1"


def machine_info() -> Dict[str, Any]:
    """Host context stamped into every report."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass(slots=True)
class Measurement:
    """One timed workload: repeated wall-clock runs plus counters."""

    name: str
    seconds_each: List[float]
    counters: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def repeats(self) -> int:
        return len(self.seconds_each)

    @property
    def best(self) -> float:
        return min(self.seconds_each)

    @property
    def mean(self) -> float:
        return sum(self.seconds_each) / len(self.seconds_each)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "seconds_each": list(self.seconds_each),
            "best_seconds": self.best,
            "mean_seconds": self.mean,
            "counters": dict(self.counters),
            "meta": dict(self.meta),
        }


class PerfHarness:
    """Collects measurements and emits one schema-validated JSON report."""

    def __init__(self, suite: str) -> None:
        self.suite = suite
        self.measurements: List[Measurement] = []
        self.derived: Dict[str, float] = {}

    def measure(
        self,
        name: str,
        fn: Callable[..., Any],
        *args: Any,
        repeat: int = 1,
        counters: Optional[Dict[str, float]] = None,
        meta: Optional[Dict[str, Any]] = None,
        **kwargs: Any,
    ) -> Tuple[Any, Measurement]:
        """Run ``fn(*args, **kwargs)`` ``repeat`` times and record it.

        Returns ``(last_result, measurement)``; counters that depend on the
        result can be added to ``measurement.counters`` afterwards.

        Measurement names must be unique within a harness — a duplicate
        would make ``harness[name]`` and :meth:`speedup` silently resolve
        to whichever entry came first, reporting ratios against the wrong
        numbers.
        """
        if repeat < 1:
            raise ValueError("repeat must be at least 1")
        if any(m.name == name for m in self.measurements):
            raise ValueError(
                f"duplicate measurement name {name!r}; names must be unique "
                "so lookups and speedups are unambiguous"
            )
        seconds: List[float] = []
        result: Any = None
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = fn(*args, **kwargs)
            seconds.append(time.perf_counter() - t0)
        m = Measurement(
            name=name,
            seconds_each=seconds,
            counters=dict(counters or {}),
            meta=dict(meta or {}),
        )
        self.measurements.append(m)
        return result, m

    def __getitem__(self, name: str) -> Measurement:
        for m in self.measurements:
            if m.name == name:
                return m
        raise KeyError(name)

    def speedup(self, baseline: str, contender: str) -> float:
        """``best(baseline) / best(contender)`` — >1 means contender wins.

        Raises :class:`ValueError` when either side's best time is zero,
        negative or non-finite: a ~0s timing (e.g. a fully cached no-op)
        would otherwise be clamped into a fictitious huge-but-finite
        ratio, poisoning the derived numbers later PRs diff against.
        """
        base = self[baseline].best
        cont = self[contender].best
        for name, best in ((baseline, base), (contender, cont)):
            if not math.isfinite(best) or best <= 0.0:
                raise ValueError(
                    f"cannot compute a speedup: measurement {name!r} has a "
                    f"degenerate best time of {best!r}s (the workload must "
                    "do measurable work — re-run with more repeats or a "
                    "larger input instead of reporting a fictitious ratio)"
                )
        ratio = base / cont
        self.derived[f"speedup:{contender}/{baseline}"] = ratio
        return ratio

    def to_report(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "created_unix": time.time(),
            "machine": machine_info(),
            "results": [m.as_dict() for m in self.measurements],
            "derived": dict(self.derived),
        }

    def write(self, path: str) -> Dict[str, Any]:
        """Validate and write the report; returns the payload."""
        payload = self.to_report()
        errors = validate_report(payload)
        if errors:
            raise ValueError(f"invalid perf report: {errors}")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return payload


def cache_counters(prefix: str = "cache") -> Dict[str, float]:
    """Flatten :func:`repro.topology.cache_info` into report counters."""
    from .topology import cache_info

    flat: Dict[str, float] = {}
    for query, stats in cache_info().items():
        for key, value in stats.items():
            flat[f"{prefix}.{query}.{key}"] = float(value)
    return flat


def validate_report(payload: Any) -> List[str]:
    """Check a report against the ``repro-perf/1`` schema; returns problems.

    An empty list means the payload is valid.  Kept dependency-free (no
    jsonschema in this environment) and deliberately strict about types so
    the tier-2 smoke test catches format drift.
    """
    errors: List[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            errors.append(msg)
        return cond

    if not expect(isinstance(payload, dict), "report must be an object"):
        return errors
    expect(payload.get("schema") == SCHEMA, f"schema must be {SCHEMA!r}")
    expect(isinstance(payload.get("suite"), str), "suite must be a string")
    expect(
        isinstance(payload.get("created_unix"), (int, float)),
        "created_unix must be a number",
    )
    machine = payload.get("machine")
    if expect(isinstance(machine, dict), "machine must be an object"):
        expect(
            isinstance(machine.get("cpu_count"), int),
            "machine.cpu_count must be an int",
        )
        expect(
            isinstance(machine.get("python"), str),
            "machine.python must be a string",
        )
    derived = payload.get("derived")
    if expect(isinstance(derived, dict), "derived must be an object"):
        for key, value in derived.items():
            expect(
                isinstance(value, (int, float)),
                f"derived[{key!r}] must be a number",
            )
    results = payload.get("results")
    if not expect(isinstance(results, list) and results, "results must be non-empty"):
        return errors
    seen_names: Set[str] = set()
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not expect(isinstance(entry, dict), f"{where} must be an object"):
            continue
        name = entry.get("name")
        if expect(isinstance(name, str), f"{where}.name must be a string"):
            # duplicates would make name-based lookups (and speedups
            # computed from them) silently ambiguous
            expect(
                name not in seen_names,
                f"{where}.name {name!r} duplicates an earlier measurement",
            )
            seen_names.add(name)
        secs = entry.get("seconds_each")
        if expect(
            isinstance(secs, list)
            and secs
            and all(isinstance(s, (int, float)) and s >= 0 for s in secs),
            f"{where}.seconds_each must be non-empty non-negative numbers",
        ):
            expect(
                entry.get("repeats") == len(secs),
                f"{where}.repeats must equal len(seconds_each)",
            )
            expect(
                abs(entry.get("best_seconds", -1) - min(secs)) < 1e-9,
                f"{where}.best_seconds must be min(seconds_each)",
            )
            mean = sum(secs) / len(secs)
            expect(
                abs(entry.get("mean_seconds", -1) - mean)
                < 1e-9 + 1e-9 * abs(mean),
                f"{where}.mean_seconds must be mean(seconds_each)",
            )
        for numeric_map in ("counters",):
            mapping = entry.get(numeric_map)
            if expect(
                isinstance(mapping, dict), f"{where}.{numeric_map} must be an object"
            ):
                for key, value in mapping.items():
                    expect(
                        isinstance(value, (int, float)),
                        f"{where}.{numeric_map}[{key!r}] must be a number",
                    )
        expect(isinstance(entry.get("meta"), dict), f"{where}.meta must be an object")
    return errors
