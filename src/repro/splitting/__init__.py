"""Section 4: local articulation points and the splitting deformation."""

from .deformation import (
    SplitStep,
    SplitValue,
    SplittingError,
    split_lap,
    unsplit_value,
    unsplit_vertex,
)
from .lap import (
    LocalArticulationPoint,
    count_laps_per_facet,
    is_link_connected_task,
    iter_local_articulation_points,
    local_articulation_points,
)
from .pipeline import (
    SplitPipelineResult,
    SplittingDidNotConverge,
    TransformResult,
    eliminate_laps,
    link_connected_form,
)

__all__ = [
    "LocalArticulationPoint",
    "SplitPipelineResult",
    "SplitStep",
    "SplitValue",
    "SplittingDidNotConverge",
    "SplittingError",
    "TransformResult",
    "count_laps_per_facet",
    "eliminate_laps",
    "is_link_connected_task",
    "iter_local_articulation_points",
    "link_connected_form",
    "local_articulation_points",
    "split_lap",
    "unsplit_value",
    "unsplit_vertex",
]
