"""Iterated LAP elimination (Theorem 4.3) and the full task transform.

``eliminate_laps`` repeatedly applies the splitting deformation, facet by
facet, until the task is link-connected; Lemma 4.1 guarantees progress
(the LAP count w.r.t. the current facet strictly decreases, and facets
already cleaned stay clean).

``link_connected_form`` is the complete front end used by the decision
procedure: canonicalize if needed (Section 3), then split (Section 4),
returning a :class:`TransformResult` that can project any output vertex of
the final task ``T'`` back to an output vertex of the original ``T`` —
which is exactly how a protocol for ``T'`` becomes a protocol for ``T``
(Theorem 3.1 + Lemma 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..obs import annotate, counter_add, span
from ..tasks.canonical import CanonicalForm, canonicalize_if_needed
from ..tasks.task import Task
from ..topology import diskstore
from ..topology.simplex import Vertex
from .deformation import SplitStep, split_lap, unsplit_vertex
from .lap import (
    LocalArticulationPoint,
    is_link_connected_task,
    local_articulation_points,
)


class SplittingDidNotConverge(RuntimeError):
    """Raised when LAP elimination exceeds its **per-facet** step budget.

    The ``max_steps`` budget of :func:`eliminate_laps` bounds the number
    of splitting deformations spent on any *single* input facet — it is
    reset for each facet, so a task may perform far more than
    ``max_steps`` splits in total and still converge.  Theorem 4.3 proves
    termination, so hitting this indicates a bug or an adversarially
    large task; the budget exists to fail loudly rather than loop.
    """


@dataclass(frozen=True)
class SplitPipelineResult:
    """The outcome of iterated LAP elimination on a canonical task."""

    original: Task
    task: Task
    steps: Tuple[SplitStep, ...]

    @property
    def n_splits(self) -> int:
        return len(self.steps)

    def project_vertex(self, v: Vertex) -> Vertex:
        """Map an output vertex of the split task back to the original.

        Split copies carry their history in their values, so projection is
        simply recursive unwrapping.
        """
        return unsplit_vertex(v)


def eliminate_laps(task: Task, max_steps: int = 10_000) -> SplitPipelineResult:
    """Apply splitting deformations until the task is link-connected.

    The task must be canonical (callers should use
    :func:`link_connected_form` which handles canonicalization).  Facets
    are processed in canonical order; within a facet, the first LAP in
    canonical order is split each round, matching the constructive proof of
    Theorem 4.3.

    ``max_steps`` is a **per-facet** budget: it is reset for every input
    facet, so the total number of splits across the task may legitimately
    exceed it (Lemma 4.1 only guarantees a strictly decreasing LAP count
    *per facet*).  Exhausting the budget on any single facet raises
    :class:`SplittingDidNotConverge`.
    """
    current = task
    steps = []
    for sigma in task.input_complex.facets:
        with span("split.facet", facet=str(sigma)) as facet_span:
            budget = max_steps
            splits_before = len(steps)
            while True:
                laps = local_articulation_points(current, facet=sigma)
                if not laps:
                    break
                if budget <= 0:
                    raise SplittingDidNotConverge(
                        f"LAP elimination for facet {sigma!r} exceeded its "
                        f"per-facet budget of {max_steps} steps (the budget "
                        f"resets for each facet; {len(steps)} splits were "
                        "performed before this facet's budget ran out)"
                    )
                budget -= 1
                step = split_lap(current, laps[0], check=False)
                steps.append(step)
                current = step.after
            facet_splits = len(steps) - splits_before
            annotate(facet_span, splits=facet_splits)
            counter_add("split.steps", facet_splits)
            if facet_splits:
                counter_add("split.facets_with_laps")
    return SplitPipelineResult(original=task, task=current, steps=tuple(steps))


@dataclass(frozen=True)
class TransformResult:
    """Canonicalization + splitting, with projection back to the original.

    Attributes
    ----------
    original:
        The task handed in.
    canonical:
        Its canonical form (Section 3).
    pipeline:
        The LAP-elimination record on the canonical task.
    task:
        The final link-connected task ``T' = (I, O', Δ')``.
    """

    original: Task
    canonical: CanonicalForm
    pipeline: SplitPipelineResult
    task: Task

    @property
    def n_splits(self) -> int:
        return self.pipeline.n_splits

    def project_vertex(self, v: Vertex) -> Vertex:
        """Map a ``T'`` output vertex to an output vertex of the original task.

        First un-split (Lemma 4.2 direction ``A_y → A``), then drop the
        input coordinate added by canonicalization (Theorem 3.1).
        """
        return self.canonical.project_vertex(unsplit_vertex(v))


def link_connected_form(task: Task, max_steps: int = 10_000) -> TransformResult:
    """The full Section 3 + Section 4 transform of a task.

    Returns a link-connected task with the same input complex and the same
    solvability, together with the projection needed to pull protocols
    back.  The output complex is restricted to its reachable part first
    (the paper's standing assumption ``O = ∪_σ Δ(σ)``).

    The transform is a pure function of the task, so the complete
    :class:`TransformResult` (including the step record — callers' split
    counters stay identical) is cached in the persistent store of
    :mod:`repro.topology.diskstore`, keyed by the task's content hash.
    """
    cache_key: Optional[str] = None
    if diskstore.store_enabled():
        cache_key = diskstore.task_key(task)
        cached = diskstore.load("transform", cache_key)
        if isinstance(cached, TransformResult):
            return cached
    with span("canonicalize"):
        reachable = task.restrict_to_reachable()
        canonical = canonicalize_if_needed(reachable)
    if task.input_complex.dim == 2:
        with span("split"):
            pipeline = eliminate_laps(canonical.task, max_steps=max_steps)
    else:
        # splitting is specific to three processes; lower dimensions need no
        # LAP elimination for the characterization (Proposition 5.4)
        pipeline = SplitPipelineResult(
            original=canonical.task, task=canonical.task, steps=()
        )
    result = TransformResult(
        original=task,
        canonical=canonical,
        pipeline=pipeline,
        task=pipeline.task,
    )
    assert is_link_connected_task(result.task) or task.input_complex.dim != 2
    if cache_key is not None:
        diskstore.store("transform", cache_key, result)
    return result
