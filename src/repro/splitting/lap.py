"""Local articulation points (Section 4).

For an input facet ``σ``, a vertex ``y ∈ Δ(σ)`` is a *local articulation
point* (LAP) w.r.t. ``σ`` when its link inside the complex ``Δ(σ)`` has at
least two connected components.  LAPs are the chromatic-only obstruction
the paper isolates; the splitting deformation removes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple

from ..tasks.task import Task
from ..topology.simplex import Simplex, Vertex


@dataclass(frozen=True, slots=True)
class LocalArticulationPoint:
    """A LAP: the vertex, the input facet it is local to, and its link components."""

    vertex: Vertex
    facet: Simplex
    components: Tuple[FrozenSet[Vertex], ...]

    @property
    def n_components(self) -> int:
        return len(self.components)

    def component_of(self, z: Vertex) -> int:
        """Index of the link component containing ``z``."""
        for i, comp in enumerate(self.components):
            if z in comp:
                return i
        raise KeyError(f"{z!r} is not in the link of {self.vertex!r}")

    def __repr__(self) -> str:
        return (
            f"LAP({self.vertex!r} w.r.t. {self.facet!r}, "
            f"{self.n_components} link components)"
        )


def local_articulation_points(
    task: Task, facet: Optional[Simplex] = None
) -> Tuple[LocalArticulationPoint, ...]:
    """All LAPs of a task, optionally restricted to one input facet.

    Returned in deterministic order (facets in canonical order, vertices in
    canonical order within each facet).
    """
    return tuple(iter_local_articulation_points(task, facet))


def iter_local_articulation_points(
    task: Task, facet: Optional[Simplex] = None
) -> Iterator[LocalArticulationPoint]:
    facets = (facet,) if facet is not None else task.input_complex.facets
    for sigma in facets:
        image = task.delta(sigma)
        for y in image.vertices:
            comps = image.link_components(y)
            if len(comps) >= 2:
                yield LocalArticulationPoint(vertex=y, facet=sigma, components=comps)


def is_link_connected_task(task: Task) -> bool:
    """Whether the task has no LAP w.r.t. any input facet.

    This is the paper's notion of a *link-connected task*: ``Δ(σ)`` is link
    connected for every input facet ``σ`` (the property Theorem 4.3
    establishes).
    """
    return next(iter_local_articulation_points(task), None) is None


def count_laps_per_facet(task: Task) -> dict:
    """``{facet: number of LAPs w.r.t. it}`` — used by benchmarks."""
    out = {}
    for sigma in task.input_complex.facets:
        out[sigma] = len(local_articulation_points(task, facet=sigma))
    return out
