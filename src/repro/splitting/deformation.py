"""The splitting deformation (Section 4.1).

Given a canonical task ``T = (I, O, Δ)``, an input facet ``σ`` and a LAP
``y ∈ Δ(σ)`` whose link in ``Δ(σ)`` has components ``C_1 … C_r``, the
deformation replaces ``y`` by fresh copies ``y_1 … y_r`` and rewires Δ:

* simplices not containing ``y`` are kept as they are;
* a facet ``{z, z', y} ∈ Δ(τ)`` for ``τ ⊆ σ`` becomes ``{z, z', y_i}``
  where ``C_i`` is the component containing ``{z, z'}`` (and likewise for
  edges ``{z, y}``);
* for input simplices ``τ ⊄ σ``, every copy is substituted (the component
  cannot be determined locally), matching the paper's "add all the facets
  ``{z, z', y_i}`` … for all ``i``";
* vertex-level images ``{y} ∈ Δ(x)`` receive all copies and are then
  pruned by monotonization (see DESIGN.md: the paper's Section 2.3 remark
  licenses dropping outputs no protocol could decide).

Lemma 4.2: the deformed task ``T_y`` is solvable iff ``T`` is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..tasks.canonical import is_canonical
from ..tasks.task import Task, TaskError
from ..topology.carrier import CarrierMap
from ..topology.chromatic import ChromaticComplex
from ..topology.complexes import SimplicialComplex
from ..topology.simplex import Simplex, Vertex
from .lap import LocalArticulationPoint


class SplitValue:
    """The value of a split copy: the original value plus a branch index.

    Values nest under repeated splitting; :func:`unsplit_value` unwinds to
    the original output value.

    ``repr`` and ``hash`` are computed eagerly: split values are vertex
    payloads, so subdivision vertices embed them in *their* reprs and sort
    keys — without the cached string, nested splits made every vertex
    comparison re-walk the whole SplitValue chain.
    """

    __slots__ = ("base", "branch", "_repr_str", "_hash_value")

    def __init__(self, base: Hashable, branch: int) -> None:
        self.base = base
        self.branch = branch
        self._repr_str = f"{base!r}/{branch}"
        self._hash_value = hash((SplitValue, base, branch))

    def __repr__(self) -> str:
        return self._repr_str

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, SplitValue):
            return self.branch == other.branch and self.base == other.base
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash_value

    def __reduce__(self):
        return (SplitValue, (self.base, self.branch))


def unsplit_value(value: Hashable) -> Hashable:
    """Recursively strip :class:`SplitValue` wrappers."""
    while isinstance(value, SplitValue):
        value = value.base
    return value


def unsplit_vertex(v: Vertex) -> Vertex:
    """Map a (possibly repeatedly) split output vertex back to the original."""
    return Vertex(v.color, unsplit_value(v.value))


@dataclass(frozen=True)
class SplitStep:
    """One application of the splitting deformation."""

    before: Task
    after: Task
    lap: LocalArticulationPoint
    copies: Tuple[Vertex, ...]

    def project_vertex(self, v: Vertex) -> Vertex:
        """Map an ``after``-output vertex to a ``before``-output vertex."""
        if v in self.copies:
            return self.lap.vertex
        return v


class SplittingError(TaskError):
    """Raised when the deformation cannot be applied."""


def split_lap(task: Task, lap: LocalArticulationPoint, check: bool = True) -> SplitStep:
    """Apply the splitting deformation of ``O`` w.r.t. ``lap``.

    The task must be canonical, three-process (2-dimensional) and have a
    reachable output complex.  Returns the deformed task together with the
    bookkeeping needed to project protocols back (Lemma 4.2's easy
    direction).
    """
    if task.input_complex.dim != 2:
        raise SplittingError(
            "the splitting deformation is defined for three-process (2-dimensional) tasks"
        )
    if check and not is_canonical(task):
        raise SplittingError("the splitting deformation requires a canonical task")

    y = lap.vertex
    sigma = lap.facet
    r = lap.n_components
    copies = tuple(Vertex(y.color, SplitValue(y.value, i)) for i in range(r))
    comp_of: Dict[Vertex, int] = {}
    for i, comp in enumerate(lap.components):
        for z in comp:
            comp_of[z] = i

    new_images: Dict[Simplex, SimplicialComplex] = {}
    for tau in task.input_complex.simplices():
        image = task.delta(tau)
        new_facets: List[Simplex] = []
        for rho in image.facets:
            if y not in rho:
                new_facets.append(rho)
                continue
            rest = rho.without(y)
            if tau <= sigma:
                if rest is None:
                    # Δ(x) ∋ {y}: the component is not locally determined —
                    # add every copy, monotonization prunes the bad ones.
                    new_facets.extend(Simplex([c]) for c in copies)
                else:
                    witness = rest.sorted_vertices()[0]
                    try:
                        i = comp_of[witness]
                    except KeyError as exc:
                        raise SplittingError(
                            f"{witness!r} from Δ({tau!r}) is missing from the link "
                            f"of {y!r} in Δ({sigma!r}); is Δ monotonic?"
                        ) from exc
                    new_facets.append(rho.replace_vertex(y, copies[i]))
            else:
                new_facets.extend(rho.replace_vertex(y, c) for c in copies)
        new_images[tau] = SimplicialComplex(new_facets)

    all_facets: List[Simplex] = []
    for img in new_images.values():
        all_facets.extend(img.facets)
    new_output = ChromaticComplex(
        all_facets, name=task.output_complex.name
    )
    delta = CarrierMap(task.input_complex, new_output, new_images, check=False)
    delta = delta.monotonize()
    after = Task(
        task.input_complex,
        new_output,
        delta,
        name=task.name,
        check=check,
    )
    return SplitStep(before=task, after=after, lap=lap, copies=copies)
