"""Analysis layer: per-task reports and population census."""

from .census import Census, run_census, sparse_census
from .report import TaskReport, analyze_task

__all__ = ["Census", "TaskReport", "analyze_task", "run_census", "sparse_census"]
