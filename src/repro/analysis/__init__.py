"""Analysis layer: per-task reports and population census (serial + parallel)."""

from .census import Census, run_census, sparse_census
from .parallel import default_workers, parallel_census, parallel_sparse_census
from .report import TaskReport, analyze_task

__all__ = [
    "Census",
    "TaskReport",
    "analyze_task",
    "default_workers",
    "parallel_census",
    "parallel_sparse_census",
    "run_census",
    "sparse_census",
]
