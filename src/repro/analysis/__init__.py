"""Analysis layer: per-task reports and population census (serial + parallel)."""

from .census import Census, run_census, sparse_census
from .corpus import (
    CorpusConfig,
    CorpusError,
    CorpusResult,
    load_manifest,
    run_corpus,
    validate_manifest,
    verify_manifest,
)
from .parallel import default_workers, parallel_census, parallel_sparse_census
from .report import TaskReport, analyze_task

__all__ = [
    "Census",
    "CorpusConfig",
    "CorpusError",
    "CorpusResult",
    "TaskReport",
    "analyze_task",
    "default_workers",
    "load_manifest",
    "parallel_census",
    "parallel_sparse_census",
    "run_census",
    "run_corpus",
    "sparse_census",
    "validate_manifest",
    "verify_manifest",
]
