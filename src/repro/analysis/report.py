"""Structured analysis reports for tasks.

:func:`analyze_task` runs the full characterization machinery on a task
and gathers everything a reader of the paper would want to know — sizes,
canonicity, LAP inventory, split statistics, the verdict and its
certificate — into one :class:`TaskReport`, renderable as text.  This is
the programmatic form of the walkthroughs in ``examples/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..solvability.decision import SolvabilityVerdict, Status, decide_solvability
from ..splitting.lap import local_articulation_points
from ..splitting.pipeline import TransformResult, link_connected_form
from ..tasks.canonical import is_canonical
from ..tasks.task import Task
from ..topology.links import longest_link_size


@dataclass
class TaskReport:
    """Everything the characterization says about one task."""

    task: Task
    n_processes: int
    input_facets: int
    output_facets: int
    output_vertices: int
    canonical: bool
    lap_count: int
    lap_components: Tuple[int, ...]
    n_splits: int
    o_prime_components: int
    longest_link: int
    verdict: SolvabilityVerdict
    transform: Optional[TransformResult] = None

    @property
    def solvable(self) -> Optional[bool]:
        return self.verdict.solvable

    def lines(self) -> List[str]:
        """The report as human-readable lines."""
        out = [
            f"task: {self.task}",
            f"processes: {self.n_processes}; input facets: {self.input_facets}; "
            f"output facets: {self.output_facets} "
            f"({self.output_vertices} vertices)",
            f"canonical: {self.canonical}",
            f"local articulation points: {self.lap_count}"
            + (
                f" (link components: {sorted(set(self.lap_components))})"
                if self.lap_count
                else ""
            ),
            f"splitting: {self.n_splits} splits -> "
            f"{self.o_prime_components} component(s) in O'",
            f"longest output link: {self.longest_link}",
            f"verdict: {self.verdict.status.value}",
        ]
        if self.verdict.status is Status.UNSOLVABLE:
            out.append(f"certificate: {self.verdict.obstruction}")
        elif self.verdict.status is Status.SOLVABLE:
            out.append(
                f"certificate: simplicial map on Ch^{self.verdict.witness_rounds}(I)"
            )
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def analyze_task(task: Task, max_rounds: int = 2) -> TaskReport:
    """Run the full pipeline on a task and package the findings."""
    laps = (
        local_articulation_points(task) if task.input_complex.dim == 2 else ()
    )
    transform = None
    n_splits = 0
    o_prime_components = len(task.output_complex.connected_components())
    if task.input_complex.dim == 2:
        transform = link_connected_form(task)
        n_splits = transform.n_splits
        o_prime_components = len(
            transform.task.output_complex.connected_components()
        )
    verdict = decide_solvability(task, max_rounds=max_rounds)
    return TaskReport(
        task=task,
        n_processes=task.n_processes,
        input_facets=len(task.input_complex.facets),
        output_facets=len(task.output_complex.facets),
        output_vertices=len(task.output_complex.vertices),
        canonical=is_canonical(task),
        lap_count=len(laps),
        lap_components=tuple(l.n_components for l in laps),
        n_splits=n_splits,
        o_prime_components=o_prime_components,
        longest_link=longest_link_size(task.output_complex),
        verdict=verdict,
        transform=transform,
    )
