"""Streaming census corpus: isomorphism dedup, resumable shards, manifests.

The census used to decide a few hundred seeds per run from scratch.  This
module scales it to ROADMAP item 4's 10^5–10^6 populations by never doing
the same work twice and never losing work already done:

* **isomorphism dedup** — every generated task is canonically hashed up to
  per-color output-value renaming (:func:`repro.tasks.canonical.
  iso_canonical_text` + :func:`repro.topology.diskstore.content_hash`)
  *before* it is decided; a duplicate reuses its representative's verdict
  (solvability is invariant under chromatic isomorphism).  On the default
  generator the dedup rate exceeds 90% — the decision procedure runs on
  the ~one-in-ten genuinely new tasks;
* **resumable shards** — the seed range is partitioned into contiguous
  shards, each an append-only JSONL file of verdict records under the
  corpus directory.  Every committed line is a checkpoint: an interrupted
  shard resumes from its last fully-written record (a torn tail line is
  detected and truncated away), so a killed 10^6-seed run loses at most
  one seed of work per shard;
* **versioned manifests** — a completed run packages into a
  ``repro-corpus/1`` manifest (generator config, dedup stats, throughput,
  golden verdicts) that :func:`verify_manifest` replays seed-by-seed —
  the fixture-driven regression battery ``tests/corpus/`` and the CI
  ``corpus-smoke`` job both gate on verdict drift against committed
  manifests.

Dedup scope is **per shard**: each shard is a deterministic serial stream,
so the representative of every hash — and with it every aggregate — is
independent of worker scheduling, pool size, and interruption points.
Cross-shard duplicates still shortcut through the persistent verdict
store (:func:`repro.analysis.census._decide_with_store`).  For a fixed
shard partition, ``Census`` aggregates are bit-identical between serial,
pooled, interrupted-and-resumed, and replayed runs.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..obs import annotate, capture_worker, counter_add, gauge_set, merge_worker_snapshot, set_gauge_policy, span, tracing_enabled
from ..tasks.canonical import iso_canonical_text
from ..tasks.task import Task
from ..tasks.zoo.random_tasks import (
    random_multi_facet_task,
    random_single_input_task,
    random_sparse_task,
)
from ..topology import diskstore
from .census import Census, _decide_with_store

#: manifest schema identifier (golden-verdict packages)
SCHEMA = "repro-corpus/1"

#: run-config schema identifier (the in-progress run descriptor)
RUN_SCHEMA = "repro-corpus-run/1"

RUN_CONFIG_FILE = "run.json"
MANIFEST_FILE = "manifest.json"

#: default corpus root, relative to the current working directory
DEFAULT_ROOT = os.path.join(".repro", "corpus")

#: name -> picklable ``seed -> Task`` generator (manifest-addressable)
GENERATORS: Dict[str, Callable[[int], Task]] = {
    "single": random_single_input_task,
    "sparse": random_sparse_task,
    "multi": random_multi_facet_task,
}

class CorpusError(RuntimeError):
    """A corpus run/manifest is inconsistent with what was asked."""


@dataclass(frozen=True)
class CorpusConfig:
    """Everything needed to regenerate a corpus deterministically."""

    seed_start: int
    seed_stop: int
    shards: int = 1
    generator: str = "single"
    max_rounds: int = 1

    def validate(self) -> None:
        if self.seed_stop <= self.seed_start:
            raise CorpusError(
                f"empty seed range [{self.seed_start}, {self.seed_stop})"
            )
        if self.shards < 1:
            raise CorpusError(f"shards must be at least 1, got {self.shards}")
        if self.shards > self.population:
            raise CorpusError(
                f"{self.shards} shards over {self.population} seeds would "
                "leave empty shards; use fewer shards"
            )
        if self.generator not in GENERATORS:
            raise CorpusError(
                f"unknown generator {self.generator!r}; "
                f"use one of {', '.join(sorted(GENERATORS))}"
            )
        if self.max_rounds < 0:
            raise CorpusError(f"max_rounds must be non-negative, got {self.max_rounds}")

    @property
    def population(self) -> int:
        return self.seed_stop - self.seed_start

    def generator_fn(self) -> Callable[[int], Task]:
        return GENERATORS[self.generator]

    def shard_ranges(self) -> List[Tuple[int, int]]:
        """Contiguous near-equal partition of the seed range, one per shard."""
        base, extra = divmod(self.population, self.shards)
        ranges = []
        start = self.seed_start
        for shard in range(self.shards):
            size = base + (1 if shard < extra else 0)
            ranges.append((start, start + size))
            start += size
        return ranges

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seed_start": self.seed_start,
            "seed_stop": self.seed_stop,
            "shards": self.shards,
            "generator": self.generator,
            "max_rounds": self.max_rounds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CorpusConfig":
        try:
            return cls(
                seed_start=int(payload["seed_start"]),
                seed_stop=int(payload["seed_stop"]),
                shards=int(payload["shards"]),
                generator=str(payload["generator"]),
                max_rounds=int(payload["max_rounds"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusError(f"malformed corpus config: {exc}") from exc


# ---------------------------------------------------------------------------
# Shard files: append-only JSONL, every committed line a checkpoint
# ---------------------------------------------------------------------------

#: fields every shard record (and manifest verdict row) carries
RECORD_FIELDS = (
    "seed",
    "canon_hash",
    "status",
    "certificate",
    "witness_rounds",
    "n_splits",
    "runtime",
    "dedup",
)


def shard_path(root: str, shard: int) -> str:
    return os.path.join(root, f"shard-{shard:04d}.jsonl")


def canon_hash(task: Task) -> str:
    """Content hash of the task's renaming-canonical description."""
    return diskstore.content_hash(iso_canonical_text(task))


def _record_from_verdict(seed, canon, verdict, runtime) -> Dict[str, Any]:
    from ..solvability.decision import Status

    if verdict.status is Status.SOLVABLE:
        certificate = "witness-map"
    elif verdict.status is Status.UNSOLVABLE:
        certificate = verdict.obstruction.kind
    else:
        certificate = "unknown"
    return {
        "seed": seed,
        "canon_hash": canon,
        "status": verdict.status.value,
        "certificate": certificate,
        "witness_rounds": verdict.witness_rounds,
        "n_splits": int(verdict.stats.get("n_splits", 0)),
        "runtime": runtime,
        "dedup": False,
    }


@dataclass
class ShardState:
    """What a shard file currently holds: the committed prefix."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    next_seed: int = 0
    valid_bytes: int = 0
    torn: bool = False


def load_shard(path: str, seed_start: int, seed_stop: int) -> ShardState:
    """Parse a shard file's committed prefix; tolerate a torn tail.

    Records are appended strictly in seed order, so the resume point is
    the end of the longest prefix of valid, in-sequence lines.  Anything
    after the first unparsable or out-of-sequence line (a crashed writer's
    torn tail) is ignored and reported via ``torn`` so the writer can
    truncate it before appending.
    """
    state = ShardState(next_seed=seed_start)
    if not os.path.exists(path):
        return state
    with open(path, "rb") as fh:
        blob = fh.read()
    offset = 0
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline == -1:
            # the writer died mid-line: everything before is committed
            state.torn = True
            break
        try:
            record = json.loads(blob[offset:newline].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            state.torn = True
            break
        if (
            not isinstance(record, dict)
            or any(k not in record for k in RECORD_FIELDS)
            or record["seed"] != state.next_seed
            or record["seed"] >= seed_stop
        ):
            state.torn = True
            break
        state.records.append(record)
        state.next_seed = record["seed"] + 1
        offset = newline + 1
        state.valid_bytes = offset
    return state


def run_shard(
    config: CorpusConfig,
    shard: int,
    root: str,
    limit: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run (or resume) one shard; returns the shard's full record list.

    Each seed's task is generated, iso-hashed, deduplicated against the
    shard's earlier hashes, decided only when new, and committed as one
    JSONL line (flushed before the next seed starts — the line *is* the
    checkpoint).  ``limit`` bounds how many further seeds this call
    processes (used by tests to pause mid-shard); an exception at seed
    ``s`` loses only ``s`` — every earlier line is already committed.
    """
    seed_start, seed_stop = config.shard_ranges()[shard]
    path = shard_path(root, shard)
    state = load_shard(path, seed_start, seed_stop)
    if state.torn:
        with open(path, "rb+") as fh:
            fh.truncate(state.valid_bytes)
    records = list(state.records)
    if state.next_seed >= seed_stop:
        return records

    generator = config.generator_fn()
    seen: Dict[str, Dict[str, Any]] = {}
    for record in records:
        seen.setdefault(record["canon_hash"], record)

    os.makedirs(root, exist_ok=True)
    done = 0
    shard_t0 = time.perf_counter()
    with span("corpus.shard") as shard_span, open(path, "a", encoding="utf-8") as fh:
        annotate(shard_span, shard=shard, seed_start=seed_start, seed_stop=seed_stop)
        for seed in range(state.next_seed, seed_stop):
            if limit is not None and done >= limit:
                break
            task = generator(seed)
            canon = canon_hash(task)
            representative = seen.get(canon)
            if representative is not None:
                counter_add("corpus.dedup.hit")
                record = dict(representative)
                record.update(seed=seed, runtime=0.0, dedup=True)
            else:
                counter_add("corpus.dedup.miss")
                t0 = time.perf_counter()
                verdict = _decide_with_store(task, config.max_rounds)
                record = _record_from_verdict(
                    seed, canon, verdict, time.perf_counter() - t0
                )
                seen[canon] = record
            counter_add("corpus.tasks")
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            records.append(record)
            done += 1
        wall = time.perf_counter() - shard_t0
        if done and wall > 0:
            # shard rates merge by "max" across pool workers: the fastest
            # shard's rate is the engine's capability, an average over
            # shards of different sizes is not meaningful
            set_gauge_policy("corpus.tasks_per_second", "max")
            gauge_set("corpus.tasks_per_second", done / wall)
    return records


# ---------------------------------------------------------------------------
# Whole-run orchestration: workers claim shards, parent merges
# ---------------------------------------------------------------------------


def _shard_worker(args) -> Tuple[int, List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Pool entry point: run one shard, optionally snapshotting telemetry."""
    config_dict, shard, root, trace = args
    config = CorpusConfig.from_dict(config_dict)
    if not trace:
        return shard, run_shard(config, shard, root), None
    with capture_worker() as capture:
        records = run_shard(config, shard, root)
    return shard, records, capture.snapshot


@dataclass
class CorpusResult:
    """A completed corpus run, ready for packaging and aggregation."""

    config: CorpusConfig
    root: str
    records: List[Dict[str, Any]]
    census: Census
    manifest: Dict[str, Any]
    wall_seconds: float

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_FILE)


def run_corpus(
    config: CorpusConfig,
    root: str,
    workers: Optional[int] = None,
    resume: bool = False,
) -> CorpusResult:
    """Run every shard of a corpus, package the manifest, return the result.

    A fresh directory starts a new run (its ``run.json`` pins the config);
    an existing one requires ``resume=True`` and an identical config —
    completed shards are loaded, interrupted ones continue from their last
    committed seed.  With ``workers > 1`` incomplete shards are claimed by
    pool workers (scheduling cannot change any aggregate: shards are
    deterministic serial streams and :meth:`Census.merge` is commutative).
    """
    config.validate()
    if workers is not None and workers < 1:
        raise CorpusError(f"workers must be at least 1, got {workers}")
    t0 = time.perf_counter()
    os.makedirs(root, exist_ok=True)
    run_file = os.path.join(root, RUN_CONFIG_FILE)
    if os.path.exists(run_file):
        with open(run_file, "r", encoding="utf-8") as fh:
            stored = json.load(fh)
        stored_config = CorpusConfig.from_dict(stored.get("config", {}))
        if stored_config != config:
            raise CorpusError(
                f"corpus at {root} was started with {stored_config.as_dict()}; "
                f"refusing to continue it with {config.as_dict()}"
            )
        if not resume:
            raise CorpusError(
                f"corpus at {root} already exists; pass resume=True to "
                "continue it or use a fresh directory"
            )
    else:
        diskstore.write_json_atomic(
            run_file, {"schema": RUN_SCHEMA, "config": config.as_dict()}
        )

    with span("corpus") as corpus_span:
        ranges = config.shard_ranges()
        pending = []
        by_shard: Dict[int, List[Dict[str, Any]]] = {}
        for shard, (lo, hi) in enumerate(ranges):
            state = load_shard(shard_path(root, shard), lo, hi)
            if state.next_seed >= hi:
                by_shard[shard] = state.records
            else:
                pending.append(shard)

        n_workers = min(workers or 1, max(len(pending), 1))
        if n_workers <= 1 or len(pending) <= 1:
            for shard in pending:
                by_shard[shard] = run_shard(config, shard, root)
        else:
            trace = tracing_enabled()
            jobs = [(config.as_dict(), shard, root, trace) for shard in pending]
            ctx = multiprocessing.get_context()
            with ctx.Pool(processes=n_workers) as pool:
                for shard, records, snapshot in pool.imap_unordered(
                    _shard_worker, jobs
                ):
                    by_shard[shard] = records
                    if snapshot is not None:
                        merge_worker_snapshot(snapshot)

        records = [r for shard in range(config.shards) for r in by_shard[shard]]
        census = census_from_records(records)
        wall = time.perf_counter() - t0
        annotate(corpus_span, population=census.population, shards=config.shards)
        manifest = build_manifest(config, records, wall_seconds=wall)
        diskstore.write_json_atomic(os.path.join(root, MANIFEST_FILE), manifest)
    return CorpusResult(
        config=config,
        root=root,
        records=records,
        census=census,
        manifest=manifest,
        wall_seconds=wall,
    )


# ---------------------------------------------------------------------------
# Aggregation and packaging
# ---------------------------------------------------------------------------


def census_from_records(records: Iterable[Dict[str, Any]]) -> Census:
    """Rebuild the census aggregates from committed verdict records.

    Produces exactly what :func:`repro.analysis.census.run_census` would
    for the same seeds (isomorphic tasks share all census-relevant verdict
    fields), which is what makes interrupted-and-resumed corpus runs
    bit-identical to uninterrupted ones.
    """
    census = Census()
    for record in records:
        census.population += 1
        status = record["status"]
        if status == "solvable":
            census.solvable += 1
            census.witness_depths[record["witness_rounds"]] += 1
        elif status == "unsolvable":
            census.unsolvable += 1
        else:
            census.unknown += 1
        census.certificates[record["certificate"]] += 1
        census.splits_histogram[int(record["n_splits"])] += 1
    return census


def dedup_stats(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Population / decided / dedup-hit counts and the overall dedup rate."""
    population = decided = hits = 0
    distinct = set()
    decide_seconds = 0.0
    for record in records:
        population += 1
        distinct.add(record["canon_hash"])
        if record["dedup"]:
            hits += 1
        else:
            decided += 1
            decide_seconds += float(record["runtime"])
    return {
        "population": population,
        "decided": decided,
        "dedup_hits": hits,
        "distinct_hashes": len(distinct),
        "rate": (hits / population) if population else 0.0,
        "decide_seconds": decide_seconds,
    }


def build_manifest(
    config: CorpusConfig,
    records: List[Dict[str, Any]],
    wall_seconds: float,
) -> Dict[str, Any]:
    """Package a completed run into a ``repro-corpus/1`` manifest."""
    census = census_from_records(records)
    stats = dedup_stats(records)
    decide_seconds = stats.pop("decide_seconds")
    return {
        "schema": SCHEMA,
        # wall-clock metadata for trend reading, never part of verification
        "created_unix": time.time(),  # repro: ignore[RC405]
        "config": config.as_dict(),
        "population": census.population,
        "dedup": stats,
        "census": {
            "solvable": census.solvable,
            "unsolvable": census.unsolvable,
            "unknown": census.unknown,
            "certificates": dict(census.certificates),
            "witness_depths": {
                str(depth): count for depth, count in census.witness_depths.items()
            },
            "splits_histogram": {
                str(splits): count
                for splits, count in census.splits_histogram.items()
            },
        },
        "throughput": {
            "wall_seconds": wall_seconds,
            "decide_seconds": decide_seconds,
            "tasks_per_second": (
                census.population / wall_seconds if wall_seconds > 0 else 0.0
            ),
        },
        "verdicts": [
            [
                record["seed"],
                record["canon_hash"],
                record["status"],
                record["certificate"],
                record["witness_rounds"],
                record["n_splits"],
            ]
            for record in records
        ],
    }


def census_from_manifest(payload: Dict[str, Any]) -> Census:
    """Reconstruct the ``Census`` a manifest's census section describes."""
    section = payload["census"]
    census = Census()
    census.population = int(payload["population"])
    census.solvable = int(section["solvable"])
    census.unsolvable = int(section["unsolvable"])
    census.unknown = int(section["unknown"])
    census.certificates.update(
        {kind: int(count) for kind, count in section["certificates"].items()}
    )
    census.witness_depths.update(
        {int(depth): int(count) for depth, count in section["witness_depths"].items()}
    )
    census.splits_histogram.update(
        {int(k): int(count) for k, count in section["splits_histogram"].items()}
    )
    return census


def load_manifest(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    problems = validate_manifest(payload)
    if problems:
        raise CorpusError(f"{path}: " + "; ".join(problems))
    return payload


def validate_manifest(payload: Any) -> List[str]:
    """Schema-check a manifest; returns problems (empty = valid)."""
    problems: List[str] = []

    def expect(cond: bool, msg: str) -> bool:
        if not cond:
            problems.append(msg)
        return cond

    if not expect(isinstance(payload, dict), "manifest must be a JSON object"):
        return problems
    expect(payload.get("schema") == SCHEMA, f"schema must be {SCHEMA!r}")
    config = payload.get("config")
    if expect(isinstance(config, dict), "config must be an object"):
        try:
            CorpusConfig.from_dict(config).validate()
        except CorpusError as exc:
            problems.append(str(exc))
    for key in ("population", "dedup", "census", "throughput", "verdicts"):
        expect(key in payload, f"missing key {key!r}")
    verdicts = payload.get("verdicts")
    if expect(isinstance(verdicts, list), "verdicts must be a list"):
        expect(
            payload.get("population") == len(verdicts),
            f"population {payload.get('population')} != {len(verdicts)} verdict rows",
        )
        for i, row in enumerate(verdicts):
            if not (
                isinstance(row, list)
                and len(row) == 6
                and isinstance(row[0], int)
                and isinstance(row[1], str)
                and row[2] in ("solvable", "unsolvable", "unknown")
            ):
                problems.append(f"verdicts[{i}] is not a [seed, hash, status, certificate, witness_rounds, n_splits] row")
                break
    dedup = payload.get("dedup")
    if isinstance(dedup, dict) and isinstance(verdicts, list):
        expect(
            dedup.get("decided", 0) + dedup.get("dedup_hits", 0)
            == payload.get("population"),
            "dedup decided + hits must equal the population",
        )
    return problems


def verify_manifest(
    payload: Dict[str, Any], limit: Optional[int] = None
) -> List[str]:
    """Replay a manifest's verdicts; returns drift descriptions (empty = ok).

    Every row's task is regenerated from its seed, re-hashed, and —
    mirroring the corpus dedup so replay stays fast — re-decided once per
    isomorphism class.  Any difference in canonical hash, status,
    certificate, witness depth or split count is drift: either the
    generator, the hashing, or the decision procedure changed behavior.
    """
    problems = validate_manifest(payload)
    if problems:
        return [f"invalid manifest: {p}" for p in problems]
    config = CorpusConfig.from_dict(payload["config"])
    generator = config.generator_fn()
    rows = payload["verdicts"]
    if limit is not None:
        rows = rows[:limit]
    drift: List[str] = []
    seen: Dict[str, Tuple[str, str, Any, int]] = {}
    for seed, canon, status, certificate, witness_rounds, n_splits in rows:
        task = generator(seed)
        got_hash = canon_hash(task)
        if got_hash != canon:
            drift.append(
                f"seed {seed}: canonical hash {got_hash} != recorded {canon}"
            )
            continue
        got = seen.get(canon)
        if got is None:
            verdict = _decide_with_store(task, config.max_rounds)
            record = _record_from_verdict(seed, canon, verdict, 0.0)
            got = (
                record["status"],
                record["certificate"],
                record["witness_rounds"],
                record["n_splits"],
            )
            seen[canon] = got
        expected = (status, certificate, witness_rounds, n_splits)
        if got != expected:
            drift.append(
                f"seed {seed}: verdict {got} != recorded {expected}"
            )
    return drift


__all__ = [
    "DEFAULT_ROOT",
    "GENERATORS",
    "MANIFEST_FILE",
    "RUN_CONFIG_FILE",
    "RUN_SCHEMA",
    "SCHEMA",
    "CorpusConfig",
    "CorpusError",
    "CorpusResult",
    "ShardState",
    "build_manifest",
    "canon_hash",
    "census_from_manifest",
    "census_from_records",
    "dedup_stats",
    "load_manifest",
    "load_shard",
    "run_corpus",
    "run_shard",
    "shard_path",
    "validate_manifest",
    "verify_manifest",
]
