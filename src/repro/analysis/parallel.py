"""Parallel census engine: fan a task population out over worker processes.

The census is embarrassingly parallel — every task is generated from its
own seed and decided independently, and :class:`~repro.analysis.census.Census`
aggregation is commutative — so the population can be sharded over
:mod:`multiprocessing` workers freely:

* **deterministic per-task seeding** — each worker regenerates its tasks
  from the seeds it is handed, so the partition of seeds into chunks (and
  the completion order of chunks) cannot change any aggregate;
* **chunked scheduling** — seeds are dispatched in contiguous chunks of
  ``chunksize`` to amortize process round-trips, and each worker returns
  one pre-aggregated :class:`Census` per chunk (verdict objects, which drag
  whole complexes along, never cross the process boundary);
* **merged aggregation** — the parent folds worker censuses together with
  :meth:`Census.merge` as they complete.

``parallel_census(seeds) == run_census(seeds)`` (as aggregates) for every
seed list, worker count and chunk size; ``tests/test_parallel_census.py``
pins this down, including the 1-worker degenerate case.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs import capture_worker, merge_worker_snapshot, tracing_enabled
from ..tasks.task import Task
from ..tasks.zoo.random_tasks import random_single_input_task, random_sparse_task
from .census import Census, run_census


def default_workers() -> int:
    """Worker count when unspecified: the machine's CPU count."""
    return os.cpu_count() or 1


def adaptive_chunksize(population: int, workers: int) -> int:
    """Derive a chunk size from the population and the worker count.

    Two regimes:

    * **oversubscribed** (``workers >= cpu_count``): extra chunks only add
      dispatch round-trips, since no idle CPU exists to steal them — use
      one contiguous chunk per worker;
    * **undersubscribed**: split each worker's fair share into ~4 chunks
      so the pool's dynamic dispatch rebalances uneven task costs (random
      tasks vary wildly in decision time), without paying per-seed
      round-trip overhead.

    Degenerate configurations are rejected loudly rather than silently
    clamped.
    """
    if population < 1:
        raise ValueError(
            f"cannot derive a chunksize for an empty population ({population=})"
        )
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    per_worker = -(-population // workers)  # ceil
    if workers >= (os.cpu_count() or 1):
        return per_worker
    return max(1, -(-per_worker // 4))


def _chunks(seeds: Sequence[int], chunksize: int) -> List[Sequence[int]]:
    return [seeds[i : i + chunksize] for i in range(0, len(seeds), chunksize)]


def _census_chunk(args) -> Tuple[Census, Optional[Dict[str, Any]]]:
    """Worker entry point: decide one chunk of seeds, return its census.

    When the dispatching parent had tracing enabled, the chunk runs under
    :func:`repro.obs.capture_worker` and the second element carries the
    worker's span/counter/cache snapshot back for aggregation — without
    it, every cache hit and search counter accumulated in the worker
    would vanish with the process.
    """
    generator, seeds, max_rounds, trace = args
    if not trace:
        return run_census(seeds, generator=generator, max_rounds=max_rounds), None
    with capture_worker() as capture:
        census = run_census(seeds, generator=generator, max_rounds=max_rounds)
    return census, capture.snapshot


def parallel_census(
    seeds: Iterable[int],
    generator: Callable[[int], Task] = random_single_input_task,
    max_rounds: int = 1,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Census:
    """Decide a seeded population in parallel and merge the aggregates.

    Parameters
    ----------
    seeds:
        The population, one task per seed (any iterable of ints).
    generator:
        A picklable (module-level) ``seed -> Task`` function.
    max_rounds:
        Iterative-deepening budget passed through to ``decide_solvability``.
    workers:
        Process count; defaults to :func:`default_workers`.  Must be at
        least 1 when given; ``workers == 1`` runs serially in-process (the
        degenerate case — no pool is spawned).
    chunksize:
        Seeds per dispatched work item; must be at least 1.  ``None``
        (the default) derives it from the population and worker count via
        :func:`adaptive_chunksize`.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``, …);
        ``None`` uses the platform default.

    Returns the same aggregates :func:`~repro.analysis.census.run_census`
    would produce for ``seeds`` — scheduling cannot leak into the result.

    When tracing is enabled (:mod:`repro.obs`), each chunk additionally
    returns the worker's span/counter/cache snapshot and the parent
    merges them, so the exported trace reports *aggregate* cache hit
    rates across every process (equal to the ``workers=1`` aggregates on
    the same workload).
    """
    seed_list = list(seeds)
    if chunksize is not None and chunksize < 1:
        raise ValueError(
            f"chunksize must be at least 1, got {chunksize} "
            "(pass None to derive it from the population and worker count)"
        )
    if workers is not None and workers < 1:
        raise ValueError(
            f"workers must be at least 1, got {workers} "
            "(pass None to use one process per CPU)"
        )
    n_workers = default_workers() if workers is None else workers
    if n_workers <= 1 or len(seed_list) <= 1:
        return run_census(seed_list, generator=generator, max_rounds=max_rounds)
    if chunksize is None:
        chunksize = adaptive_chunksize(len(seed_list), n_workers)

    trace = tracing_enabled()
    jobs = [
        (generator, chunk, max_rounds, trace)
        for chunk in _chunks(seed_list, chunksize)
    ]
    n_workers = min(n_workers, len(jobs))
    ctx = (
        multiprocessing.get_context(start_method)
        if start_method is not None
        else multiprocessing.get_context()
    )
    # Warm the parent's interning tables and memo caches with the first
    # chunk's tasks before forking, then freeze the heap: fork-sharing the
    # warmed read-only structures keeps the workers' copy-on-write pages
    # intact (the freeze stops the cycle collector from touching shared
    # refcount/gc headers), so workers start from shared warm tables
    # instead of rebuilding vertex/simplex pools from scratch.
    prewarm = [generator(s) for s in jobs[0][1]]
    gc.freeze()
    merged = Census()
    try:
        with ctx.Pool(processes=n_workers) as pool:
            for part, snapshot in pool.imap_unordered(_census_chunk, jobs):
                merged.merge(part)
                if snapshot is not None:
                    merge_worker_snapshot(snapshot)
    finally:
        gc.unfreeze()
        del prewarm
    return merged


def parallel_sparse_census(
    seeds: Iterable[int],
    max_rounds: int = 1,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Census:
    """Parallel census over the sparser (LAP-richer) random family."""
    return parallel_census(
        seeds,
        generator=random_sparse_task,
        max_rounds=max_rounds,
        workers=workers,
        chunksize=chunksize,
        start_method=start_method,
    )
