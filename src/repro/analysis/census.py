"""Population studies over random tasks.

The paper identifies two obstruction species — local articulation points
(decidable) and contractibility (undecidable in general).  The census runs
the decision procedure over a seeded population of random tasks and counts
how often each certificate fires, how many splits the pipeline performs
and how deep the witnesses sit — a quantitative picture of the
characterization at work.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..obs import annotate, counter_add, gauge_set, set_gauge_policy, span
from ..solvability.decision import SolvabilityVerdict, Status, decide_solvability
from ..tasks.task import Task
from ..tasks.zoo.random_tasks import random_single_input_task, random_sparse_task
from ..topology import diskstore


@dataclass
class Census:
    """Aggregated outcomes over a task population."""

    population: int = 0
    solvable: int = 0
    unsolvable: int = 0
    unknown: int = 0
    certificates: Counter = field(default_factory=Counter)
    witness_depths: Counter = field(default_factory=Counter)
    splits_histogram: Counter = field(default_factory=Counter)

    def add(self, verdict) -> None:
        self.population += 1
        if verdict.status is Status.SOLVABLE:
            self.solvable += 1
            self.witness_depths[verdict.witness_rounds] += 1
            self.certificates["witness-map"] += 1
        elif verdict.status is Status.UNSOLVABLE:
            self.unsolvable += 1
            self.certificates[verdict.obstruction.kind] += 1
        else:
            self.unknown += 1
            self.certificates["unknown"] += 1
        self.splits_histogram[int(verdict.stats.get("n_splits", 0))] += 1

    def merge(self, other: "Census") -> "Census":
        """Fold another census into this one (in place); returns ``self``.

        Aggregation is commutative and associative, so parallel workers can
        be merged in any completion order without changing the result.
        """
        self.population += other.population
        self.solvable += other.solvable
        self.unsolvable += other.unsolvable
        self.unknown += other.unknown
        self.certificates.update(other.certificates)
        self.witness_depths.update(other.witness_depths)
        self.splits_histogram.update(other.splits_histogram)
        return self

    def as_tuple(self) -> tuple:
        """A canonical, order-independent snapshot of every aggregate.

        Two censuses over the same population are equal iff their tuples
        are — the parallel-vs-serial parity tests compare these.
        """
        return (
            self.population,
            self.solvable,
            self.unsolvable,
            self.unknown,
            tuple(sorted(self.certificates.items())),
            tuple(sorted(self.witness_depths.items(), key=repr)),
            tuple(sorted(self.splits_histogram.items())),
        )

    def rows(self) -> List[Dict]:
        """Summary rows for benchmark reporting."""
        return [
            {
                "population": self.population,
                "solvable": self.solvable,
                "unsolvable": self.unsolvable,
                "unknown": self.unknown,
                "certificates": dict(self.certificates),
                "witness_depths": {
                    depth: count
                    for depth, count in sorted(
                        self.witness_depths.items(), key=lambda kv: repr(kv[0])
                    )
                },
                "max_splits": max(self.splits_histogram, default=0),
            }
        ]


def _decide_with_store(task: Task, max_rounds: int) -> SolvabilityVerdict:
    """Decide one census task, through the persistent verdict cache.

    A census verdict is a pure function of the (content-hashed) task and
    the deepening budget, so repeated populations — successive CLI runs,
    benchmark repeats, pool workers after a warm-up pass — load it from
    :mod:`repro.topology.diskstore` instead of re-deciding.

    A cache hit returns before any ``decide`` span or search counter is
    recorded, so warm-store traces would otherwise look implausibly fast
    with no explanation; the explicit ``census.verdict_cache.hit`` /
    ``.miss`` counters name the shortcut (and, being seed-deterministic,
    must agree between serial and pooled runs over the same store state —
    pinned by ``tests/test_parallel_census.py``).
    """
    cache_key = None
    if diskstore.store_enabled():
        cache_key = diskstore.content_hash(
            f"{diskstore.task_key(task)}:rounds={max_rounds}"
        )
        cached = diskstore.load("verdict", cache_key)
        if isinstance(cached, SolvabilityVerdict):
            counter_add("census.verdict_cache.hit")
            return cached
        counter_add("census.verdict_cache.miss")
    verdict = decide_solvability(task, max_rounds=max_rounds)
    if cache_key is not None:
        diskstore.store("verdict", cache_key, verdict)
    return verdict


def run_census(
    seeds,
    generator: Callable[[int], Task] = random_single_input_task,
    max_rounds: int = 1,
) -> Census:
    """Decide every generated task and aggregate the outcomes."""
    census = Census()
    with span("census") as census_span:
        for seed in seeds:
            task = generator(seed)
            census.add(_decide_with_store(task, max_rounds))
            counter_add("census.tasks")
        annotate(census_span, population=census.population)
        # seed-determined, so under the declared "max" merge policy the
        # aggregate is identical however the pool partitions the seeds
        set_gauge_policy("census.max_splits", "max")
        gauge_set("census.max_splits", max(census.splits_histogram, default=0))
    return census


def sparse_census(seeds, max_rounds: int = 1) -> Census:
    """Census over the sparser (LAP-richer) random family."""
    return run_census(seeds, generator=random_sparse_task, max_rounds=max_rounds)
