"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the built-in task zoo.
``analyze <task>``
    Run the full characterization on a zoo task (by name) or a task JSON
    file; prints the report, optionally dumps DOT drawings and JSON.
``synthesize <task>``
    Synthesize an executable protocol for a solvable task and validate it
    on the shared-memory simulator.
``census``
    Decide a population of random tasks and print the certificate counts.
``conform``
    Run the conformance campaign: decide, synthesize and cross-check every
    SOLVABLE verdict against executions over the full schedule space
    (solo / random / adversarial / exhaustive), with violation shrinking
    and JSON reports (see ``docs/runtime_conformance.md``).
``check``
    Statically verify task invariants (stable ``RCxxx`` diagnostics, with
    witnesses), or lint the library sources themselves (``--self``).
``decide``
    Run just the solvability decision on one task and print the verdict
    with its certificate (obstruction kind or witness depth); ``--json``
    writes the same ``repro-verdict/1`` document the service serves.
``serve``
    Run the solvability verdict server: an asyncio HTTP frontend over a
    content-addressed verdict cache and a batched worker pool
    (``POST /v1/solve``, ``GET /metrics`` Prometheus/JSON exposition,
    ``--access-log`` structured JSONL; see ``docs/service.md``).
``serve-bench``
    Replay zipf-skewed duplicate-heavy load against the server (an
    in-process one by default, ``--url`` for an external one) and emit
    a ``repro-perf/1`` report with hit-rate/p50/p99 numbers.
``serve-soak``
    Sustain zipf load for ``--duration`` seconds while scraping
    ``/metrics``, fit post-warmup growth slopes for RSS/keymap/cache,
    and exit 1 when any declared ``--max-*-growth`` budget is exceeded;
    emits an ingestable ``repro-soak/1`` report.
``trace``
    Work with ``repro-trace/1`` JSON exports produced by ``--trace``:
    ``trace summary`` pretty-prints the span tree and aggregate counters
    (``--top``/``--sort``/``--min-ms`` tame census-sized traces),
    ``trace validate`` schema-checks one or more files (for CI),
    ``trace flame`` emits collapsed stacks for flamegraph.pl/speedscope,
    ``trace export --chrome`` emits Chrome trace-event JSON.
``obs``
    Query the persistent telemetry store every traced invocation appends
    to (``repro-run/1`` JSONL; ``--store`` flag > ``REPRO_TELEMETRY``
    env > ``.repro/telemetry.jsonl``): ``obs trend`` renders per-metric
    history, ``obs diff`` compares two runs under a noise-tolerant
    threshold model and exits non-zero on regression, ``obs ingest``
    folds ``benchmarks/BENCH_*.json`` perf reports into the store,
    ``obs validate`` schema-checks the store, ``obs list`` shows runs.

Exit codes
----------

Every command follows the same convention:

* ``0`` — success: the command completed and the answer is definitive
  (task decided, campaign clean, report valid).
* ``1`` — failure: violations found, synthesis failed, check findings,
  or an invalid/unreadable input file.
* ``2`` — inconclusive (the decision procedure returned ``UNKNOWN``
  within its budgets), or a usage error (argparse).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Dict

from . import obs

from .analysis import (
    analyze_task,
    parallel_census,
    parallel_sparse_census,
    run_census,
    sparse_census,
)
from .analysis import corpus as corpus_mod
from .check.cli import add_check_parser
from .check.preflight import PreflightError, preflight_check
from .io import save_task, task_to_json
from .runtime.conformance import (
    ConformanceConfig,
    census_slice,
    run_campaign,
)
from .service import execution as service_execution
from .service.protocol import ProtocolError, ServiceRequest
from .solvability import Status
from .splitting import link_connected_form
from .tasks.task import Task
from .topology.dot import write_dot

#: name -> zero-argument constructor for every CLI-addressable zoo task
#: (re-exported from the shared request/response layer, which owns the
#: registry now that the CLI and the service resolve specs identically)
ZOO: Dict[str, Callable[[], Task]] = service_execution.ZOO


def _resolve_task(spec: str) -> Task:
    """Resolve a spec through the shared layer; usage errors exit."""
    try:
        return service_execution.resolve_task(spec)
    except ProtocolError as exc:
        raise SystemExit(str(exc)) from exc


def _execute(req: ServiceRequest) -> service_execution.ExecutionOutcome:
    """Run one request through the shared layer; usage errors exit."""
    try:
        return service_execution.execute_request(req)
    except ProtocolError as exc:
        raise SystemExit(str(exc)) from exc


@contextlib.contextmanager
def _tracing_to(args, command: str, task: str | None = None):
    """Trace the wrapped command per its ``--trace``/``--store`` flags.

    A no-op unless the command asked for observability via ``--trace``
    (write a ``repro-trace/1`` JSON export), ``--store`` (append a
    ``repro-run/1`` record to an explicit telemetry store) or
    ``--profile-memory`` (tracemalloc peak-bytes span attrs).  Resets
    the session recorder so the export covers exactly this command,
    enables tracing for its duration, and exports on the way out —
    including when the command fails, so a crashing run still leaves
    its trace.

    Every traced invocation also appends one run record to the
    telemetry store (``--store`` > ``REPRO_TELEMETRY`` >
    ``.repro/telemetry.jsonl``), which is what ``obs trend`` / ``obs
    diff`` query — the cross-commit history a single trace file cannot
    provide.
    """
    trace_path = getattr(args, "trace", None)
    store_arg = getattr(args, "store", None)
    profile_memory = bool(getattr(args, "profile_memory", False))
    if not (trace_path or store_arg or profile_memory):
        yield
        return
    obs.reset_recorder()
    previous = obs.set_tracing(True)
    previous_mem = obs.set_memory_profiling(True) if profile_memory else None
    try:
        yield
    finally:
        obs.set_tracing(previous)
        if previous_mem is not None:
            obs.set_memory_profiling(previous_mem)
        if trace_path:
            payload = obs.write_trace(trace_path, meta={"command": command})
            print(f"wrote {trace_path}")
        else:
            payload = obs.build_trace(meta={"command": command})
        record = obs.build_run_record(
            payload,
            command=command.split()[0],
            argv=list(getattr(args, "_argv", []) or []),
            task=task,
        )
        store_path = obs.append_run(record, obs.resolve_store_path(store_arg))
        print(f"recorded run {record['run_id']} in {store_path}")


def cmd_decide(args) -> int:
    task = _resolve_task(args.task)
    req = ServiceRequest(
        op="decide", task=args.task, params={"max_rounds": args.max_rounds}
    )
    with _tracing_to(args, f"decide {args.task}", task=args.task):
        outcome = _execute(req)
    verdict = outcome.verdict
    print(f"task:    {task.name or args.task}")
    print(f"status:  {verdict.status.value}")
    if verdict.status is Status.UNSOLVABLE:
        print(f"certificate: obstruction {verdict.obstruction.kind}")
        print(f"  {verdict.obstruction.detail}")
    elif verdict.status is Status.SOLVABLE:
        print(f"certificate: witness map at r={verdict.witness_rounds}")
    else:
        print("certificate: none (budgets exhausted)")
    for key in sorted(verdict.stats):
        print(f"  stats.{key} = {verdict.stats[key]}")
    if args.json:
        # the same repro-verdict/1 document the service serves for this
        # spec — canonically ordered so the two are bit-identical
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(outcome.response["verdict"], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return outcome.exit_code


def _load_trace(path: str):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh), []
    except (OSError, ValueError) as exc:
        return None, [f"{path}: cannot read trace: {exc}"]


def _load_valid_trace(path: str):
    """One validated trace payload, or ``None`` after printing problems."""
    payload, problems = _load_trace(path)
    problems.extend(obs.validate_trace(payload) if payload is not None else [])
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        return None
    return payload


def cmd_trace(args) -> int:
    if args.action == "summary":
        payload = _load_valid_trace(args.files[0])
        if payload is None:
            return 1
        print(
            obs.format_trace_summary(
                payload,
                max_depth=args.max_depth,
                top=args.top,
                sort=args.sort,
                min_ms=args.min_ms,
            )
        )
        return 0
    if args.action == "flame":
        payload = _load_valid_trace(args.files[0])
        if payload is None:
            return 1
        if args.out:
            n = obs.write_folded(args.out, payload, metric=args.metric)
            print(f"wrote {n} folded stack(s) to {args.out}")
        else:
            print(obs.format_profile(payload, metric=args.metric))
        return 0
    if args.action == "export":
        if not args.chrome:
            raise SystemExit(
                "trace export needs an output format: pass --chrome "
                "(Chrome trace-event JSON for chrome://tracing/Perfetto)"
            )
        payload = _load_valid_trace(args.files[0])
        if payload is None:
            return 1
        if args.out:
            obs.write_chrome_trace(args.out, payload)
            print(f"wrote {args.out}")
        else:
            print(json.dumps(obs.chrome_trace(payload), indent=2, sort_keys=True))
        return 0
    failures = 0
    for path in args.files:
        payload, problems = _load_trace(path)
        if payload is not None:
            problems.extend(obs.validate_trace(payload))
        if problems:
            failures += 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: valid {obs.SCHEMA}")
    return 1 if failures else 0


def cmd_obs(args) -> int:
    store_path = obs.resolve_store_path(args.store)
    if args.action == "ingest":
        if not args.refs:
            raise SystemExit("obs ingest needs one or more BENCH_*.json files")
        failures = 0
        for path in args.refs:
            try:
                record = obs.load_record_file(path)
            except (OSError, ValueError) as exc:
                print(f"{path}: {exc}", file=sys.stderr)
                failures += 1
                continue
            obs.append_run(record, store_path)
            print(f"ingested {path} as run {record['run_id']}")
        return 1 if failures else 0

    records, problems = obs.load_store(store_path)
    for problem in problems:
        print(problem, file=sys.stderr)

    if args.action == "validate":
        if problems:
            return 1
        if not records:
            print(f"{store_path}: no runs recorded", file=sys.stderr)
            return 1
        print(f"{store_path}: {len(records)} valid {obs.RUN_SCHEMA} record(s)")
        return 0

    if args.action == "list":
        if not records:
            print("telemetry store is empty (record runs with --trace/--store first)")
            return 0
        for record in records:
            spans = record.get("spans", {})
            wall = sum(entry["wall_seconds"] for entry in spans.values())
            print(
                f"{record['run_id']}  "
                f"{record['command']:<12} {record.get('task') or '':<12} "
                f"{wall:8.3f}s  sha={str(record.get('git_sha') or '?')[:9]}"
            )
        return 0

    if args.action == "trend":
        print(
            obs.format_trend(
                records,
                metric=args.metric,
                last=args.last,
                command=args.command_filter,
            )
        )
        return 0

    # diff: --baseline FILE vs latest matching run, or two run references
    thresholds = obs.Thresholds(
        min_seconds=args.min_seconds,
        rel_tolerance=args.rel_tol,
        counter_tolerance=args.counter_tol,
        cache_tolerance=args.cache_tol,
    )
    try:
        if args.baseline:
            before = obs.load_record_file(args.baseline)
            if args.refs:
                after = obs.find_run(records, args.refs[0])
            else:
                # same command AND same task: diffing `decide majority`
                # against `decide identity` would chart apples vs oranges
                pool = [
                    r
                    for r in records
                    if before.get("task") is None
                    or r.get("task") == before["task"]
                ]
                after = obs.latest_run(pool, command=before["command"])
                if after is None:
                    what = before["command"] + (
                        f" {before['task']}" if before.get("task") else ""
                    )
                    raise ValueError(
                        f"store {store_path} has no {what!r} run to "
                        "compare against the baseline"
                    )
        else:
            if len(args.refs) != 2:
                raise ValueError(
                    "obs diff needs two run references (id prefix or index), "
                    "or --baseline FILE [REF]"
                )
            before = obs.find_run(records, args.refs[0])
            after = obs.find_run(records, args.refs[1])
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    deltas = obs.diff_records(before, after, thresholds)
    print(obs.format_diff(before, after, deltas, show_ok=args.show_ok))
    return 1 if obs.regressions(deltas) else 0


def cmd_list(_args) -> int:
    width = max(len(n) for n in ZOO)
    for name in sorted(ZOO):
        task = ZOO[name]()
        print(
            f"{name:<{width}}  n={task.n_processes}  "
            f"|I|={len(task.input_complex.facets):>2} facets  "
            f"|O|={len(task.output_complex.facets):>3} facets"
        )
    return 0


def cmd_analyze(args) -> int:
    task = _resolve_task(args.task)
    if args.validate:
        try:
            preflight_check(task)
        except PreflightError as exc:
            raise SystemExit(str(exc)) from exc
    req = ServiceRequest(
        op="analyze", task=args.task, params={"max_rounds": args.max_rounds}
    )
    with _tracing_to(args, f"analyze {args.task}", task=args.task):
        outcome = _execute(req)
    report = outcome.report
    print(report)
    if args.dot:
        write_dot(task.output_complex, f"{args.dot}-output.dot")
        if report.transform is not None:
            write_dot(
                report.transform.task.output_complex, f"{args.dot}-split.dot"
            )
        print(f"wrote {args.dot}-output.dot")
    if args.json:
        payload = {
            "task": task_to_json(task),
            "verdict": report.verdict.status.value,
            "splits": report.n_splits,
            "laps": report.lap_count,
            "o_prime_components": report.o_prime_components,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    if args.save_split and report.transform is not None:
        save_task(report.transform.task, args.save_split)
        print(f"wrote {args.save_split}")
    return outcome.exit_code


def cmd_synthesize(args) -> int:
    _resolve_task(args.task)  # usage errors (unknown spec) exit before tracing
    req = ServiceRequest(
        op="synthesize",
        task=args.task,
        params={
            "max_rounds": args.max_rounds,
            "figure7": args.figure7,
            "runs": args.runs,
            "facets_only": args.facets_only,
        },
    )
    with _tracing_to(args, f"synthesize {args.task}", task=args.task):
        # only the documented failure modes (SynthesisError, budget
        # exhaustion, preflight rejection) come back as ok:false here;
        # a programming error propagates with its traceback intact
        outcome = _execute(req)
    if not outcome.response["ok"]:
        message = outcome.response["error"]["message"]
        print(f"synthesis failed: {message}", file=sys.stderr)
        return outcome.exit_code
    protocol = outcome.protocol
    print(f"synthesized {protocol.mode} protocol, r={protocol.rounds}")
    report = outcome.validation
    status = "all executions legal" if report.ok else "VIOLATIONS FOUND"
    print(f"validated over {report.runs} executions: {status}")
    for v in report.violations[:3]:
        print(f"  {v}")
    return outcome.exit_code


def cmd_serve(args) -> int:
    import asyncio

    from .service.server import ServerConfig, SolvabilityServer
    from .service.workers import POOL_KINDS

    if args.pool not in POOL_KINDS:
        raise SystemExit(f"--pool must be one of {POOL_KINDS}, got {args.pool!r}")
    config = ServerConfig(
        host=args.host,
        port=args.port,
        shards=args.shards,
        batch_size=args.batch_size,
        workers=args.workers,
        pool=args.pool,
        persist=not args.no_persist,
        access_log=args.access_log,
        sample_interval=args.sample_interval,
    )
    server = SolvabilityServer(config)

    async def _run() -> None:
        await server.start()
        print(
            f"serving on http://{config.host}:{server.port} "
            f"(pool={config.pool}, workers={config.workers}, "
            f"shards={config.shards}, persist={config.persist})",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_serve_bench(args) -> int:
    from .service import bench as service_bench
    from .service.server import ServerConfig

    config = ServerConfig(
        shards=args.shards,
        batch_size=args.batch_size,
        workers=args.workers,
        pool=args.pool,
        persist=not args.no_persist,
    )
    with _tracing_to(args, "serve-bench"):
        try:
            result = service_bench.run_service_bench(
                requests=args.requests,
                concurrency=args.concurrency,
                pool_size=args.pool_size,
                skew=args.zipf,
                seed=args.seed,
                passes=args.passes,
                replay=args.replay,
                url=args.url,
                server_config=config,
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
    print(service_bench.format_summary(result))
    if args.out:
        result["harness"].write(args.out)
        print(f"wrote {args.out}")
    problems = service_bench.check_gates(
        result, min_hit_rate=args.min_hit_rate, max_p99_ms=args.max_p99_ms
    )
    for problem in problems:
        print(f"GATE: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_serve_soak(args) -> int:
    import json as _json

    from .service import soak as service_soak
    from .service.server import ServerConfig

    config = ServerConfig(
        shards=args.shards,
        batch_size=args.batch_size,
        workers=args.workers,
        pool=args.pool,
        persist=not args.no_persist,
        access_log=args.access_log,
        sample_interval=args.sample_interval,
    )
    budgets = service_soak.SoakBudgets(
        rss_bytes_per_s=args.max_rss_growth,
        keymap_entries_per_s=args.max_keymap_growth,
        cache_entries_per_s=args.max_cache_growth,
    )
    with _tracing_to(args, "serve-soak"):
        try:
            report = service_soak.run_soak(
                duration=args.duration,
                concurrency=args.concurrency,
                requests=args.requests,
                pool_size=args.pool_size,
                skew=args.zipf,
                seed=args.seed,
                scrape_interval=args.scrape_interval,
                warmup_fraction=args.warmup_fraction,
                budgets=budgets,
                url=args.url,
                server_config=config,
                scrapes_path=args.scrapes_out,
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
    print(service_soak.format_soak_summary(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    for problem in report["over_budget"]:
        print(f"GATE: {problem}", file=sys.stderr)
    return 0 if report["passed"] else 1


def cmd_census(args) -> int:
    if args.seeds < 0:
        raise SystemExit(f"--seeds must be non-negative, got {args.seeds}")
    if args.chunksize is not None and args.chunksize < 1:
        raise SystemExit(
            f"--chunksize must be at least 1 (got {args.chunksize}); it is the "
            "number of seeds dispatched per work item (omit the flag to derive "
            "it from the population and worker count)"
        )
    if args.workers is not None and args.workers < 1:
        raise SystemExit(
            f"--workers must be at least 1 (got {args.workers}); omit the flag "
            "to use one process per CPU"
        )
    if args.verify is not None:
        return _cmd_census_verify(args)
    if args.corpus is not None:
        return _cmd_census_corpus(args)
    if args.resume:
        raise SystemExit("--resume only makes sense with --corpus DIR")
    if args.shards != 1:
        raise SystemExit("--shards only makes sense with --corpus DIR")
    with _tracing_to(args, f"census --seeds {args.seeds}"):
        if args.workers is not None and args.workers != 1:
            runner = parallel_sparse_census if args.sparse else parallel_census
            census = runner(
                range(args.seeds),
                max_rounds=args.max_rounds,
                workers=args.workers,
                chunksize=args.chunksize,
            )
        else:
            runner = sparse_census if args.sparse else run_census
            census = runner(range(args.seeds), max_rounds=args.max_rounds)
    _print_census(census)
    return 0


def _print_census(census) -> None:
    print(f"population: {census.population}")
    print(f"solvable:   {census.solvable}")
    print(f"unsolvable: {census.unsolvable}")
    print(f"unknown:    {census.unknown}")
    print("certificates:")
    for kind, count in sorted(census.certificates.items()):
        print(f"  {kind:<16} {count}")


def _cmd_census_corpus(args) -> int:
    """Streaming corpus mode: sharded, resumable, manifest-packaged."""
    config = corpus_mod.CorpusConfig(
        seed_start=0,
        seed_stop=args.seeds,
        shards=args.shards,
        generator="sparse" if args.sparse else "single",
        max_rounds=args.max_rounds,
    )
    try:
        config.validate()
    except corpus_mod.CorpusError as exc:
        raise SystemExit(str(exc))
    with _tracing_to(args, f"census --corpus {args.corpus} --seeds {args.seeds}"):
        try:
            result = corpus_mod.run_corpus(
                config, args.corpus, workers=args.workers, resume=args.resume
            )
        except corpus_mod.CorpusError as exc:
            raise SystemExit(str(exc))
    _print_census(result.census)
    dedup = result.manifest["dedup"]
    throughput = result.manifest["throughput"]
    print(
        f"dedup:      {dedup['dedup_hits']}/{dedup['population']} "
        f"({dedup['rate']:.1%}), {dedup['distinct_hashes']} isomorphism classes"
    )
    print(
        f"throughput: {throughput['tasks_per_second']:.1f} tasks/s "
        f"over {result.config.shards} shard(s)"
    )
    print(f"manifest:   {result.manifest_path}")
    return 0


def _cmd_census_verify(args) -> int:
    """Replay a committed corpus manifest and report verdict drift."""
    try:
        payload = corpus_mod.load_manifest(args.verify)
    except (OSError, ValueError, corpus_mod.CorpusError) as exc:
        raise SystemExit(f"cannot load manifest {args.verify}: {exc}")
    with _tracing_to(args, f"census --verify {args.verify}"):
        drift = corpus_mod.verify_manifest(payload)
    if drift:
        print(f"DRIFT: {len(drift)} of {payload['population']} rows diverge:")
        for line in drift[:10]:
            print(f"  {line}")
        if len(drift) > 10:
            print(f"  ... and {len(drift) - 10} more")
        return 1
    print(
        f"manifest verified: {payload['population']} verdicts "
        f"({payload['dedup']['distinct_hashes']} isomorphism classes), no drift"
    )
    return 0


def cmd_conform(args) -> int:
    names = []
    if args.suite == "zoo":
        names.extend(sorted(ZOO))
    if args.tasks:
        for name in args.tasks.split(","):
            name = name.strip()
            if name and name not in names:
                names.append(name)
    if args.census:
        names.extend(census_slice(range(args.census)))
    if not names:
        raise SystemExit("nothing to conform: pass --suite zoo, --tasks or --census")
    if args.workers is not None and args.workers < 1:
        raise SystemExit(f"--workers must be at least 1, got {args.workers}")
    config = ConformanceConfig(
        participation=args.participation,
        random_runs=args.random_runs,
        exhaustive_limit=args.exhaustive,
        adversarial=not args.no_adversarial,
        max_rounds=args.max_rounds,
        max_steps=args.max_steps,
        seed=args.seed,
        prefer_direct=not args.figure7,
        shrink=not args.no_shrink,
    )
    with _tracing_to(args, f"conform {','.join(names)}"):
        report = run_campaign(names, config, workers=args.workers)
    width = max(len(t.name) for t in report.tasks)
    for t in report.tasks:
        if t.status == "solvable":
            detail = (
                f"{t.total_runs:>5} runs  mode={t.mode:<8} "
                f"max-steps={t.max_steps_seen}"
            )
            mark = "ok" if t.ok else f"{len(t.violations)} VIOLATIONS"
        else:
            detail = "skipped (no protocol to validate)"
            mark = t.status
        print(f"{t.name:<{width}}  {t.status:<10} {detail}  [{mark}]")
        if t.error:
            print(f"{'':<{width}}  error: {t.error}")
        for v in t.violations[:3]:
            print(
                f"{'':<{width}}  {v.phase}/{v.detail} on {v.inputs_repr}: "
                f"{v.reason} (schedule {list(v.schedule)}, shrunk from "
                f"{v.original_length} steps)"
            )
    print(
        f"campaign: {len(report.tasks)} tasks, {report.total_runs} runs, "
        f"{report.total_violations} violations, {report.seconds:.1f}s"
    )
    if args.json:
        report.write(args.json)
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--store`` / ``--profile-memory`` for traced commands.

    Any of the three switches tracing on for the command; every traced
    invocation appends one ``repro-run/1`` record to the telemetry store
    (``--store`` > ``REPRO_TELEMETRY`` > ``.repro/telemetry.jsonl``).
    """
    p.add_argument(
        "--trace",
        metavar="FILE",
        help="export a repro-trace/1 JSON span/counter trace of the run",
    )
    p.add_argument(
        "--store",
        metavar="FILE",
        help="append this run's repro-run/1 telemetry record to FILE "
        "(implies tracing; default store: $REPRO_TELEMETRY or "
        ".repro/telemetry.jsonl)",
    )
    p.add_argument(
        "--profile-memory",
        action="store_true",
        help="attach tracemalloc peak-bytes attrs to spans "
        "(implies tracing; slows allocation-heavy stages)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Three-process task solvability: the PODC'25 characterization.",
        epilog=(
            "exit codes: 0 success / definitive answer; 1 failure "
            "(violations, synthesis failure, check findings, invalid input); "
            "2 inconclusive (UNKNOWN verdict) or usage error"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in task zoo").set_defaults(
        fn=cmd_list
    )

    p = sub.add_parser("analyze", help="run the characterization on a task")
    p.add_argument("task", help="zoo name or task JSON file")
    p.add_argument("--max-rounds", type=int, default=2)
    p.add_argument(
        "--validate",
        action="store_true",
        help="run the repro.check structural passes before analyzing",
    )
    p.add_argument("--dot", metavar="PREFIX", help="export DOT drawings")
    p.add_argument("--json", metavar="FILE", help="write a JSON summary")
    p.add_argument("--save-split", metavar="FILE", help="save the split task")
    _add_observability_args(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "decide",
        help="run just the solvability decision on a task "
        "(exit 0 decided, 2 UNKNOWN)",
    )
    p.add_argument("task", help="zoo name or task JSON file")
    p.add_argument("--max-rounds", type=int, default=2)
    p.add_argument(
        "--json",
        metavar="FILE",
        help="write the repro-verdict/1 verdict JSON (bit-identical to "
        "what the service serves for the same spec)",
    )
    _add_observability_args(p)
    p.set_defaults(fn=cmd_decide)

    p = sub.add_parser(
        "trace",
        help="summarize, validate or export repro-trace/1 JSON traces",
    )
    p.add_argument(
        "action",
        choices=["summary", "validate", "flame", "export"],
        help="'summary' pretty-prints one trace; 'validate' schema-checks "
        "each file (exit 1 on any invalid trace); 'flame' emits collapsed "
        "stacks for flamegraph.pl/speedscope; 'export --chrome' emits "
        "Chrome trace-event JSON",
    )
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="truncate the span tree below this depth (summary only)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="summary: replace the span tree with the N busiest span names "
        "(essential on census/conformance traces)",
    )
    p.add_argument(
        "--sort",
        choices=["wall", "cpu", "count"],
        default="wall",
        help="summary: ordering for the --top table (default wall)",
    )
    p.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="summary: hide spans (and their subtrees) faster than MS "
        "milliseconds wall",
    )
    p.add_argument(
        "--metric",
        choices=["wall", "cpu"],
        default="wall",
        help="flame: which clock the folded counts measure (default wall)",
    )
    p.add_argument(
        "--chrome",
        action="store_true",
        help="export: emit Chrome trace-event JSON "
        "(chrome://tracing, Perfetto, speedscope)",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        help="flame/export: write to FILE instead of stdout",
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "obs",
        help="query the telemetry run store "
        "(history, regression diffs, bench ingest)",
    )
    p.add_argument(
        "action",
        choices=["trend", "diff", "ingest", "validate", "list"],
        help="'trend' renders per-metric history; 'diff' compares two runs "
        "and exits 1 on regression; 'ingest' folds repro-perf/1 bench "
        "reports into the store; 'validate' schema-checks the store; "
        "'list' shows recorded runs",
    )
    p.add_argument(
        "refs",
        nargs="*",
        metavar="REF",
        help="diff: two run references (id prefix or store index, e.g. -1); "
        "ingest: BENCH_*.json files",
    )
    p.add_argument(
        "--store",
        metavar="FILE",
        help="telemetry store path (default: $REPRO_TELEMETRY or "
        ".repro/telemetry.jsonl)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="diff: compare this committed repro-run/1 (or repro-perf/1) "
        "record against the latest store run with the same command",
    )
    p.add_argument(
        "--metric",
        metavar="SUBSTR",
        help="trend: only metrics whose name contains SUBSTR",
    )
    p.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="trend: newest N runs per series (default 10)",
    )
    p.add_argument(
        "--command",
        dest="command_filter",
        metavar="CMD",
        help="trend: restrict to one subcommand's runs (e.g. decide)",
    )
    p.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="diff: spans faster than this never gate (noise floor, "
        "default 0.05)",
    )
    p.add_argument(
        "--rel-tol",
        type=float,
        default=0.25,
        help="diff: allowed relative span wall-time growth (default 0.25)",
    )
    p.add_argument(
        "--counter-tol",
        type=float,
        default=0.10,
        help="diff: allowed relative counter growth (default 0.10)",
    )
    p.add_argument(
        "--cache-tol",
        type=float,
        default=0.05,
        help="diff: allowed absolute cache hit-rate drop (default 0.05)",
    )
    p.add_argument(
        "--show-ok",
        action="store_true",
        help="diff: also print within-tolerance metrics",
    )
    p.set_defaults(fn=cmd_obs)

    p = sub.add_parser("synthesize", help="synthesize and validate a protocol")
    p.add_argument("task")
    p.add_argument("--max-rounds", type=int, default=2)
    p.add_argument("--figure7", action="store_true", help="force the Figure 7 mode")
    p.add_argument("--runs", type=int, default=10, help="random schedules per input")
    p.add_argument("--facets-only", action="store_true")
    _add_observability_args(p)
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser(
        "serve",
        help="run the solvability verdict server "
        "(POST /v1/solve, GET /healthz, GET /v1/stats; docs/service.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8642,
        help="listen port (0 = OS-assigned; default 8642)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=2,
        help="batch-queue shards (default 2)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=8,
        help="max requests per worker dispatch (default 8)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker pool size (default 1)",
    )
    p.add_argument(
        "--pool",
        choices=["thread", "process", "inline"],
        default="thread",
        help="worker pool kind (default thread; 'inline' executes on the "
        "event loop, for debugging)",
    )
    p.add_argument(
        "--no-persist",
        action="store_true",
        help="keep the verdict cache in memory only (skip the diskstore)",
    )
    p.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one structured JSONL line per completed request",
    )
    p.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="resource sampler period feeding /metrics time series "
        "(default 1.0)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "serve-bench",
        help="replay duplicate-heavy load against the verdict server and "
        "emit a repro-perf/1 report (docs/service.md)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=200,
        help="stream length when generating a workload (default 200)",
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="client worker threads (default 4)",
    )
    p.add_argument(
        "--pool-size",
        type=int,
        default=6,
        help="distinct specs in the generated workload (default 6)",
    )
    p.add_argument(
        "--zipf",
        type=float,
        default=1.2,
        help="zipf skew of the generated workload (default 1.2)",
    )
    p.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    p.add_argument(
        "--passes",
        type=int,
        default=2,
        help="replay passes: first cold, last steady-state (default 2)",
    )
    p.add_argument(
        "--replay",
        metavar="FILE",
        help="replay a JSONL request stream instead of generating one",
    )
    p.add_argument(
        "--url",
        metavar="URL",
        help="bench an already-running server instead of starting one "
        "in-process",
    )
    p.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="exit 1 unless the steady-state hit rate reaches RATE",
    )
    p.add_argument(
        "--max-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="exit 1 if the steady-state p99 exceeds MS milliseconds",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        help="write the repro-perf/1 report (e.g. "
        "benchmarks/BENCH_service.json)",
    )
    p.add_argument(
        "--shards", type=int, default=2, help="in-process server: shards"
    )
    p.add_argument(
        "--batch-size", type=int, default=8, help="in-process server: batch size"
    )
    p.add_argument(
        "--workers", type=int, default=1, help="in-process server: pool size"
    )
    p.add_argument(
        "--pool",
        choices=["thread", "process", "inline"],
        default="thread",
        help="in-process server: pool kind",
    )
    p.add_argument(
        "--no-persist",
        action="store_true",
        help="in-process server: memory-only verdict cache",
    )
    _add_observability_args(p)
    p.set_defaults(fn=cmd_serve_bench)

    p = sub.add_parser(
        "serve-soak",
        help="sustained zipf load with /metrics scraping and growth-slope "
        "budgets; exits 1 on over-budget growth (docs/service.md)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="how long to sustain the load (default 20; nightly runs use "
        "hours)",
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="client worker threads cycling the stream (default 4)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=200,
        help="length of the cycled request stream (default 200)",
    )
    p.add_argument(
        "--pool-size",
        type=int,
        default=6,
        help="distinct specs in the generated workload (default 6)",
    )
    p.add_argument(
        "--zipf",
        type=float,
        default=1.2,
        help="zipf skew of the generated workload (default 1.2)",
    )
    p.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    p.add_argument(
        "--scrape-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how often to scrape /metrics during the run (default 2.0)",
    )
    p.add_argument(
        "--warmup-fraction",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="initial fraction of the run excluded from slope fits "
        "(default 0.25)",
    )
    p.add_argument(
        "--max-rss-growth",
        type=float,
        default=None,
        metavar="BYTES_PER_S",
        help="exit 1 if post-warmup RSS grows faster than this",
    )
    p.add_argument(
        "--max-keymap-growth",
        type=float,
        default=None,
        metavar="ENTRIES_PER_S",
        help="exit 1 if the keymap grows faster than this",
    )
    p.add_argument(
        "--max-cache-growth",
        type=float,
        default=None,
        metavar="ENTRIES_PER_S",
        help="exit 1 if the memory cache grows faster than this",
    )
    p.add_argument(
        "--url",
        metavar="URL",
        help="soak an already-running server instead of starting one "
        "in-process",
    )
    p.add_argument(
        "--out",
        metavar="FILE",
        help="write the repro-soak/1 report (ingestable via `repro obs "
        "ingest`)",
    )
    p.add_argument(
        "--scrapes-out",
        metavar="FILE",
        help="append every /metrics scrape as one JSONL line",
    )
    p.add_argument(
        "--access-log",
        metavar="FILE",
        help="in-process server: structured JSONL access log",
    )
    p.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="in-process server: resource sampler period (default 1.0)",
    )
    p.add_argument(
        "--shards", type=int, default=2, help="in-process server: shards"
    )
    p.add_argument(
        "--batch-size", type=int, default=8, help="in-process server: batch size"
    )
    p.add_argument(
        "--workers", type=int, default=1, help="in-process server: pool size"
    )
    p.add_argument(
        "--pool",
        choices=["thread", "process", "inline"],
        default="thread",
        help="in-process server: pool kind",
    )
    p.add_argument(
        "--no-persist",
        action="store_true",
        help="in-process server: memory-only verdict cache",
    )
    _add_observability_args(p)
    p.set_defaults(fn=cmd_serve_soak)

    p = sub.add_parser("census", help="decide a random-task population")
    p.add_argument("--seeds", type=int, default=20)
    p.add_argument("--sparse", action="store_true")
    p.add_argument("--max-rounds", type=int, default=1)
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for the parallel engine, at least 1 "
        "(omit for one process per CPU; default serial)",
    )
    p.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="seeds per work item, at least 1 (default: adaptive — derived "
        "from the population size and worker count)",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        default=None,
        help="streaming corpus mode: shard the seed range into resumable "
        "JSONL checkpoints under DIR and package a repro-corpus/1 manifest "
        "(docs/census_corpus.md)",
    )
    p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of corpus shards (contiguous seed sub-ranges; "
        "requires --corpus)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted corpus run from each shard's last "
        "committed seed (requires --corpus)",
    )
    p.add_argument(
        "--verify",
        metavar="MANIFEST",
        default=None,
        help="replay a committed corpus manifest seed-by-seed and fail on "
        "any verdict drift (exclusive with --corpus)",
    )
    _add_observability_args(p)
    p.set_defaults(fn=cmd_census)

    p = sub.add_parser(
        "conform",
        help="cross-check solvability verdicts against executions "
        "(docs/runtime_conformance.md)",
    )
    p.add_argument(
        "--suite",
        choices=["zoo", "none"],
        default="none",
        help="'zoo' conforms every built-in task",
    )
    p.add_argument(
        "--tasks", metavar="A,B,…", help="comma-separated zoo task names to add"
    )
    p.add_argument(
        "--census",
        type=int,
        default=0,
        metavar="N",
        help="also conform the first N census tasks (seeds 0..N-1)",
    )
    p.add_argument(
        "--participation",
        choices=["all", "facets"],
        default="all",
        help="validate all input faces (default) or facets only",
    )
    p.add_argument("--random-runs", type=int, default=10)
    p.add_argument(
        "--exhaustive",
        type=int,
        default=50,
        metavar="LIMIT",
        help="exhaustively enumerated executions per input (0 disables)",
    )
    p.add_argument("--max-rounds", type=int, default=2)
    p.add_argument("--max-steps", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--figure7",
        action="store_true",
        help="force the Figure 7 synthesis mode (skip the direct-mode search)",
    )
    p.add_argument("--no-adversarial", action="store_true")
    p.add_argument("--no-shrink", action="store_true")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for the campaign pool, at least 1 "
        "(omit for one process per CPU)",
    )
    p.add_argument("--json", metavar="FILE", help="write the JSON report")
    _add_observability_args(p)
    p.set_defaults(fn=cmd_conform)

    add_check_parser(sub)

    return parser


def main(argv=None) -> int:
    raw = list(argv) if argv is not None else sys.argv[1:]
    args = build_parser().parse_args(raw)
    args._argv = raw  # recorded in repro-run/1 telemetry for provenance
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
