"""Finite abstract simplicial complexes.

A :class:`SimplicialComplex` is stored as the downward closure of a set of
simplices.  Construction computes the closure and the facets (maximal
simplices); after that the complex is immutable.  All iteration orders are
deterministic (see :func:`repro.topology.simplex.vertex_sort_key`).

Because instances are immutable, every structural query is memoized through
:mod:`repro.topology.cache`: repeated links, stars, skeleta, 1-skeleton
graphs and connectivity computations on the same complex are answered from
a per-instance cache.  ``repro.topology.cache.cache_info()`` reports hit
rates, ``cache_clear()`` invalidates everything, and the
``caching_disabled()`` context manager bypasses the layer (benchmarks use
it to measure the uncached baseline).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from . import bitcore as _bitcore
from .cache import memoized_method
from .simplex import Simplex, color_of, vertex_sort_key


def _reconstruct_complex(cls, facets, name):
    """Pickle helper: rebuild from facets (caches are not serialized).

    Retained for pickles written by older versions; current pickles use
    :func:`_restore_complex`.
    """
    return cls(facets, name=name)


def _restore_complex(cls, simplices, facets, vertices, dim, name):
    """Pickle helper: restore the precomputed structure directly.

    Closure, facet and canonical-order computation (and, for chromatic
    subclasses, color validation) already ran in the process that pickled
    the complex; re-running them on every unpickle made loading a cached
    subdivision tower nearly as expensive as rebuilding it.  Memo caches
    stay process-local and start empty.
    """
    self = object.__new__(cls)
    object.__setattr__(self, "_simplices", frozenset(simplices))
    object.__setattr__(self, "_facets", tuple(facets))
    object.__setattr__(self, "_vertices", tuple(vertices))
    object.__setattr__(self, "_dim", dim)
    object.__setattr__(self, "name", name)
    object.__setattr__(self, "_hash", None)
    object.__setattr__(self, "_cache", None)
    return self


#: slots that define a complex's identity; frozen once ``__init__`` sets them
_STRUCTURAL_SLOTS = frozenset({"_simplices", "_facets", "_vertices", "_dim"})


class SimplicialComplex:
    """A finite abstract simplicial complex.

    Parameters
    ----------
    simplices:
        Any iterable of :class:`Simplex` (or iterables of vertices, which are
        converted).  The complex is the downward closure of these simplices.
    name:
        Optional human-readable name, used in ``repr`` only.
    """

    __slots__ = (
        "_simplices",
        "_facets",
        "_vertices",
        "_dim",
        "name",
        "_hash",
        "_cache",
        "__weakref__",
    )

    def __init__(self, simplices: Iterable, name: Optional[str] = None):
        # The closure is computed over raw vertex frozensets so that each
        # distinct face allocates exactly one Simplex, however many input
        # simplices share it; sorting and per-face derived data stay lazy.
        by_set: Dict[FrozenSet[Hashable], Simplex] = {}
        tops: List[FrozenSet[Hashable]] = []
        for s in simplices:
            if not isinstance(s, Simplex):
                s = Simplex(s)
            vs = s.vertices
            if vs not in by_set:
                by_set[vs] = s
                tops.append(vs)
        for vs in tops:
            size = len(vs)
            if size > 1:
                items = tuple(vs)
                for k in range(1, size):
                    for combo in itertools.combinations(items, k):
                        fs = frozenset(combo)
                        if fs not in by_set:
                            by_set[fs] = Simplex(fs)
        # A simplex fails to be maximal iff it is a codimension-1 face of
        # some simplex in the (downward-closed) collection, so one pass over
        # all boundaries identifies every non-facet.
        non_facets = set()
        for vs in by_set:
            if len(vs) > 1:
                for v in vs:
                    non_facets.add(vs - {v})
        self._simplices: FrozenSet[Simplex] = frozenset(by_set.values())
        self._facets: Tuple[Simplex, ...] = tuple(
            sorted(
                (s for vs, s in by_set.items() if vs not in non_facets),
                key=Simplex.sort_key,
            )
        )
        # downward closure guarantees every vertex appears as a singleton
        self._vertices: Tuple[Hashable, ...] = tuple(
            sorted(
                (next(iter(vs)) for vs in by_set if len(vs) == 1),
                key=vertex_sort_key,
            )
        )
        self._dim: int = max((s.dim for s in self._facets), default=-1)
        self.name = name
        self._hash: Optional[int] = None
        self._cache = None

    def __setattr__(self, name: str, value) -> None:
        # The memoization layer (repro.topology.cache) assumes structural
        # state never changes after construction; rebinding it would leave
        # stale cached links/stars/components silently wrong, so the
        # structural slots freeze after their first assignment.
        if name in _STRUCTURAL_SLOTS:
            try:
                object.__getattribute__(self, name)
            except AttributeError:
                pass  # first assignment, during __init__
            else:
                raise AttributeError(
                    f"{type(self).__name__}.{name} is frozen after construction "
                    "(mutating it would desynchronize memoized queries; build a "
                    "new complex instead)"
                )
        object.__setattr__(self, name, value)

    def __delattr__(self, name: str) -> None:
        if name in _STRUCTURAL_SLOTS:
            raise AttributeError(
                f"{type(self).__name__}.{name} is frozen after construction"
            )
        object.__delattr__(self, name)

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, name: Optional[str] = None) -> "SimplicialComplex":
        """The empty complex (no simplices)."""
        return cls((), name=name)

    @classmethod
    def from_facets(cls, facets: Iterable, name: Optional[str] = None) -> "SimplicialComplex":
        """Alias of the constructor, for readability at call sites."""
        return cls(facets, name=name)

    # -- basic protocol ------------------------------------------------------

    def __contains__(self, s) -> bool:
        if not isinstance(s, Simplex):
            s = Simplex(s)
        return s in self._simplices

    def __iter__(self) -> Iterator[Simplex]:
        return iter(self.simplices())

    def __len__(self) -> int:
        return len(self._simplices)

    def __bool__(self) -> bool:
        return bool(self._simplices)

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        return self._simplices is other._simplices or self._simplices == other._simplices

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._simplices)
        return self._hash

    def __repr__(self) -> str:
        label = self.name or type(self).__name__
        return f"{label}(dim={self.dim}, facets={len(self._facets)}, simplices={len(self)})"

    def __reduce__(self):
        # ship the full precomputed structure: the receiving process
        # re-interns every simplex but skips closure/sort recomputation
        return (
            _restore_complex,
            (
                type(self),
                tuple(self._simplices),
                self._facets,
                self._vertices,
                self._dim,
                self.name,
            ),
        )

    # -- structure ------------------------------------------------------------

    @property
    def facets(self) -> Tuple[Simplex, ...]:
        """The maximal simplices, in canonical order."""
        return self._facets

    @property
    def dim(self) -> int:
        """Maximal facet dimension; ``-1`` for the empty complex."""
        return self._dim

    @property
    def vertices(self) -> Tuple[Hashable, ...]:
        """All vertices, in canonical order."""
        return self._vertices

    @memoized_method
    def simplices(self, dim: Optional[int] = None) -> Tuple[Simplex, ...]:
        """All simplices, optionally restricted to a single dimension."""
        pool = self._simplices if dim is None else (s for s in self._simplices if s.dim == dim)
        return tuple(sorted(pool, key=Simplex.sort_key))

    @memoized_method
    def f_vector(self) -> Tuple[int, ...]:
        """``f_vector()[k]`` is the number of ``k``-dimensional simplices."""
        counts = [0] * (self.dim + 1)
        for s in self._simplices:
            counts[s.dim] += 1
        return tuple(counts)

    def euler_characteristic(self) -> int:
        """The Euler characteristic ``sum_k (-1)^k f_k``."""
        return sum((-1) ** k * f for k, f in enumerate(self.f_vector()))

    @memoized_method
    def is_pure(self) -> bool:
        """True iff all facets share the top dimension."""
        return all(f.dim == self.dim for f in self._facets)

    @memoized_method
    def is_chromatic(self) -> bool:
        """True iff every simplex has colored vertices with distinct colors."""
        return all(f.is_chromatic() for f in self._facets)

    @memoized_method
    def colors(self) -> FrozenSet[int]:
        """All colors appearing in the complex (colorless vertices ignored)."""
        cols = set()
        for v in self._vertices:
            c = color_of(v)
            if c is not None:
                cols.add(c)
        return frozenset(cols)

    # -- subcomplexes -----------------------------------------------------------

    @memoized_method
    def skeleton(self, k: int) -> "SimplicialComplex":
        """The ``k``-skeleton: all simplices of dimension at most ``k``."""
        return SimplicialComplex(
            (s for s in self._simplices if s.dim <= k),
            name=f"Skel^{k}({self.name})" if self.name else None,
        )

    @memoized_method
    def star(self, v: Hashable) -> "SimplicialComplex":
        """The closed star of ``v``: all simplices containing ``v``, closed down."""
        return SimplicialComplex(s for s in self._simplices if v in s)

    @memoized_method
    def link(self, v: Hashable) -> "SimplicialComplex":
        """The link of ``v``: ``{ s : v not in s and s + v in K }``."""
        out = []
        for s in self._simplices:
            if v in s:
                rest = s.without(v)
                if rest is not None:
                    out.append(rest)
        return SimplicialComplex(out)

    def induced(self, vertices: Iterable[Hashable]) -> "SimplicialComplex":
        """The subcomplex induced by a vertex subset."""
        vs = set(vertices)
        return SimplicialComplex(s for s in self._simplices if s.vertices <= vs)

    def subcomplex(self, simplices: Iterable) -> "SimplicialComplex":
        """The downward closure of the given simplices, checked to lie in ``self``."""
        chosen = [s if isinstance(s, Simplex) else Simplex(s) for s in simplices]
        for s in chosen:
            if s not in self._simplices:
                raise ValueError(f"{s!r} is not a simplex of {self!r}")
        return SimplicialComplex(chosen)

    def union(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """The union complex."""
        return SimplicialComplex(self._facets + other._facets)

    def intersection(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """The intersection complex."""
        return SimplicialComplex(self._simplices & other._simplices)

    def is_subcomplex_of(self, other: "SimplicialComplex") -> bool:
        """True iff every simplex of ``self`` lies in ``other``."""
        return self._simplices <= other._simplices

    # -- connectivity -------------------------------------------------------------

    @memoized_method
    def _graph(self) -> "nx.Graph":
        g = nx.Graph()
        g.add_nodes_from(self._vertices)
        for e in self.simplices(1):
            a, b = e.sorted_vertices()
            g.add_edge(a, b)
        return g

    def graph(self) -> "nx.Graph":
        """The 1-skeleton as a :mod:`networkx` graph (isolated vertices included).

        The returned graph is a fresh copy, safe for callers to mutate; the
        internal cached graph backs :meth:`is_connected` and
        :meth:`connected_components`.
        """
        return self._graph().copy()

    @memoized_method
    def _bits(self) -> "_bitcore.BitComplex":
        """Bit-packed view of the 1- and 2-skeleton (:mod:`.bitcore`)."""
        return _bitcore.BitComplex.from_complex(self)

    @memoized_method
    def is_connected(self) -> bool:
        """Graph connectivity of the 1-skeleton (empty complex counts as connected)."""
        if _bitcore.bitcore_enabled():
            return self._bits().is_connected()
        return self._legacy_is_connected()

    def _legacy_is_connected(self) -> bool:
        # object/networkx kernel, retained for the bitcore parity suite
        if not self._vertices:
            return True
        return nx.is_connected(self._graph())

    @memoized_method
    def connected_components(self) -> Tuple[FrozenSet[Hashable], ...]:
        """Vertex sets of the connected components, in deterministic order."""
        if _bitcore.bitcore_enabled():
            return self._bits().connected_components()
        return self._legacy_connected_components()

    def _legacy_connected_components(self) -> Tuple[FrozenSet[Hashable], ...]:
        # object/networkx kernel, retained for the bitcore parity suite
        comps = [frozenset(c) for c in nx.connected_components(self._graph())]
        comps.sort(key=lambda c: min(vertex_sort_key(v) for v in c))
        return tuple(comps)

    def component_of(self, v: Hashable) -> FrozenSet[Hashable]:
        """The vertex set of the component containing ``v``."""
        for comp in self.connected_components():
            if v in comp:
                return comp
        raise KeyError(f"{v!r} is not a vertex of {self!r}")

    @memoized_method
    def is_link_connected(self) -> bool:
        """True iff the link of every vertex is a connected complex.

        This is the property the splitting pipeline of Section 4 establishes.
        """
        if _bitcore.bitcore_enabled():
            return self._bits().is_link_connected()
        return self._legacy_is_link_connected()

    def _legacy_is_link_connected(self) -> bool:
        # object/networkx kernel, retained for the bitcore parity suite
        return all(self.link(v)._legacy_is_connected() for v in self._vertices)

    def link_components(self, v: Hashable) -> Tuple[FrozenSet[Hashable], ...]:
        """Connected components (vertex sets) of ``link(v)``."""
        if _bitcore.bitcore_enabled():
            return self._bits().link_components(v)
        return self._legacy_link_components(v)

    def _legacy_link_components(self, v: Hashable) -> Tuple[FrozenSet[Hashable], ...]:
        # object/networkx kernel, retained for the bitcore parity suite
        return self.link(v)._legacy_connected_components()
