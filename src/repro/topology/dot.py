"""Graphviz DOT export for complexes and tasks.

The paper's figures are drawings of 2-dimensional chromatic complexes.
This module renders a complex's 1-skeleton (with triangles indicated by
shaded cliques) to DOT text, so the reproduced figures can be inspected
with any Graphviz viewer.  Process ids (colors) map to gray levels, echoing
the paper's convention ("gray levels represent process ids").
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from .complexes import SimplicialComplex
from .simplex import Vertex, color_of

_GRAYS = ["#222222", "#f5f5f5", "#9e9e9e", "#5e5e5e", "#cfcfcf"]


def _vertex_id(v: Hashable, index: Dict[Hashable, str]) -> str:
    if v not in index:
        index[v] = f"v{len(index)}"
    return index[v]


def _vertex_label(v: Hashable) -> str:
    if isinstance(v, Vertex):
        return f"{v.color}:{v.value!r}"
    return repr(v)


def complex_to_dot(k: SimplicialComplex, name: Optional[str] = None) -> str:
    """Render a complex's 1-skeleton as a DOT graph.

    Vertices are filled by color (process id); edges belonging to some
    2-simplex are drawn solid, bare edges dashed — enough to read off the
    triangle structure of the paper's figures.
    """
    index: Dict[Hashable, str] = {}
    lines = [f'graph "{name or k.name or "complex"}" {{']
    lines.append("  node [style=filled, fontsize=10];")
    for v in k.vertices:
        c = color_of(v)
        fill = _GRAYS[c % len(_GRAYS)] if c is not None else "#ffffff"
        fontcolor = "#ffffff" if c is not None and c % len(_GRAYS) in (0, 3) else "#000000"
        lines.append(
            f'  {_vertex_id(v, index)} [label="{_vertex_label(v)}", '
            f'fillcolor="{fill}", fontcolor="{fontcolor}"];'
        )
    in_triangle = set()
    for t in k.simplices(dim=2):
        for e in t.faces(dim=1):
            in_triangle.add(e)
    for e in k.simplices(dim=1):
        a, b = e.sorted_vertices()
        style = "solid" if e in in_triangle else "dashed"
        lines.append(f"  {_vertex_id(a, index)} -- {_vertex_id(b, index)} [style={style}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(k: SimplicialComplex, path: str, name: Optional[str] = None) -> None:
    """Write :func:`complex_to_dot` output to a file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(complex_to_dot(k, name=name))
        fh.write("\n")
