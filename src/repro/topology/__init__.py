"""Combinatorial-topology substrate.

Everything the task-solvability machinery rests on: simplices, chromatic
complexes, carrier maps, simplicial maps, subdivisions, links and homology.
"""

from . import diskstore
from .bitcore import (
    BitComplex,
    bitcore_disabled,
    bitcore_enabled,
    bitcore_forced,
    set_bitcore,
)
from .cache import (
    cache_clear,
    cache_info,
    caching_disabled,
    caching_enabled,
    set_caching,
)
from .carrier import CarrierMap, CarrierMapError
from .chromatic import (
    ChromaticComplex,
    NotChromaticError,
    colorless_complex,
    ids,
    strip_colors,
)
from .complexes import SimplicialComplex
from .geometry import (
    Realization,
    RealizationPoint,
    barycenter,
    pl_image,
    sample_simplex_points,
)
from .homotopy import (
    Presentation,
    cyclic_reduce,
    free_reduce,
    is_null_homotopic,
    loop_word,
    pi1_presentation,
)
from .homology import (
    ChainBasis,
    betti_numbers,
    boundary_matrix,
    cycle_space_generators,
    edge_chain,
    homology_torsion,
    integer_rank,
    is_null_homologous,
    rank_mod2,
    smith_normal_form,
    solve_integer,
    solve_mod2,
)
from .links import (
    articulation_vertices,
    is_link_connected,
    link,
    link_components,
    longest_link_size,
)
from .pseudomanifolds import (
    boundary_complex,
    decomposition_summary,
    edge_triangle_degrees,
    is_closed_pseudomanifold,
    is_manifold_vertex,
    is_pseudomanifold,
    non_manifold_vertices,
)
from .maps import (
    NotSimplicialError,
    SimplicialMap,
    chromatic_projection,
    identity_map,
)
from .simplex import Simplex, Vertex, chrom, simplex, vertex_sort_key
from .subdivision import (
    Barycenter,
    SubdivisionResult,
    SubdivisionTower,
    barycentric_subdivision,
    chromatic_subdivision,
    chromatic_subdivision_of_simplex,
    iterated_barycentric_subdivision,
    iterated_chromatic_subdivision,
    ordered_partitions,
)

__all__ = [
    "Barycenter",
    "BitComplex",
    "bitcore_disabled",
    "bitcore_enabled",
    "bitcore_forced",
    "set_bitcore",
    "diskstore",
    "CarrierMap",
    "CarrierMapError",
    "ChainBasis",
    "ChromaticComplex",
    "NotChromaticError",
    "NotSimplicialError",
    "Presentation",
    "Realization",
    "RealizationPoint",
    "SimplicialComplex",
    "SimplicialMap",
    "Simplex",
    "SubdivisionResult",
    "SubdivisionTower",
    "Vertex",
    "articulation_vertices",
    "barycenter",
    "cache_clear",
    "cache_info",
    "caching_disabled",
    "caching_enabled",
    "set_caching",
    "barycentric_subdivision",
    "boundary_complex",
    "betti_numbers",
    "boundary_matrix",
    "chrom",
    "chromatic_projection",
    "chromatic_subdivision",
    "cyclic_reduce",
    "free_reduce",
    "chromatic_subdivision_of_simplex",
    "colorless_complex",
    "cycle_space_generators",
    "decomposition_summary",
    "edge_triangle_degrees",
    "edge_chain",
    "homology_torsion",
    "is_null_homotopic",
    "loop_word",
    "pi1_presentation",
    "identity_map",
    "ids",
    "integer_rank",
    "is_closed_pseudomanifold",
    "is_link_connected",
    "is_manifold_vertex",
    "is_pseudomanifold",
    "is_null_homologous",
    "iterated_barycentric_subdivision",
    "iterated_chromatic_subdivision",
    "link",
    "link_components",
    "non_manifold_vertices",
    "longest_link_size",
    "ordered_partitions",
    "pl_image",
    "rank_mod2",
    "sample_simplex_points",
    "simplex",
    "smith_normal_form",
    "solve_integer",
    "solve_mod2",
    "strip_colors",
    "vertex_sort_key",
]
