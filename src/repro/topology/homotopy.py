"""Edge-path fundamental groups and budgeted contractibility.

The paper's second obstruction species is *contractibility*: a task can be
unsolvable because the boundary loop cannot be continuously collapsed in
the output complex — a question that is undecidable in general
(Gafni–Koutsoupias reduce task solvability to it).  This module makes the
obstruction concrete for finite 2-complexes:

* :func:`pi1_presentation` — the edge-path group presentation of ``π₁(K)``:
  one generator per non-spanning-tree edge, one relator per triangle
  (classical; see e.g. Stillwell, cited by the paper as [28]);
* :func:`loop_word` — the group word of an edge loop;
* :func:`is_null_homotopic` — a *budgeted* semi-decision: refute via
  integral homology (null-homotopic ⇒ null-homologous), certify via
  free/cyclic reduction plus Dehn-style relator cancellation, and answer
  ``None`` honestly when the budget runs out.

Everything here is exact; only the positive certification is incomplete
(as it must be).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from .complexes import SimplicialComplex
from .homology import ChainBasis, edge_chain, is_null_homologous
from .simplex import Simplex, vertex_sort_key

Word = Tuple[int, ...]  # non-zero ints; +g / -g are a generator and inverse


def free_reduce(word: Sequence[int]) -> Word:
    """Cancel adjacent inverse pairs ``g g⁻¹``."""
    out: List[int] = []
    for letter in word:
        if out and out[-1] == -letter:
            out.pop()
        else:
            out.append(letter)
    return tuple(out)


def cyclic_reduce(word: Sequence[int]) -> Word:
    """Free reduction plus cancellation across the word's ends."""
    w = list(free_reduce(word))
    while len(w) >= 2 and w[0] == -w[-1]:
        w = w[1:-1]
    return tuple(w)


def invert(word: Sequence[int]) -> Word:
    return tuple(-letter for letter in reversed(word))


@dataclass(frozen=True)
class Presentation:
    """A finite presentation of the edge-path group of a complex."""

    complex: SimplicialComplex
    base: Hashable
    tree_edges: Tuple[Simplex, ...]
    generators: Tuple[Simplex, ...]  # non-tree edges, canonically oriented
    relators: Tuple[Word, ...]
    _edge_index: Dict[Tuple[Hashable, Hashable], int]

    @property
    def rank(self) -> int:
        return len(self.generators)

    def edge_letter(self, a: Hashable, b: Hashable) -> Tuple[int, ...]:
        """The word of traversing edge ``{a, b}`` from ``a`` to ``b``.

        Empty for spanning-tree edges; a single signed letter otherwise.
        """
        if (a, b) not in self._edge_index:
            raise KeyError(f"({a!r}, {b!r}) is not an edge of the complex")
        g = self._edge_index[(a, b)]
        return (g,) if g else ()


def pi1_presentation(
    k: SimplicialComplex, base: Optional[Hashable] = None
) -> Presentation:
    """The edge-path presentation of ``π₁(K, base)``.

    ``K`` must be connected (restrict to a component first).  Generators
    are the edges outside a BFS spanning tree; each 2-simplex contributes
    the relator spelled by its boundary.
    """
    if not k.is_connected():
        raise ValueError("π₁ presentation requires a connected complex")
    vertices = list(k.vertices)
    if not vertices:
        raise ValueError("empty complex")
    if base is None:
        base = vertices[0]

    g = k.graph()
    tree = nx.bfs_tree(g, base)
    tree_pairs = {frozenset(e) for e in tree.edges()}

    generators: List[Simplex] = []
    edge_index: Dict[Tuple[Hashable, Hashable], int] = {}
    for e in k.simplices(dim=1):
        a, b = e.sorted_vertices()
        if frozenset((a, b)) in tree_pairs:
            edge_index[(a, b)] = 0
            edge_index[(b, a)] = 0
        else:
            generators.append(e)
            idx = len(generators)  # 1-based
            edge_index[(a, b)] = idx
            edge_index[(b, a)] = -idx

    def letter(a, b) -> Tuple[int, ...]:
        idx = edge_index[(a, b)]
        return (idx,) if idx else ()

    relators: List[Word] = []
    for t in k.simplices(dim=2):
        x, y, z = t.sorted_vertices()
        word = free_reduce(letter(x, y) + letter(y, z) + letter(z, x))
        if word:
            relators.append(word)

    return Presentation(
        complex=k,
        base=base,
        tree_edges=tuple(
            sorted(
                (s for s in k.simplices(dim=1) if frozenset(s.vertices) in tree_pairs),
                key=Simplex.sort_key,
            )
        ),
        generators=tuple(generators),
        relators=tuple(relators),
        _edge_index=edge_index,
    )


def loop_word(presentation: Presentation, path: Sequence[Hashable]) -> Word:
    """The group word of a closed edge path."""
    if path[0] != path[-1]:
        raise ValueError("loop_word expects a closed path")
    word: List[int] = []
    for a, b in zip(path, path[1:]):
        if a == b:
            continue
        idx = presentation._edge_index.get((a, b))
        if idx is None:
            raise ValueError(f"({a!r}, {b!r}) is not an edge of the complex")
        if idx:
            word.append(idx)
    return free_reduce(word)


def _dehn_pass(word: Word, relator_bank: List[Word]) -> Optional[Word]:
    """One Dehn-style reduction: replace a long relator piece by the
    shorter complement.  Returns the shorter word or ``None``."""
    n = len(word)
    doubled = word + word  # search cyclically
    for rel in relator_bank:
        m = len(rel)
        if m == 0:
            continue
        take = m // 2 + 1  # strictly more than half
        for start in range(m):
            piece = tuple(rel[(start + t) % m] for t in range(take))
            complement = invert(tuple(rel[(start + take + t) % m] for t in range(m - take)))
            for pos in range(n):
                if tuple(doubled[pos : pos + take]) == piece:
                    rotated = doubled[pos:pos + n]
                    candidate = cyclic_reduce(
                        complement + tuple(rotated[take:])
                    )
                    if len(candidate) < n:
                        return candidate
    return None


def is_null_homotopic(
    k: SimplicialComplex,
    path: Sequence[Hashable],
    max_passes: int = 10_000,
) -> Optional[bool]:
    """Budgeted contractibility of a closed edge path in a 2-complex.

    Returns ``False`` when the loop is not even null-homologous over Z (a
    sound refutation), ``True`` when iterated free/cyclic reduction and
    Dehn cancellation empty the word (a sound certification), and ``None``
    when neither side concludes within the budget — the honest outcome for
    an undecidable problem.
    """
    if path[0] != path[-1]:
        raise ValueError("expected a closed path")
    basis = ChainBasis.of(k)
    cycle = edge_chain(basis, list(path))
    if not is_null_homologous(k, cycle, over="Z"):
        return False

    component = k.induced(k.component_of(path[0]))
    pres = pi1_presentation(component, base=path[0])
    if pres.rank == 0:
        return True
    word = cyclic_reduce(loop_word(pres, path))
    if not word:
        return True

    # relator bank: relators, inverses and all cyclic rotations
    bank: List[Word] = []
    for rel in pres.relators:
        for base_word in (rel, invert(rel)):
            for shift in range(len(base_word)):
                bank.append(base_word[shift:] + base_word[:shift])

    # stage 1: greedy Dehn shrinking (fast, handles small-cancellation shapes)
    for _ in range(max_passes):
        shorter = _dehn_pass(word, bank)
        if shorter is None:
            break
        word = shorter
        if not word:
            return True

    # stage 2: bounded BFS over relator insertions (handles substitutions
    # that do not strictly shorten, e.g. rewriting a generator via g·h⁻¹
    # relators); sound, budgeted, may return None
    return _bounded_bfs(word, bank, max_states=max_passes)


def _bounded_bfs(
    word: Word, relator_bank: List[Word], max_states: int
) -> Optional[bool]:
    from collections import deque

    if not word:
        return True
    max_len = len(word) + 2 * max((len(r) for r in relator_bank), default=0) + 2
    seen = {word}
    queue = deque([word])
    explored = 0
    while queue and explored < max_states:
        current = queue.popleft()
        explored += 1
        for rel in relator_bank:
            for pos in range(len(current) + 1):
                candidate = cyclic_reduce(current[:pos] + rel + current[pos:])
                if not candidate:
                    return True
                if len(candidate) <= max_len and candidate not in seen:
                    seen.add(candidate)
                    queue.append(candidate)
    return None
