"""Simplices and chromatic vertices.

This module provides the two most basic objects of the combinatorial-topology
substrate used throughout the library:

* :class:`Vertex` — a chromatic vertex ``(color, value)``, where the color is
  a process id and the value is an arbitrary hashable payload (an input
  value, an output value, or a view acquired during computation).
* :class:`Simplex` — an immutable finite set of vertices.

Both are hashable and totally ordered (by a deterministic sort key), which
lets complexes, carrier maps and search procedures iterate deterministically
regardless of hash randomization.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple


def vertex_sort_key(v: Hashable) -> Tuple:
    """A deterministic sort key usable for arbitrary hashable vertices.

    Chromatic :class:`Vertex` objects sort by ``(color, repr(value))`` so
    that simplices print with process ids in increasing order; any other
    vertex sorts by its type name and ``repr``.
    """
    if isinstance(v, Vertex):
        return (0, v.color, repr(v.value))
    return (1, type(v).__name__, repr(v))


@dataclass(frozen=True, order=False)
class Vertex:
    """A chromatic vertex ``(color, value)``.

    ``color`` is the process id (an integer in ``range(n)`` for an
    ``n``-process system) and ``value`` is any hashable payload.
    """

    color: int
    value: Hashable

    def __post_init__(self) -> None:
        if not isinstance(self.color, int):
            raise TypeError(f"vertex color must be an int, got {self.color!r}")
        try:
            hash(self.value)
        except TypeError as exc:  # pragma: no cover - defensive
            raise TypeError(f"vertex value must be hashable, got {self.value!r}") from exc

    def with_value(self, value: Hashable) -> "Vertex":
        """Return a vertex with the same color and a new value."""
        return Vertex(self.color, value)

    def __repr__(self) -> str:
        return f"({self.color}:{self.value!r})"

    def __lt__(self, other: "Vertex") -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return vertex_sort_key(self) < vertex_sort_key(other)


def color_of(v: Hashable) -> Optional[int]:
    """Return the color of a vertex, or ``None`` for colorless vertices."""
    if isinstance(v, Vertex):
        return v.color
    return None


@dataclass(frozen=True, init=False)
class Simplex:
    """An immutable, non-empty finite set of vertices.

    The *dimension* of a simplex is ``len(simplex) - 1``; a single vertex is
    a 0-dimensional simplex.  Simplices compare equal iff they contain the
    same vertex set, and are ordered first by dimension and then
    lexicographically by sorted vertex keys, so all iteration in the library
    is deterministic.
    """

    vertices: FrozenSet[Hashable] = field()

    def __init__(self, vertices: Iterable[Hashable]):
        vs = frozenset(vertices)
        if not vs:
            raise ValueError("a simplex must contain at least one vertex")
        object.__setattr__(self, "vertices", vs)

    # -- basic protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.sorted_vertices())

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, v: Hashable) -> bool:
        return v in self.vertices

    def __le__(self, other: "Simplex") -> bool:
        """Face relation: ``self <= other`` iff ``self`` is a face of ``other``."""
        return self.vertices <= other.vertices

    def __lt__(self, other: "Simplex") -> bool:
        return self.vertices < other.vertices

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.sorted_vertices())
        return f"<{inner}>"

    # -- structure ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimension: number of vertices minus one."""
        return len(self.vertices) - 1

    def sorted_vertices(self) -> Tuple[Hashable, ...]:
        """Vertices in the library's canonical deterministic order."""
        return tuple(sorted(self.vertices, key=vertex_sort_key))

    def sort_key(self) -> Tuple:
        """Deterministic total-order key (dimension first, then lexicographic)."""
        return (self.dim, tuple(vertex_sort_key(v) for v in self.sorted_vertices()))

    def colors(self) -> FrozenSet[int]:
        """The set of colors (process ids) appearing in this simplex.

        Raises :class:`ValueError` if any vertex is colorless.
        """
        cols = []
        for v in self.vertices:
            c = color_of(v)
            if c is None:
                raise ValueError(f"simplex {self!r} contains a colorless vertex {v!r}")
            cols.append(c)
        return frozenset(cols)

    def is_chromatic(self) -> bool:
        """True iff every vertex is colored and no color repeats."""
        cols = []
        for v in self.vertices:
            c = color_of(v)
            if c is None:
                return False
            cols.append(c)
        return len(cols) == len(set(cols))

    def vertex_of_color(self, color: int) -> Hashable:
        """Return the unique vertex of the given color.

        Raises :class:`KeyError` if the color does not appear, and
        :class:`ValueError` if it appears more than once.
        """
        found = [v for v in self.vertices if color_of(v) == color]
        if not found:
            raise KeyError(f"no vertex of color {color} in {self!r}")
        if len(found) > 1:
            raise ValueError(f"color {color} appears more than once in {self!r}")
        return found[0]

    # -- faces ---------------------------------------------------------------

    def faces(self, dim: Optional[int] = None) -> Tuple["Simplex", ...]:
        """All non-empty faces (including ``self``), optionally of one dimension.

        Faces are returned in canonical order.
        """
        if dim is not None:
            if dim < 0 or dim > self.dim:
                return ()
            combos = itertools.combinations(self.sorted_vertices(), dim + 1)
            return tuple(sorted((Simplex(c) for c in combos), key=Simplex.sort_key))
        out = []
        for k in range(1, len(self.vertices) + 1):
            out.extend(Simplex(c) for c in itertools.combinations(self.sorted_vertices(), k))
        return tuple(sorted(out, key=Simplex.sort_key))

    def proper_faces(self) -> Tuple["Simplex", ...]:
        """All faces except ``self``."""
        return tuple(f for f in self.faces() if f != self)

    def boundary(self) -> Tuple["Simplex", ...]:
        """The codimension-1 faces, in canonical order."""
        return self.faces(dim=self.dim - 1)

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "Simplex") -> "Simplex":
        """Vertex-set union (the join's vertex set)."""
        return Simplex(self.vertices | other.vertices)

    def intersection(self, other: "Simplex") -> Optional["Simplex"]:
        """Vertex-set intersection, or ``None`` when disjoint."""
        common = self.vertices & other.vertices
        return Simplex(common) if common else None

    def without(self, v: Hashable) -> Optional["Simplex"]:
        """The face obtained by dropping vertex ``v`` (``None`` if empty)."""
        rest = self.vertices - {v}
        return Simplex(rest) if rest else None

    def with_vertex(self, v: Hashable) -> "Simplex":
        """The simplex obtained by adding vertex ``v``."""
        return Simplex(self.vertices | {v})

    def replace_vertex(self, old: Hashable, new: Hashable) -> "Simplex":
        """The simplex with ``old`` substituted by ``new``.

        Raises :class:`KeyError` if ``old`` is absent.
        """
        if old not in self.vertices:
            raise KeyError(f"{old!r} is not a vertex of {self!r}")
        return Simplex((self.vertices - {old}) | {new})


def simplex(*vertices: Hashable) -> Simplex:
    """Convenience constructor: ``simplex(a, b, c) == Simplex([a, b, c])``."""
    return Simplex(vertices)


def chrom(*pairs: Tuple[int, Any]) -> Simplex:
    """Build a chromatic simplex from ``(color, value)`` pairs.

    >>> chrom((0, 'a'), (1, 'b'))
    <(0:'a'), (1:'b')>
    """
    return Simplex(Vertex(c, x) for c, x in pairs)
