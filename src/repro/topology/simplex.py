"""Simplices and chromatic vertices.

This module provides the two most basic objects of the combinatorial-topology
substrate used throughout the library:

* :class:`Vertex` — a chromatic vertex ``(color, value)``, where the color is
  a process id and the value is an arbitrary hashable payload (an input
  value, an output value, or a view acquired during computation).
* :class:`Simplex` — an immutable finite set of vertices.

Both are hashable and totally ordered (by a deterministic sort key), which
lets complexes, carrier maps and search procedures iterate deterministically
regardless of hash randomization.

Performance notes
-----------------

Both classes are slotted and immutable, and :class:`Simplex` is *interned*
(hash-consed): constructing a simplex over a vertex set that already has a
live simplex returns the existing instance.  Interning makes equality checks
mostly pointer comparisons, lets expensive derived data (sorted vertex
tuples, sort keys, faces, color sets) be computed once per distinct simplex,
and keeps the memory footprint of large subdivision complexes flat.  The
intern table holds weak references only, so simplices are reclaimed as soon
as no complex uses them.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Dict, FrozenSet, Hashable, Iterable, Iterator, Optional, Tuple

from . import cache as _cache


def vertex_sort_key(v: Hashable) -> Tuple:
    """A deterministic sort key usable for arbitrary hashable vertices.

    Chromatic :class:`Vertex` objects sort by ``(color, repr(value))`` so
    that simplices print with process ids in increasing order; any other
    vertex sorts by its type name and ``repr``.
    """
    if isinstance(v, Vertex):
        key = v._skey
        if key is None:
            key = (0, v.color, repr(v.value))
            object.__setattr__(v, "_skey", key)
        return key
    return (1, type(v).__name__, repr(v))


class Vertex:
    """A chromatic vertex ``(color, value)``.

    ``color`` is the process id (an integer in ``range(n)`` for an
    ``n``-process system) and ``value`` is any hashable payload.
    """

    __slots__ = ("color", "value", "_hash", "_skey")

    def __init__(self, color: int, value: Hashable):
        if not isinstance(color, int):
            raise TypeError(f"vertex color must be an int, got {color!r}")
        try:
            h = hash((color, value))
        except TypeError as exc:  # pragma: no cover - defensive
            raise TypeError(f"vertex value must be hashable, got {value!r}") from exc
        object.__setattr__(self, "color", color)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", h)
        # sort key computed lazily by vertex_sort_key (repr of nested views
        # is the expensive part; most vertices are never compared)
        object.__setattr__(self, "_skey", None)

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError(f"Vertex is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Vertex is immutable (cannot delete {name!r})")

    def with_value(self, value: Hashable) -> "Vertex":
        """Return a vertex with the same color and a new value."""
        return Vertex(self.color, value)

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, Vertex):
            return (
                self._hash == other._hash
                and self.color == other.color
                and self.value == other.value
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.color}:{self.value!r})"

    def __lt__(self, other: "Vertex") -> bool:
        if not isinstance(other, Vertex):
            return NotImplemented
        return vertex_sort_key(self) < vertex_sort_key(other)

    def __reduce__(self):
        return (Vertex, (self.color, self.value))

    def __copy__(self) -> "Vertex":
        return self

    def __deepcopy__(self, memo) -> "Vertex":
        return self


def color_of(v: Hashable) -> Optional[int]:
    """Return the color of a vertex, or ``None`` for colorless vertices."""
    if isinstance(v, Vertex):
        return v.color
    return None


#: intern table: frozenset of vertices -> the canonical live Simplex
_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

#: sentinel marking "colors() raises" in the per-simplex color cache
_COLORLESS = object()


class Simplex:
    """An immutable, non-empty finite set of vertices.

    The *dimension* of a simplex is ``len(simplex) - 1``; a single vertex is
    a 0-dimensional simplex.  Simplices compare equal iff they contain the
    same vertex set, and are ordered first by dimension and then
    lexicographically by sorted vertex keys, so all iteration in the library
    is deterministic.

    Instances are interned: two constructions over the same vertex set
    return the same object, so derived data (sort keys, faces, colors) is
    computed at most once per distinct simplex.
    """

    __slots__ = (
        "vertices",
        "_hash",
        "_sorted",
        "_key",
        "_colors",
        "_chromatic",
        "_faces",
        "__weakref__",
    )

    vertices: FrozenSet[Hashable]

    def __new__(cls, vertices: Iterable[Hashable]):
        vs = vertices if type(vertices) is frozenset else frozenset(vertices)
        interned = cls is Simplex and _cache._enabled
        if interned:
            cached = _INTERN.get(vs)
            if cached is not None:
                return cached
        if not vs:
            raise ValueError("a simplex must contain at least one vertex")
        self = object.__new__(cls)
        object.__setattr__(self, "vertices", vs)
        object.__setattr__(self, "_hash", hash(vs))
        object.__setattr__(self, "_sorted", None)
        object.__setattr__(self, "_key", None)
        object.__setattr__(self, "_colors", None)
        object.__setattr__(self, "_chromatic", None)
        object.__setattr__(self, "_faces", None)
        if interned:
            _INTERN[vs] = self
        return self

    def __init__(self, vertices: Iterable[Hashable]):
        # all work happens in __new__ so interned instances skip re-init
        pass

    def __setattr__(self, name: str, val: Any) -> None:
        raise AttributeError(f"Simplex is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"Simplex is immutable (cannot delete {name!r})")

    # -- basic protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.sorted_vertices())

    def __len__(self) -> int:
        return len(self.vertices)

    def __contains__(self, v: Hashable) -> bool:
        return v in self.vertices

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if isinstance(other, Simplex):
            return self.vertices == other.vertices
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __le__(self, other: "Simplex") -> bool:
        """Face relation: ``self <= other`` iff ``self`` is a face of ``other``."""
        return self.vertices <= other.vertices

    def __lt__(self, other: "Simplex") -> bool:
        return self.vertices < other.vertices

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.sorted_vertices())
        return f"<{inner}>"

    def __reduce__(self):
        return (type(self), (tuple(self.vertices),))

    def __copy__(self) -> "Simplex":
        return self

    def __deepcopy__(self, memo) -> "Simplex":
        return self

    # -- structure ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimension: number of vertices minus one."""
        return len(self.vertices) - 1

    def sorted_vertices(self) -> Tuple[Hashable, ...]:
        """Vertices in the library's canonical deterministic order."""
        out = self._sorted
        if out is None:
            out = tuple(sorted(self.vertices, key=vertex_sort_key))
            object.__setattr__(self, "_sorted", out)
        return out

    def sort_key(self) -> Tuple:
        """Deterministic total-order key (dimension first, then lexicographic)."""
        out = self._key
        if out is None:
            out = (
                len(self.vertices) - 1,
                tuple(vertex_sort_key(v) for v in self.sorted_vertices()),
            )
            object.__setattr__(self, "_key", out)
        return out

    def colors(self) -> FrozenSet[int]:
        """The set of colors (process ids) appearing in this simplex.

        Raises :class:`ValueError` if any vertex is colorless.
        """
        out = self._colors
        if out is None:
            cols = []
            for v in self.vertices:
                c = color_of(v)
                if c is None:
                    object.__setattr__(self, "_colors", _COLORLESS)
                    raise ValueError(
                        f"simplex {self!r} contains a colorless vertex {v!r}"
                    )
                cols.append(c)
            out = frozenset(cols)
            object.__setattr__(self, "_colors", out)
        elif out is _COLORLESS:
            bad = next(v for v in self.vertices if color_of(v) is None)
            raise ValueError(f"simplex {self!r} contains a colorless vertex {bad!r}")
        return out

    def is_chromatic(self) -> bool:
        """True iff every vertex is colored and no color repeats."""
        out = self._chromatic
        if out is None:
            cols = []
            for v in self.vertices:
                c = color_of(v)
                if c is None:
                    out = False
                    break
                cols.append(c)
            else:
                out = len(cols) == len(set(cols))
            object.__setattr__(self, "_chromatic", out)
        return out

    def vertex_of_color(self, color: int) -> Hashable:
        """Return the unique vertex of the given color.

        Raises :class:`KeyError` if the color does not appear, and
        :class:`ValueError` if it appears more than once.
        """
        found = [v for v in self.vertices if color_of(v) == color]
        if not found:
            raise KeyError(f"no vertex of color {color} in {self!r}")
        if len(found) > 1:
            raise ValueError(f"color {color} appears more than once in {self!r}")
        return found[0]

    # -- faces ---------------------------------------------------------------

    def faces(self, dim: Optional[int] = None) -> Tuple["Simplex", ...]:
        """All non-empty faces (including ``self``), optionally of one dimension.

        Faces are returned in canonical order.
        """
        cache = self._faces
        if cache is None:
            cache = {}
            object.__setattr__(self, "_faces", cache)
        out = cache.get(dim)
        if out is not None:
            return out
        if dim is not None:
            if dim < 0 or dim > self.dim:
                out = ()
            else:
                combos = itertools.combinations(self.sorted_vertices(), dim + 1)
                out = tuple(sorted((Simplex(c) for c in combos), key=Simplex.sort_key))
        else:
            acc = []
            for k in range(1, len(self.vertices) + 1):
                acc.extend(
                    Simplex(c)
                    for c in itertools.combinations(self.sorted_vertices(), k)
                )
            out = tuple(sorted(acc, key=Simplex.sort_key))
        cache[dim] = out
        return out

    def proper_faces(self) -> Tuple["Simplex", ...]:
        """All faces except ``self``."""
        return tuple(f for f in self.faces() if f != self)

    def boundary(self) -> Tuple["Simplex", ...]:
        """The codimension-1 faces, in canonical order."""
        return self.faces(dim=self.dim - 1)

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "Simplex") -> "Simplex":
        """Vertex-set union (the join's vertex set)."""
        return Simplex(self.vertices | other.vertices)

    def intersection(self, other: "Simplex") -> Optional["Simplex"]:
        """Vertex-set intersection, or ``None`` when disjoint."""
        common = self.vertices & other.vertices
        return Simplex(common) if common else None

    def without(self, v: Hashable) -> Optional["Simplex"]:
        """The face obtained by dropping vertex ``v`` (``None`` if empty)."""
        rest = self.vertices - {v}
        return Simplex(rest) if rest else None

    def with_vertex(self, v: Hashable) -> "Simplex":
        """The simplex obtained by adding vertex ``v``."""
        return Simplex(self.vertices | {v})

    def replace_vertex(self, old: Hashable, new: Hashable) -> "Simplex":
        """The simplex with ``old`` substituted by ``new``.

        Raises :class:`KeyError` if ``old`` is absent.
        """
        if old not in self.vertices:
            raise KeyError(f"{old!r} is not a vertex of {self!r}")
        return Simplex((self.vertices - {old}) | {new})


def intern_info() -> Dict[str, int]:
    """Size of the simplex intern table (live distinct simplices)."""
    return {"live_simplices": len(_INTERN)}


def simplex(*vertices: Hashable) -> Simplex:
    """Convenience constructor: ``simplex(a, b, c) == Simplex([a, b, c])``."""
    return Simplex(vertices)


def chrom(*pairs: Tuple[int, Any]) -> Simplex:
    """Build a chromatic simplex from ``(color, value)`` pairs.

    >>> chrom((0, 'a'), (1, 'b'))
    <(0:'a'), (1:'b')>
    """
    return Simplex(Vertex(c, x) for c, x in pairs)
