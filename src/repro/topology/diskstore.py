"""Persistent content-addressed store for subdivision towers and transforms.

Iterated chromatic subdivisions ``Ch^r(I)`` and link-connected transforms
are pure functions of their input complex/task, yet they dominate the
decision procedure's runtime and are recomputed by every CLI invocation
and every census pool worker.  This module gives them a small on-disk
cache:

* objects are pickled under ``<store dir>/<namespace>/<kk>/<key>.pkl``
  where ``key`` is a SHA-256 content hash of the *mathematical* input
  (canonical facet reprs — never object identities or memory addresses),
  so any process that constructs an equal complex gets a hit;
* the directory resolves like the telemetry store path: an explicit
  argument wins, then the ``REPRO_TOWER_CACHE`` environment variable,
  then ``.repro/towers`` under the current directory.  Setting the
  variable to ``0``/``off``/``false``/``no``/``disabled`` turns the store
  off entirely;
* writes are atomic (temp file + ``os.replace``) so a crashed writer can
  never leave a torn pickle; a *corrupt* entry (truncated pickle,
  incompatible class layout) is deleted and silently recomputed, while a
  transient I/O failure (``EACCES``, ``ENOSPC``, ``EIO``) is warned about
  and the entry is left alone — deleting a healthy entry because the
  disk hiccuped would destroy good cache state;
* every hit/miss/write/corruption/io-error increments a
  ``diskstore.<namespace>.*`` counter in :mod:`repro.obs`, so ``repro
  obs diff`` can lock cache effectiveness in against committed
  baselines.

The store piggybacks on the in-memory cache switch: inside
``caching_disabled()`` blocks (how benchmarks measure honest uncached
baselines) the disk layer is bypassed too.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import warnings
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from ..service.keys import content_hash
from .cache import caching_enabled

#: exception types that mean "this entry's bytes are bad" — a torn or
#: truncated pickle, garbage data, or a pickle referencing a class/field
#: layout that no longer exists.  Healing (delete + recompute) is the
#: right response to these, and *only* these: an ``OSError`` may hit a
#: perfectly healthy entry, and anything else is a programming error that
#: must propagate instead of masquerading as a cache miss.
_CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    ValueError,
    TypeError,
    UnicodeDecodeError,
)

#: exception types that mean "this object cannot be pickled" on store
_UNPICKLABLE_ERRORS = (pickle.PicklingError, AttributeError, TypeError)


def _count(name: str) -> None:
    # deferred import: repro.obs pulls in topology.cache during its own
    # initialization, so importing counter_add at module scope would cycle
    from ..obs import counter_add

    counter_add(name)

#: environment variable naming the store directory (or disabling the store)
ENV_VAR = "REPRO_TOWER_CACHE"

#: default store directory, relative to the current working directory
DEFAULT_DIR = os.path.join(".repro", "towers")

#: environment values that disable the store instead of naming a directory
_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

_override_dir: Optional[str] = None
_enabled: bool = True


def resolve_store_dir(path: Optional[str] = None) -> Optional[str]:
    """Resolve the store directory: argument > override > env > default.

    Returns ``None`` when the environment variable explicitly disables
    the store.
    """
    if path:
        return path
    if _override_dir is not None:
        return _override_dir
    env = os.environ.get(ENV_VAR)
    if env is not None and env.strip():
        if env.strip().lower() in _OFF_VALUES:
            return None
        return env
    return DEFAULT_DIR


def store_enabled() -> bool:
    """Whether loads/stores are live right now.

    False when programmatically disabled, when ``REPRO_TOWER_CACHE`` is an
    off-value, or inside ``caching_disabled()`` (uncached benchmarks must
    not be quietly served from disk).
    """
    if not _enabled:
        return False
    if not caching_enabled():
        return False
    return resolve_store_dir() is not None


def set_store(enabled: bool) -> bool:
    """Enable/disable the disk store; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def store_disabled() -> Iterator[None]:
    """Context manager: run a block with the disk store off."""
    previous = set_store(False)
    try:
        yield
    finally:
        set_store(previous)


@contextmanager
def store_at(path: str) -> Iterator[str]:
    """Context manager: redirect the store to ``path`` (and enable it)."""
    global _override_dir, _enabled
    prev_dir, prev_enabled = _override_dir, _enabled
    _override_dir = path
    _enabled = True
    try:
        yield path
    finally:
        _override_dir, _enabled = prev_dir, prev_enabled


# ---------------------------------------------------------------------------
# Content keys
# ---------------------------------------------------------------------------


# ``content_hash`` is re-exported from :mod:`repro.service.keys` (the
# shared hashing module all content-addressed layers now agree on); the
# digest semantics are unchanged, so committed corpus manifests and
# store directories hash identically.


def complex_key(k) -> str:
    """Content hash of a complex: its canonical facet reprs.

    Facets are in canonical sorted order and vertex reprs are
    deterministic, so equal complexes hash equally in every process —
    and any change to the complex (or to the repr format) invalidates
    the key.
    """
    return content_hash("\n".join(repr(f) for f in k.facets))


def task_key(task) -> str:
    """Content hash of a task: input/output facets plus the carrier map."""
    parts = [
        "in:" + "\n".join(repr(f) for f in task.input_complex.facets),
        "out:" + "\n".join(repr(f) for f in task.output_complex.facets),
    ]
    for s, image in sorted(task.delta.items(), key=lambda kv: kv[0].sort_key()):
        parts.append(f"{s!r}=>" + ";".join(repr(f) for f in image.facets))
    return content_hash("\n".join(parts))


# ---------------------------------------------------------------------------
# Load / store
# ---------------------------------------------------------------------------


def _entry_path(namespace: str, key: str, root: Optional[str]) -> Optional[str]:
    base = resolve_store_dir(root)
    if base is None:
        return None
    return os.path.join(base, namespace, key[:2], key + ".pkl")


def load(namespace: str, key: str, root: Optional[str] = None) -> Optional[Any]:
    """Fetch a stored object, or ``None`` on miss/corruption/disabled.

    A *corrupted* entry (torn write, incompatible pickle) is removed so
    the follow-up :func:`store` replaces it with a fresh one.  An I/O
    failure (``EACCES``, ``EIO``, …) is a different animal: the entry may
    be perfectly healthy, so it is left in place, a ``RuntimeWarning`` is
    issued, and a ``diskstore.<namespace>.io_error`` counter records the
    event.  Anything else — an ``AttributeError`` from a genuine bug in a
    stored class's ``__setstate__``, say, is corruption-shaped and heals;
    non-Exception signals propagate untouched.
    """
    if not store_enabled():
        return None
    path = _entry_path(namespace, key, root)
    if path is None:
        return None
    try:
        with open(path, "rb") as fh:
            obj = pickle.load(fh)
    except FileNotFoundError:
        _count(f"diskstore.{namespace}.miss")
        return None
    except OSError as exc:
        _count(f"diskstore.{namespace}.io_error")
        warnings.warn(
            f"diskstore: cannot read {path}: {exc} (entry kept; treating "
            "as a miss)",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    except _CORRUPTION_ERRORS:
        _count(f"diskstore.{namespace}.corrupt")
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - racing removers
            pass
        return None
    _count(f"diskstore.{namespace}.hit")
    return obj


def store(namespace: str, key: str, obj: Any, root: Optional[str] = None) -> Optional[str]:
    """Persist an object atomically; returns the entry path (or ``None``).

    Expected failures are swallowed — the store is an accelerator, never
    a correctness dependency — but they are no longer indistinguishable:
    an I/O failure (unwritable directory, full disk) warns and counts
    ``diskstore.<namespace>.io_error``, an unpicklable object counts
    ``diskstore.<namespace>.unpicklable``, and any other exception is a
    programming error that propagates.
    """
    if not store_enabled():
        return None
    path = _entry_path(namespace, key, root)
    if path is None:
        return None
    directory = os.path.dirname(path)
    try:
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    except OSError as exc:
        _count(f"diskstore.{namespace}.io_error")
        warnings.warn(
            f"diskstore: cannot write under {directory}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    try:
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except OSError as exc:
        _discard(tmp)
        _count(f"diskstore.{namespace}.io_error")
        warnings.warn(
            f"diskstore: cannot write {path}: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    except _UNPICKLABLE_ERRORS:
        _discard(tmp)
        _count(f"diskstore.{namespace}.unpicklable")
        return None
    except BaseException:
        # a programming error (or KeyboardInterrupt) mid-write must not
        # leak the temp file, and must not be swallowed either
        _discard(tmp)
        raise
    _count(f"diskstore.{namespace}.write")
    return path


def _discard(tmp: str) -> None:
    """Best-effort removal of a temp file after a failed write."""
    try:
        os.remove(tmp)
    except OSError:  # pragma: no cover - already gone or unremovable
        pass


def namespace_stats(namespace: str, root: Optional[str] = None) -> Dict[str, int]:
    """Entry count and byte total for one namespace's on-disk tier.

    Walks ``<store dir>/<namespace>`` counting committed ``.pkl`` entries
    (in-flight ``.tmp`` files are skipped — they are not cache state).
    This is the size-accounting read the service's ``/v1/stats`` and the
    soak gate ride; a disabled store reports zeros rather than raising,
    matching every other degrade-to-miss path in this module.  The walk
    is O(entries) — fine for a periodic sampler, not for a hot path.
    """
    base = resolve_store_dir(root)
    if base is None or (root is None and not _enabled):
        return {"entries": 0, "approx_bytes": 0}
    ns_dir = os.path.join(base, namespace)
    entries = 0
    approx_bytes = 0
    try:
        with os.scandir(ns_dir) as buckets:
            bucket_dirs = [b.path for b in buckets if b.is_dir()]
    except OSError:
        return {"entries": 0, "approx_bytes": 0}
    for bucket in bucket_dirs:
        try:
            with os.scandir(bucket) as files:
                for entry in files:
                    if not entry.name.endswith(".pkl"):
                        continue
                    try:
                        approx_bytes += entry.stat().st_size
                    except OSError:  # pragma: no cover - racing removers
                        continue
                    entries += 1
        except OSError:  # pragma: no cover - racing removers
            continue
    return {"entries": entries, "approx_bytes": approx_bytes}


def write_json_atomic(path: str, payload: Any) -> str:
    """Write a JSON document atomically (temp file + ``os.replace``).

    Unlike :func:`store`, failures propagate: callers (corpus manifests,
    run configs) treat these files as records of record, not as cache
    entries that may silently vanish.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        # propagate everything (these files are records of record, not
        # cache entries) — including KeyboardInterrupt, which the old
        # ``except Exception`` would have let leak the temp file
        _discard(tmp)
        raise
    return path


__all__ = [
    "DEFAULT_DIR",
    "ENV_VAR",
    "complex_key",
    "content_hash",
    "load",
    "namespace_stats",
    "resolve_store_dir",
    "set_store",
    "store",
    "store_at",
    "store_disabled",
    "store_enabled",
    "task_key",
    "write_json_atomic",
]
