"""Query memoization for immutable topology objects.

:class:`~repro.topology.complexes.SimplicialComplex` is immutable after
construction, so every structural query (links, stars, skeleta, the
1-skeleton graph, connected components, …) is a pure function of the
instance and its arguments.  This module provides the memoization layer
those queries use:

* :func:`memoized_method` — a decorator storing results in a per-instance
  ``_cache`` dict, keyed by ``(query name, args)``;
* a **global enable flag** — :func:`set_caching`, :func:`caching_enabled`
  and the :func:`caching_disabled` context manager, used by benchmarks to
  measure the uncached baseline honestly (disabled mode bypasses both
  lookup *and* store);
* an **epoch counter** — :func:`cache_clear` invalidates every per-instance
  cache at once without keeping a registry of instances (each cache records
  the epoch it was built in and is discarded when stale);
* **hit/miss statistics** per query, reported by :func:`cache_info` so the
  perf harness can emit hit rates alongside timings.

The caches are correctness-neutral: a memoized query must return the same
value the underlying computation would.  ``tests/topology/test_cache.py``
asserts this property query-by-query, and
``tests/solvability/test_cache_parity.py`` asserts verdict parity of the
full decision procedure with caching on and off.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, TypeVar, cast

_enabled: bool = True
_epoch: int = 0
#: query name -> [hits, misses]
_stats: Dict[str, List[int]] = {}

_EPOCH_KEY = "#epoch"

F = TypeVar("F", bound=Callable[..., Any])


def memoized_method(fn: F) -> F:
    """Memoize a method of an immutable object into its ``_cache`` slot.

    Positional arguments must be hashable (unhashable calls fall through to
    the raw function).  The wrapped function is available as
    ``method.__wrapped__`` — the test suite uses it to recompute queries
    without the cache.
    """
    name = fn.__qualname__
    stat = _stats.setdefault(name, [0, 0])

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if not _enabled:
            return fn(self, *args, **kwargs)
        cache = self._cache
        if cache is None or cache[_EPOCH_KEY] != _epoch:
            cache = {_EPOCH_KEY: _epoch}
            self._cache = cache
        key = (name, args, tuple(sorted(kwargs.items()))) if kwargs else (name, args)
        try:
            if key in cache:
                stat[0] += 1
                return cache[key]
        except TypeError:  # unhashable argument: skip memoization
            return fn(self, *args, **kwargs)
        stat[1] += 1
        out = fn(self, *args, **kwargs)
        cache[key] = out
        return out

    return cast(F, wrapper)


def caching_enabled() -> bool:
    """Whether query memoization is currently active."""
    return _enabled


def set_caching(enabled: bool) -> bool:
    """Globally enable/disable query memoization; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Context manager: run a block with memoization bypassed entirely.

    Used by ``benchmarks/bench_perf_core.py`` to time the uncached
    baseline; neither lookups nor stores happen inside the block, so
    previously cached results cannot leak into the measurement.
    """
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


def cache_clear(reset_stats: bool = True) -> None:
    """Invalidate every memoized query result (all instances at once).

    Implemented by bumping a global epoch: stale per-instance caches are
    discarded lazily on their next access.
    """
    global _epoch
    _epoch += 1
    if reset_stats:
        for pair in _stats.values():
            pair[0] = pair[1] = 0


def cache_info() -> Dict[str, Dict[str, Any]]:
    """Hit/miss counters (and hit rates) per memoized query.

    Only queries exercised since the last :func:`cache_clear` appear with
    nonzero counts.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for name, (hits, misses) in sorted(_stats.items()):
        total = hits + misses
        if not total:
            continue
        out[name] = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total,
        }
    return out
