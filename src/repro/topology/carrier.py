"""Carrier maps.

A *carrier map* ``Δ : K → 2^{K'}`` assigns to every simplex of a domain
complex a subcomplex of a codomain complex, monotonically: ``σ' ⊆ σ``
implies ``Δ(σ') ⊆ Δ(σ)``.  Task specifications, protocol complexes and the
splitting deformation of Section 4 are all expressed as carrier maps.

The paper additionally requires *rigidity* (``Δ(σ)`` is pure of the same
dimension as ``σ``) and, for chromatic complexes, *color preservation*
(``Δ(σ)`` uses exactly the colors of ``σ``).  Those are separate predicates
here so that intermediate constructions can be checked step by step.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .complexes import SimplicialComplex
from .simplex import Simplex


class CarrierMapError(ValueError):
    """Raised when a carrier-map validity check fails."""


class CarrierMap:
    """An explicit carrier map between two finite complexes.

    Parameters
    ----------
    domain, codomain:
        The complexes the map goes between.
    images:
        A mapping from every simplex of ``domain`` to its image, given either
        as a :class:`SimplicialComplex` or as an iterable of simplices (whose
        downward closure is taken).  Simplices of ``domain`` missing from
        ``images`` get the empty image.
    check:
        When true (default), verify that every image is a subcomplex of
        ``codomain`` and that the map is monotonic.
    """

    __slots__ = ("domain", "codomain", "_images")

    def __init__(
        self,
        domain: SimplicialComplex,
        codomain: SimplicialComplex,
        images: Mapping[Simplex, Union[SimplicialComplex, Iterable]],
        check: bool = True,
    ):
        self.domain = domain
        self.codomain = codomain
        self._images: Dict[Simplex, SimplicialComplex] = {}
        for s, img in images.items():
            if not isinstance(s, Simplex):
                s = Simplex(s)
            if s not in domain:
                raise CarrierMapError(f"{s!r} is not a simplex of the domain")
            if not isinstance(img, SimplicialComplex):
                img = SimplicialComplex(img)
            self._images[s] = img
        for s in domain.simplices():
            self._images.setdefault(s, SimplicialComplex.empty())
        if check:
            self.validate()

    # -- evaluation ----------------------------------------------------------

    def __call__(self, arg) -> SimplicialComplex:
        """Evaluate the map.

        Accepts a simplex (image subcomplex), a complex or an iterable of
        simplices (union of images).
        """
        if isinstance(arg, Simplex):
            return self._images[arg]
        if isinstance(arg, SimplicialComplex):
            return self.union_image(arg.simplices())
        if isinstance(arg, Iterable):
            return self.union_image(arg)
        raise TypeError(f"cannot evaluate a carrier map on {arg!r}")

    def union_image(self, simplices: Iterable) -> SimplicialComplex:
        """The union of the images of the given simplices."""
        facets: List[Simplex] = []
        for s in simplices:
            if not isinstance(s, Simplex):
                s = Simplex(s)
            facets.extend(self._images[s].facets)
        return SimplicialComplex(facets)

    def image(self) -> SimplicialComplex:
        """The union of all images (the reachable part of the codomain)."""
        return self.union_image(self.domain.facets)

    def items(self) -> Tuple[Tuple[Simplex, SimplicialComplex], ...]:
        """``(simplex, image)`` pairs in canonical domain order."""
        return tuple((s, self._images[s]) for s in self.domain.simplices())

    # -- predicates ---------------------------------------------------------

    def validate(self) -> None:
        """Check well-formedness: images in codomain, monotonicity.

        Raises :class:`CarrierMapError` with a specific message on failure.
        """
        for s, img in self._images.items():
            for f in img.facets:
                if f not in self.codomain:
                    raise CarrierMapError(
                        f"image of {s!r} contains {f!r}, absent from the codomain"
                    )
        bad = self._monotonicity_violation()
        if bad is not None:
            small, big = bad
            raise CarrierMapError(
                f"not monotonic: Δ({small!r}) is not a subcomplex of Δ({big!r})"
            )

    def _monotonicity_violation(self) -> Optional[Tuple[Simplex, Simplex]]:
        for s in self.domain.simplices():
            if s.dim == 0:
                continue
            img = self._images[s]
            for face in s.boundary():
                if not self._images[face].is_subcomplex_of(img):
                    return (face, s)
        return None

    def is_monotonic(self) -> bool:
        """True iff ``σ' ⊆ σ`` implies ``Δ(σ') ⊆ Δ(σ)``."""
        return self._monotonicity_violation() is None

    def is_rigid(self) -> bool:
        """True iff every nonempty image is pure of its simplex's dimension."""
        for s, img in self._images.items():
            if not img:
                continue
            if img.dim != s.dim or not img.is_pure():
                return False
        return True

    def is_chromatic(self) -> bool:
        """True iff every facet of ``Δ(σ)`` carries exactly the colors of ``σ``."""
        for s, img in self._images.items():
            try:
                want = s.colors()
            except ValueError:
                return False
            for f in img.facets:
                try:
                    got = f.colors()
                except ValueError:
                    return False
                if got != want:
                    return False
        return True

    def is_strict(self) -> bool:
        """True iff every domain simplex has a nonempty image."""
        return all(bool(img) for img in self._images.values())

    # -- transformations ------------------------------------------------------

    def monotonize(self) -> "CarrierMap":
        """Prune images until the map is monotonic.

        Following the paper's remark in Section 2.3, outputs that would
        violate monotonicity can never be decided by a correct protocol, so
        removing them preserves solvability.  Pruning proceeds top-down: the
        image of a face is intersected with the images of all its cofaces.
        """
        pruned: Dict[Simplex, SimplicialComplex] = {
            s: img for s, img in self._images.items()
        }
        by_dim = sorted(self.domain.simplices(), key=lambda s: -s.dim)
        for s in by_dim:
            if s.dim == self.domain.dim:
                continue
            img = pruned[s]
            cofaces = [
                t
                for t in self.domain.simplices(dim=s.dim + 1)
                if s.vertices < t.vertices
            ]
            for t in cofaces:
                img = img.intersection(pruned[t])
            pruned[s] = img
        return CarrierMap(self.domain, self.codomain, pruned, check=False)

    def restricted_to(self, sub: SimplicialComplex) -> "CarrierMap":
        """Restrict the domain to a subcomplex."""
        if not sub.is_subcomplex_of(self.domain):
            raise CarrierMapError("restriction target is not a subcomplex of the domain")
        return CarrierMap(
            sub,
            self.codomain,
            {s: self._images[s] for s in sub.simplices()},
            check=False,
        )

    def with_codomain(self, codomain: SimplicialComplex) -> "CarrierMap":
        """Rebase onto a larger codomain (images must still fit)."""
        return CarrierMap(self.domain, codomain, dict(self._images), check=True)

    def compose(self, other: "CarrierMap") -> "CarrierMap":
        """The composition ``other ∘ self`` (apply ``self`` first).

        ``(other ∘ self)(σ)`` is the union of ``other(τ)`` over all
        simplices ``τ`` of ``self(σ)``.
        """
        images = {
            s: other.union_image(self._images[s].simplices())
            for s in self.domain.simplices()
        }
        return CarrierMap(self.domain, other.codomain, images, check=False)

    # -- protocol ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, CarrierMap):
            return NotImplemented
        return (
            self.domain == other.domain
            and self.codomain == other.codomain
            and self._images == other._images
        )

    def __hash__(self) -> int:
        return hash((self.domain, self.codomain, tuple(sorted(
            ((s, img) for s, img in self._images.items()),
            key=lambda p: p[0].sort_key(),
        ))))

    def __repr__(self) -> str:
        return (
            f"CarrierMap({self.domain!r} -> {self.codomain!r}, "
            f"{len(self._images)} images)"
        )
