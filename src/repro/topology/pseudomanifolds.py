"""Pseudomanifold diagnostics for 2-complexes.

The splitting deformation is a cousin of the non-manifold decomposition
used in geometric modeling (the paper's Section 1.3 cites De Floriani et
al.): a local articulation point is precisely a vertex where the complex
fails to be locally a disk.  This module provides the corresponding
diagnostics for 2-dimensional complexes:

* every edge of a *pseudomanifold* lies in at most two triangles;
* the *boundary* consists of the edges lying in exactly one triangle;
* a vertex is a *manifold vertex* when its link is a path or a cycle —
  equivalently connected with maximal degree 2;
* :func:`non_manifold_vertices` are exactly the global articulation
  vertices plus the "fans" where more than two triangles share an edge.

Applied to the zoo: the hourglass output complex is a pseudomanifold with
one non-manifold vertex (the waist); splitting it is the paper's move, and
after splitting the complex becomes two disks.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from .complexes import SimplicialComplex
from .simplex import Simplex


def edge_triangle_degrees(k: SimplicialComplex) -> Dict[Simplex, int]:
    """How many triangles contain each edge."""
    degrees: Dict[Simplex, int] = {e: 0 for e in k.simplices(dim=1)}
    for t in k.simplices(dim=2):
        for e in t.faces(dim=1):
            degrees[e] += 1
    return degrees


def is_pseudomanifold(k: SimplicialComplex) -> bool:
    """Pure 2-dimensional with every edge in at most two triangles."""
    if k.dim != 2 or not k.is_pure():
        return False
    return all(d <= 2 for d in edge_triangle_degrees(k).values())


def boundary_complex(k: SimplicialComplex) -> SimplicialComplex:
    """The subcomplex of edges lying in exactly one triangle."""
    edges = [e for e, d in edge_triangle_degrees(k).items() if d == 1]
    if not edges:
        return SimplicialComplex.empty()
    return SimplicialComplex(edges)


def is_closed_pseudomanifold(k: SimplicialComplex) -> bool:
    """A pseudomanifold with empty boundary (every edge in two triangles)."""
    return is_pseudomanifold(k) and not boundary_complex(k)


def is_manifold_vertex(k: SimplicialComplex, v: Hashable) -> bool:
    """Whether the link of ``v`` is a single path or cycle.

    That is the local condition for ``|K|`` to be a surface (possibly with
    boundary) around ``v``.
    """
    link = k.link(v)
    if not link.is_connected() or not link.vertices:
        return False
    degrees = [len(link.link(w).vertices) for w in link.vertices]
    return all(d <= 2 for d in degrees)


def non_manifold_vertices(k: SimplicialComplex) -> Tuple[Hashable, ...]:
    """Vertices around which ``|K|`` is not locally a surface."""
    return tuple(v for v in k.vertices if not is_manifold_vertex(k, v))


def decomposition_summary(k: SimplicialComplex) -> Dict[str, object]:
    """A one-look report: manifoldness, boundary size, defect locations."""
    degrees = edge_triangle_degrees(k)
    return {
        "pure_2d": k.dim == 2 and k.is_pure(),
        "pseudomanifold": is_pseudomanifold(k),
        "closed": is_closed_pseudomanifold(k),
        "boundary_edges": sum(1 for d in degrees.values() if d == 1),
        "overloaded_edges": sum(1 for d in degrees.values() if d > 2),
        "non_manifold_vertices": non_manifold_vertices(k),
        "components": len(k.connected_components()),
    }
