"""Simplicial maps and the "carried by Δ" relation.

A *simplicial map* is a vertex map that sends simplices to simplices.  A
*chromatic* simplicial map additionally preserves colors.  A map
``f : P → O`` defined on a complex ``P`` that subdivides (or more generally
is carried over) an input complex ``I`` is *carried by* a carrier map
``Δ : I → 2^O`` when ``f(P(σ)) ⊆ Δ(σ)`` for every ``σ ∈ I`` — this is the
algebraic form of "the protocol's decisions respect the task
specification" (Section 2.4 of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Tuple

from .carrier import CarrierMap
from .complexes import SimplicialComplex
from .simplex import Simplex, Vertex, color_of


class NotSimplicialError(ValueError):
    """Raised when a vertex map fails to send some simplex to a simplex."""


class SimplicialMap:
    """A simplicial map between two finite complexes.

    Parameters
    ----------
    domain, codomain:
        Source and target complexes.
    vertex_map:
        Image of every vertex of ``domain``.
    check:
        When true (default), verify totality and simpliciality.
    """

    __slots__ = ("domain", "codomain", "_vmap")

    def __init__(
        self,
        domain: SimplicialComplex,
        codomain: SimplicialComplex,
        vertex_map: Mapping[Hashable, Hashable],
        check: bool = True,
    ):
        self.domain = domain
        self.codomain = codomain
        self._vmap: Dict[Hashable, Hashable] = dict(vertex_map)
        if check:
            self.validate()

    def validate(self) -> None:
        """Check totality, codomain membership and simpliciality."""
        for v in self.domain.vertices:
            if v not in self._vmap:
                raise NotSimplicialError(f"vertex {v!r} has no image")
            w = self._vmap[v]
            if Simplex([w]) not in self.codomain:
                raise NotSimplicialError(f"image {w!r} of {v!r} is not in the codomain")
        for f in self.domain.facets:
            img = self.apply(f)
            if img not in self.codomain:
                raise NotSimplicialError(
                    f"facet {f!r} maps to {img!r}, which is not a simplex of the codomain"
                )

    # -- evaluation ----------------------------------------------------------

    def __call__(self, arg):
        if isinstance(arg, Simplex):
            return self.apply(arg)
        return self._vmap[arg]

    def apply(self, s: Simplex) -> Simplex:
        """The image simplex ``{f(v) : v in s}`` (duplicates collapse)."""
        return Simplex(self._vmap[v] for v in s.vertices)

    def vertex_image(self, v: Hashable) -> Hashable:
        """Image of a single vertex."""
        return self._vmap[v]

    def image_complex(self) -> SimplicialComplex:
        """The subcomplex of the codomain spanned by image simplices."""
        return SimplicialComplex(self.apply(f) for f in self.domain.facets)

    def as_dict(self) -> Dict[Hashable, Hashable]:
        """A copy of the underlying vertex map."""
        return dict(self._vmap)

    # -- predicates ------------------------------------------------------------

    def is_chromatic(self) -> bool:
        """True iff colors are preserved (``f(i, x) = (i, y)``)."""
        for v, w in self._vmap.items():
            cv, cw = color_of(v), color_of(w)
            if cv is None or cv != cw:
                return False
        return True

    def is_carried_by(
        self,
        delta: CarrierMap,
        via: Optional[CarrierMap] = None,
    ) -> bool:
        """Whether this map is carried by ``delta``.

        ``delta`` is a carrier map from some base complex ``I`` to the
        codomain.  ``via`` is the carrier map ``I → domain`` identifying, for
        each ``σ ∈ I``, the subcomplex ``via(σ)`` of the domain lying over
        ``σ``; when ``domain`` *is* ``I`` itself, ``via`` may be omitted and
        the identity carrier is used.
        """
        base = delta.domain
        for s in base.simplices():
            over = via(s) if via is not None else SimplicialComplex([s])
            allowed = delta(s)
            for f in over.facets:
                if self.apply(f) not in allowed:
                    return False
        return True

    def carried_by_violation(
        self,
        delta: CarrierMap,
        via: Optional[CarrierMap] = None,
    ) -> Optional[Tuple[Simplex, Simplex]]:
        """First ``(base simplex, offending domain simplex)`` pair, if any."""
        for s in delta.domain.simplices():
            over = via(s) if via is not None else SimplicialComplex([s])
            allowed = delta(s)
            for f in over.facets:
                if self.apply(f) not in allowed:
                    return (s, f)
        return None

    # -- algebra ------------------------------------------------------------------

    def compose(self, other: "SimplicialMap") -> "SimplicialMap":
        """The composition ``other ∘ self`` (apply ``self`` first)."""
        return SimplicialMap(
            self.domain,
            other.codomain,
            {v: other.vertex_image(self._vmap[v]) for v in self.domain.vertices},
            check=False,
        )

    def restricted_to(self, sub: SimplicialComplex) -> "SimplicialMap":
        """Restrict the domain to a subcomplex."""
        if not sub.is_subcomplex_of(self.domain):
            raise ValueError("restriction target is not a subcomplex of the domain")
        return SimplicialMap(
            sub,
            self.codomain,
            {v: self._vmap[v] for v in sub.vertices},
            check=False,
        )

    # -- protocol ------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimplicialMap):
            return NotImplemented
        return (
            self.domain == other.domain
            and self.codomain == other.codomain
            and all(self._vmap[v] == other._vmap[v] for v in self.domain.vertices)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.domain,
                self.codomain,
                tuple(self._vmap[v] for v in self.domain.vertices),
            )
        )

    def __repr__(self) -> str:
        return f"SimplicialMap({self.domain!r} -> {self.codomain!r})"


def identity_map(k: SimplicialComplex) -> SimplicialMap:
    """The identity simplicial map on ``k``."""
    return SimplicialMap(k, k, {v: v for v in k.vertices}, check=False)


def chromatic_projection(
    domain: SimplicialComplex,
    codomain: SimplicialComplex,
    value_fn,
) -> SimplicialMap:
    """Build a chromatic map by transforming vertex values.

    ``value_fn(vertex) -> value``; each vertex ``(i, x)`` maps to
    ``(i, value_fn(vertex))``.
    """
    vmap = {}
    for v in domain.vertices:
        if not isinstance(v, Vertex):
            raise NotSimplicialError(f"{v!r} is not a chromatic vertex")
        vmap[v] = Vertex(v.color, value_fn(v))
    return SimplicialMap(domain, codomain, vmap)
