"""Simplicial homology over Z and GF(2).

This module provides the small amount of algebraic topology the solvability
machinery needs:

* boundary matrices and Betti numbers of a finite complex,
* an integer Smith normal form (for exact homology with torsion),
* exact linear solvers over Z and GF(2), used by the homological
  obstruction test (whether some choice of connecting paths makes a
  boundary loop null-homologous — a computable *necessary* condition for
  the continuous map of Theorem 5.1 to exist).

All matrices are dense :mod:`numpy` integer arrays; the complexes in this
domain are tiny (hundreds of simplices), so no sparse machinery is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from . import bitcore as _bitcore
from .complexes import SimplicialComplex
from .simplex import Simplex


@dataclass(frozen=True)
class ChainBasis:
    """Ordered simplex bases of the chain groups of a complex."""

    complex: SimplicialComplex
    by_dim: Tuple[Tuple[Simplex, ...], ...]

    @classmethod
    def of(cls, k: SimplicialComplex) -> "ChainBasis":
        dims = max(k.dim, 0)
        return cls(k, tuple(k.simplices(dim=d) for d in range(dims + 1)))

    def index(self, s: Simplex) -> int:
        """Index of a simplex within its dimension's basis."""
        return self.by_dim[s.dim].index(s)

    def dim_count(self, d: int) -> int:
        if d < 0 or d >= len(self.by_dim):
            return 0
        return len(self.by_dim[d])


def boundary_matrix(basis: ChainBasis, k: int) -> np.ndarray:
    """The boundary operator ``∂_k : C_k → C_{k-1}`` as an integer matrix.

    Signs follow the canonical vertex order of each simplex.  ``∂_0`` is the
    zero map (reduced homology is not used here).
    """
    rows = basis.dim_count(k - 1)
    cols = basis.dim_count(k)
    mat = np.zeros((rows, cols), dtype=np.int64)
    if k <= 0 or cols == 0:
        return mat
    row_index: Dict[Simplex, int] = {s: i for i, s in enumerate(basis.by_dim[k - 1])}
    for j, s in enumerate(basis.by_dim[k]):
        verts = s.sorted_vertices()
        for omit in range(len(verts)):
            face = Simplex(verts[:omit] + verts[omit + 1 :])
            mat[row_index[face], j] = (-1) ** omit
    return mat


# ---------------------------------------------------------------------------
# Exact linear algebra
# ---------------------------------------------------------------------------


def rank_mod2(a: np.ndarray) -> int:
    """Rank of a matrix over GF(2) by Gaussian elimination.

    Dispatches to the bit-packed elimination of :mod:`.bitcore` (one
    integer per row, XOR row updates) when enabled; the numpy kernel below
    is retained as the legacy/parity path.
    """
    if _bitcore.bitcore_enabled():
        return _bitcore.gf2_rank(_bitcore.pack_rows(a))
    return _legacy_rank_mod2(a)


def _legacy_rank_mod2(a: np.ndarray) -> int:
    m = (np.array(a, dtype=np.int64) % 2).astype(np.uint8)
    rows, cols = m.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if m[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        m[[rank, pivot]] = m[[pivot, rank]]
        for r in range(rows):
            if r != rank and m[r, col]:
                m[r] ^= m[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def solve_mod2(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Solve ``A x = b`` over GF(2); return a solution or ``None``.

    Dispatches to :func:`repro.topology.bitcore.gf2_solve` when the
    packed kernels are enabled; the numpy path is the legacy/parity one.
    """
    if _bitcore.bitcore_enabled():
        a_arr = np.asarray(a)
        ncols = a_arr.shape[1] if a_arr.ndim == 2 else 0
        rows = _bitcore.pack_rows(a_arr)
        rhs = [int(v) & 1 for v in np.asarray(b).reshape(-1)]
        packed = _bitcore.gf2_solve(rows, rhs, ncols)
        if packed is None:
            return None
        x = np.zeros(ncols, dtype=np.uint8)
        for c in range(ncols):
            if packed >> c & 1:
                x[c] = 1
        return x
    return _legacy_solve_mod2(a, b)


def _legacy_solve_mod2(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    a2 = (np.array(a, dtype=np.int64) % 2).astype(np.uint8)
    b2 = (np.array(b, dtype=np.int64) % 2).astype(np.uint8).reshape(-1)
    rows, cols = a2.shape
    aug = np.concatenate([a2, b2.reshape(-1, 1)], axis=1)
    pivots: List[Tuple[int, int]] = []
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if aug[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        aug[[rank, pivot]] = aug[[pivot, rank]]
        for r in range(rows):
            if r != rank and aug[r, col]:
                aug[r] ^= aug[rank]
        pivots.append((rank, col))
        rank += 1
    for r in range(rank, rows):
        if aug[r, cols]:
            return None
    x = np.zeros(cols, dtype=np.uint8)
    for r, c in pivots:
        x[c] = aug[r, cols]
    return x


def smith_normal_form(a: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Smith normal form ``S = U A V`` with unimodular ``U, V``.

    Returns ``(S, U, V)``.  Python integers (object dtype) are used
    internally to avoid overflow; inputs here are tiny.
    """
    s = np.array(a, dtype=object)
    rows, cols = s.shape
    u = np.identity(rows, dtype=object)
    v = np.identity(cols, dtype=object)

    def pivot_position(t: int) -> Optional[Tuple[int, int]]:
        best = None
        for i in range(t, rows):
            for j in range(t, cols):
                if s[i, j] != 0 and (best is None or abs(s[i, j]) < abs(s[best[0], best[1]])):
                    best = (i, j)
        return best

    t = 0
    while t < min(rows, cols):
        pos = pivot_position(t)
        if pos is None:
            break
        i, j = pos
        s[[t, i]] = s[[i, t]]
        u[[t, i]] = u[[i, t]]
        s[:, [t, j]] = s[:, [j, t]]
        v[:, [t, j]] = v[:, [j, t]]
        # Reduce row t and column t against the pivot.  Each quotient step
        # leaves remainders strictly smaller than |pivot|, so re-picking the
        # smallest entry makes the pivot's absolute value strictly decrease
        # whenever a remainder survives; the loop therefore terminates.
        for i in range(t + 1, rows):
            q = s[i, t] // s[t, t]
            if q:
                s[i] -= q * s[t]
                u[i] -= q * u[t]
        for j in range(t + 1, cols):
            q = s[t, j] // s[t, t]
            if q:
                s[:, j] -= q * s[:, t]
                v[:, j] -= q * v[:, t]
        if any(s[i, t] != 0 for i in range(t + 1, rows)) or any(
            s[t, j] != 0 for j in range(t + 1, cols)
        ):
            continue  # remainders survive: re-pivot on a smaller entry
        # Divisibility chain: fold a row containing a non-divisible entry
        # into row t, which forces a smaller pivot on the next pass.
        problem_row = None
        for i in range(t + 1, rows):
            if any(s[i, j] % s[t, t] != 0 for j in range(t + 1, cols)):
                problem_row = i
                break
        if problem_row is not None:
            s[t] += s[problem_row]
            u[t] += u[problem_row]
            continue
        if s[t, t] < 0:
            s[t] = -s[t]
            u[t] = -u[t]
        t += 1
    return s, u, v


def integer_rank(a: np.ndarray) -> int:
    """Rank of an integer matrix (over Q), computed exactly via SNF."""
    if a.size == 0:
        return 0
    s, _, _ = smith_normal_form(a)
    return int(sum(1 for i in range(min(s.shape)) if s[i, i] != 0))


def solve_integer(a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
    """Solve ``A x = b`` over the integers; return a solution or ``None``."""
    a = np.array(a, dtype=object)
    b = np.array(b, dtype=object).reshape(-1)
    if a.size == 0:
        return np.zeros(a.shape[1], dtype=object) if not b.any() else None
    s, u, v = smith_normal_form(a)
    c = u @ b
    x = np.zeros(a.shape[1], dtype=object)
    r = min(s.shape)
    for i in range(len(c)):
        d = s[i, i] if i < r else 0
        if d == 0:
            if c[i] != 0:
                return None
        else:
            if c[i] % d != 0:
                return None
            x[i] = c[i] // d
    return v @ x


# ---------------------------------------------------------------------------
# Homology of complexes
# ---------------------------------------------------------------------------


def betti_numbers(k: SimplicialComplex, max_dim: Optional[int] = None) -> Tuple[int, ...]:
    """Betti numbers ``b_0, …, b_d`` over the rationals."""
    if not k:
        return ()
    basis = ChainBasis.of(k)
    top = k.dim if max_dim is None else min(max_dim, k.dim)
    ranks: List[int] = []
    boundaries = [boundary_matrix(basis, d) for d in range(top + 2)]
    for d in range(top + 1):
        n_d = basis.dim_count(d)
        rank_d = integer_rank(boundaries[d]) if d > 0 else 0
        rank_d1 = integer_rank(boundaries[d + 1]) if basis.dim_count(d + 1) else 0
        ranks.append(n_d - rank_d - rank_d1)
    return tuple(ranks)


def homology_torsion(k: SimplicialComplex, dim: int) -> Tuple[int, ...]:
    """Torsion coefficients of ``H_dim`` (invariant factors > 1)."""
    basis = ChainBasis.of(k)
    if basis.dim_count(dim + 1) == 0:
        return ()
    s, _, _ = smith_normal_form(boundary_matrix(basis, dim + 1))
    coeffs = [int(s[i, i]) for i in range(min(s.shape)) if s[i, i] not in (0, 1)]
    return tuple(abs(c) for c in coeffs)


def edge_chain(basis: ChainBasis, path: Sequence[Hashable]) -> np.ndarray:
    """The 1-chain of a vertex path, with orientation signs.

    ``path`` is a sequence of vertices; consecutive pairs must be edges of
    the complex.  A closed path yields a cycle.
    """
    vec = np.zeros(basis.dim_count(1), dtype=np.int64)
    edge_index: Dict[Simplex, int] = {s: i for i, s in enumerate(basis.by_dim[1])}
    for a, b in zip(path, path[1:]):
        if a == b:
            continue
        e = Simplex([a, b])
        if e not in edge_index:
            raise ValueError(f"{e!r} is not an edge of the complex")
        lo, hi = e.sorted_vertices()
        sign = 1 if (a, b) == (lo, hi) else -1
        vec[edge_index[e]] += sign
    return vec


def is_null_homologous(
    k: SimplicialComplex, cycle: np.ndarray, over: str = "Z"
) -> bool:
    """Whether a 1-cycle bounds in ``k`` (over Z or GF(2))."""
    basis = ChainBasis.of(k)
    d2 = boundary_matrix(basis, 2)
    if over == "Z":
        return solve_integer(d2, cycle) is not None
    if over == "Z2":
        return solve_mod2(d2, cycle) is not None
    raise ValueError(f"unknown coefficient ring {over!r}")


def cycle_space_generators(k: SimplicialComplex) -> List[np.ndarray]:
    """Fundamental 1-cycles of the 1-skeleton (one per non-tree edge).

    Returned as integer vectors in the edge basis of ``k``.  Together with
    the boundaries of 2-simplices they span all 1-cycles.  Any spanning
    forest yields a basis of the same integral cycle lattice, so the fast
    path (a plain BFS forest with parent pointers) and the legacy path
    (networkx spanning tree + shortest paths) are interchangeable for
    every caller — the obstruction test only quotients by their span.
    """
    if _bitcore.bitcore_enabled():
        return _bfs_cycle_space_generators(k)
    return _legacy_cycle_space_generators(k)


def _bfs_cycle_space_generators(k: SimplicialComplex) -> List[np.ndarray]:
    from collections import deque

    basis = ChainBasis.of(k)
    edges = basis.by_dim[1] if len(basis.by_dim) > 1 else ()
    if not edges:
        return []
    adj: Dict[Hashable, List[Hashable]] = {v: [] for v in k.vertices}
    for e in edges:
        a, b = e.sorted_vertices()
        adj[a].append(b)
        adj[b].append(a)
    parent: Dict[Hashable, Optional[Hashable]] = {}
    depth: Dict[Hashable, int] = {}
    for root in k.vertices:
        if root in parent:
            continue
        parent[root] = None
        depth[root] = 0
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for w in adj[u]:
                if w not in parent:
                    parent[w] = u
                    depth[w] = depth[u] + 1
                    queue.append(w)
    forest = {frozenset((w, p)) for w, p in parent.items() if p is not None}
    cycles = []
    for e in edges:
        a, b = e.sorted_vertices()
        if frozenset((a, b)) in forest:
            continue
        # walk both endpoints up to their lowest common ancestor
        ups_a = [a]
        ups_b = [b]
        pa, pb = a, b
        while depth[pa] > depth[pb]:
            pa = parent[pa]
            ups_a.append(pa)
        while depth[pb] > depth[pa]:
            pb = parent[pb]
            ups_b.append(pb)
        while pa != pb:
            pa = parent[pa]
            ups_a.append(pa)
            pb = parent[pb]
            ups_b.append(pb)
        # closed path a → b → … → lca → … → a
        path = ups_b + list(reversed(ups_a[:-1]))
        cycles.append(edge_chain(basis, [a] + path))
    return cycles


def _legacy_cycle_space_generators(k: SimplicialComplex) -> List[np.ndarray]:
    import networkx as nx

    basis = ChainBasis.of(k)
    if basis.dim_count(1) == 0:
        return []
    g = k.graph()
    cycles = []
    for comp in nx.connected_components(g):
        sub = g.subgraph(comp)
        tree = nx.minimum_spanning_tree(sub)
        tree_edges = {frozenset(e) for e in tree.edges()}
        for a, b in sub.edges():
            if frozenset((a, b)) in tree_edges:
                continue
            path = nx.shortest_path(tree, b, a)
            cycles.append(edge_chain(basis, [a] + list(path)))
    return cycles
