"""Links and link-connectivity helpers.

The *link* of a vertex ``v`` in a complex ``K`` is
``lk_K(v) = { σ : v ∉ σ and σ ∪ {v} ∈ K }``.  For the 2-dimensional
complexes of three-process tasks, links are graphs, and the paper's central
combinatorial notion — the *local articulation point* — is a vertex whose
link inside ``Δ(σ)`` is a disconnected graph (Section 4).

This module exposes free-function forms of the link machinery (the methods
also exist on :class:`SimplicialComplex`) plus the *global* articulation
scan used by tests and reporting; the per-input-facet (local) scan lives in
:mod:`repro.splitting.lap`.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Tuple

from .complexes import SimplicialComplex


def link(k: SimplicialComplex, v: Hashable) -> SimplicialComplex:
    """``lk_K(v)``."""
    return k.link(v)


def link_components(k: SimplicialComplex, v: Hashable) -> Tuple[FrozenSet[Hashable], ...]:
    """Connected components (vertex sets) of ``lk_K(v)``."""
    return k.link_components(v)


def is_link_connected(k: SimplicialComplex) -> bool:
    """Whether every vertex of ``k`` has a connected link."""
    return k.is_link_connected()


def articulation_vertices(k: SimplicialComplex) -> Tuple[Hashable, ...]:
    """Vertices of ``k`` whose link has two or more connected components.

    This is the *global* notion (link within all of ``k``).  The paper's
    LAPs are relative to ``Δ(σ)`` for an input facet ``σ``; see
    :func:`repro.splitting.lap.local_articulation_points`.
    """
    out = []
    for v in k.vertices:
        if len(k.link_components(v)) >= 2:
            out.append(v)
    return tuple(out)


def longest_link_size(k: SimplicialComplex) -> int:
    """The maximum number of vertices over all links in ``k``.

    The paper bounds the running time of the Figure 7 algorithm by the
    length of the longest link in the output complex; benchmarks use this
    quantity as the predictor.
    """
    best = 0
    for v in k.vertices:
        best = max(best, len(k.link(v).vertices))
    return best
