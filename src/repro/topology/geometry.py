"""Geometric realizations and piecewise-linear maps.

A simplicial map ``f`` between complexes induces a continuous map
``|f| : |K| → |K'|`` between their geometric realizations (equation
(3.2.2) of Herlihy–Kozlov–Rajsbaum, cited by the paper in Section 5.1).
This module realizes complexes with concrete coordinates and evaluates the
induced PL maps, so that the "continuous map" side of Theorem 5.1 can be
demonstrated numerically (see ``examples/`` and the geometry tests).

Points of ``|K|`` are represented as :class:`RealizationPoint`: a simplex
together with barycentric coordinates over its (canonically ordered)
vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from .complexes import SimplicialComplex
from .maps import SimplicialMap
from .simplex import Simplex


@dataclass(frozen=True)
class RealizationPoint:
    """A point of ``|K|``: barycentric coordinates in a carrier simplex.

    ``coords[i]`` is the weight of ``simplex.sorted_vertices()[i]``; weights
    are nonnegative and sum to 1.
    """

    simplex: Simplex
    coords: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.coords) != len(self.simplex):
            raise ValueError("coordinate count must match simplex size")
        if any(c < -1e-12 for c in self.coords):
            raise ValueError("barycentric coordinates must be nonnegative")
        if abs(sum(self.coords) - 1.0) > 1e-9:
            raise ValueError("barycentric coordinates must sum to 1")

    def as_weights(self) -> Dict[Hashable, float]:
        """Vertex → weight mapping (zero-weight vertices dropped)."""
        return {
            v: c
            for v, c in zip(self.simplex.sorted_vertices(), self.coords)
            if c > 0.0
        }

    def support(self) -> Simplex:
        """The minimal face containing the point (vertices of positive weight)."""
        return Simplex(self.as_weights().keys())


def barycenter(s: Simplex) -> RealizationPoint:
    """The barycenter of a simplex as a realization point."""
    n = len(s)
    return RealizationPoint(s, tuple(1.0 / n for _ in range(n)))


class Realization:
    """A concrete embedding of a complex's vertices in Euclidean space.

    Coordinates may be supplied explicitly; otherwise a deterministic
    spring layout (seeded) in the plane is computed — adequate for
    visualisation and for numerically sampling PL maps.
    """

    def __init__(
        self,
        complex_: SimplicialComplex,
        positions: Optional[Mapping[Hashable, Tuple[float, ...]]] = None,
        dim: int = 2,
    ):
        self.complex = complex_
        if positions is not None:
            self.positions: Dict[Hashable, np.ndarray] = {
                v: np.asarray(p, dtype=float) for v, p in positions.items()
            }
            missing = [v for v in complex_.vertices if v not in self.positions]
            if missing:
                raise ValueError(f"positions missing for vertices: {missing!r}")
        else:
            import networkx as nx

            layout = nx.spring_layout(complex_.graph(), seed=7, dim=dim)
            self.positions = {v: np.asarray(p, dtype=float) for v, p in layout.items()}

    def locate(self, point: RealizationPoint) -> np.ndarray:
        """Euclidean coordinates of a realization point."""
        if point.simplex not in self.complex:
            raise ValueError(f"{point.simplex!r} is not a simplex of the complex")
        verts = point.simplex.sorted_vertices()
        return sum(
            c * self.positions[v] for v, c in zip(verts, point.coords)
        )


def pl_image(f: SimplicialMap, point: RealizationPoint) -> RealizationPoint:
    """Evaluate the induced PL map ``|f|`` on a point of ``|domain|``.

    Weights of domain vertices that share an image vertex accumulate, which
    is exactly how the affine extension of a simplicial map acts.
    """
    weights: Dict[Hashable, float] = {}
    for v, c in point.as_weights().items():
        w = f.vertex_image(v)
        weights[w] = weights.get(w, 0.0) + c
    image_simplex = Simplex(weights.keys())
    ordered = image_simplex.sorted_vertices()
    return RealizationPoint(image_simplex, tuple(weights[v] for v in ordered))


def sample_simplex_points(s: Simplex, resolution: int) -> Tuple[RealizationPoint, ...]:
    """A deterministic grid of barycentric points on a simplex.

    ``resolution`` is the number of subdivisions per edge; the grid contains
    ``C(resolution + dim, dim)`` points, including the vertices.
    """
    n = len(s)
    points = []

    def rec(prefix: Tuple[int, ...], remaining: int, slots: int) -> None:
        if slots == 1:
            points.append(prefix + (remaining,))
            return
        for take in range(remaining + 1):
            rec(prefix + (take,), remaining - take, slots - 1)

    rec((), resolution, n)
    return tuple(
        RealizationPoint(s, tuple(c / resolution for c in combo)) for combo in points
    )
