"""Chromatic simplicial complexes.

A *chromatic* complex is one in which every vertex is a
:class:`~repro.topology.simplex.Vertex` carrying a color (process id), and no
color repeats within a simplex.  Input, output and protocol complexes of
tasks are all chromatic.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Optional, Tuple

from .complexes import SimplicialComplex
from .simplex import Simplex, Vertex, color_of


class NotChromaticError(ValueError):
    """Raised when a complex violates the chromatic condition."""


class ChromaticComplex(SimplicialComplex):
    """A simplicial complex whose simplices are properly colored.

    Construction validates that every vertex is a :class:`Vertex` and that no
    facet repeats a color.  Beyond validation, this class adds color-indexed
    accessors used heavily by the task machinery.
    """

    __slots__ = ()

    def __init__(self, simplices: Iterable, name: Optional[str] = None):
        super().__init__(simplices, name=name)
        for f in self.facets:
            if not f.is_chromatic():
                raise NotChromaticError(
                    f"facet {f!r} is not properly colored (colorless vertex or repeated color)"
                )

    def vertices_of_color(self, color: int) -> Tuple[Vertex, ...]:
        """All vertices carrying the given color, in canonical order."""
        return tuple(v for v in self.vertices if color_of(v) == color)

    def restrict_colors(self, colors: Iterable[int]) -> "ChromaticComplex":
        """The subcomplex induced by vertices whose color lies in ``colors``."""
        allowed = frozenset(colors)
        return ChromaticComplex(
            (s for s in self.simplices() if all(color_of(v) in allowed for v in s.vertices)),
            name=self.name,
        )

    def facets_with_colors(self, colors: Iterable[int]) -> Tuple[Simplex, ...]:
        """Simplices of ``self`` whose color set equals ``colors`` and which are
        maximal among simplices with that color set."""
        target = frozenset(colors)
        matching = [s for s in self.simplices() if s.colors() == target]
        matching_set = set(matching)
        out = []
        for s in matching:
            if not any(s < t for t in matching_set if t.dim == s.dim):
                out.append(s)
        return tuple(sorted(out, key=Simplex.sort_key))

    def is_properly_colored_by(self, n: int) -> bool:
        """True iff all colors lie in ``range(n)``."""
        return all(0 <= c < n for c in self.colors())


def ids(s: Simplex) -> FrozenSet[int]:
    """``ids(σ)`` of the paper: the color set of a chromatic simplex."""
    return s.colors()


def strip_colors(s: Simplex) -> FrozenSet[Hashable]:
    """The set of raw values of a chromatic simplex (colorless projection).

    Distinct vertices may collapse to the same value, so the result may be
    smaller than the simplex.
    """
    out = set()
    for v in s.vertices:
        out.add(v.value if isinstance(v, Vertex) else v)
    return frozenset(out)


def colorless_complex(k: SimplicialComplex) -> SimplicialComplex:
    """Project a chromatic complex to its colorless value complex.

    Every chromatic simplex ``{(i, x_i)}`` becomes the value set ``{x_i}``.
    """
    return SimplicialComplex(
        (Simplex(strip_colors(f)) for f in k.facets),
        name=f"colorless({k.name})" if k.name else None,
    )
