"""Bit-packed combinatorial kernels for the hot topology queries.

The decision pipeline spends most of its time answering the same three
kinds of questions over and over: *is this complex connected*, *what are
the components of this vertex link*, and *does this GF(2)/integer system
have a solution*.  The object layer answers them by materializing link
subcomplexes and :mod:`networkx` graphs — correct, but allocation-heavy.

This module packs the 1- and 2-skeleton of a complex into Python integers
(one bit per vertex of an interned vertex universe) and answers the same
queries with bitwise arithmetic:

* :class:`BitComplex` — adjacency masks for the 1-skeleton plus the
  triangle list, supporting connectivity, components and per-vertex link
  components without constructing a single new simplex;
* :func:`gf2_rank` / :func:`gf2_solve` — GF(2) Gaussian elimination where
  each matrix row is one integer and row updates are single XORs.

The kernels are exposed *behind* the existing
:class:`~repro.topology.complexes.SimplicialComplex` and
:mod:`~repro.topology.homology` APIs: every caller keeps its signature and
its answers, and the legacy object paths are retained and dispatched to
when the layer is disabled (``REPRO_BITCORE=off`` or
:func:`bitcore_disabled`), which is how the parity suite asserts
bit-for-bit agreement between the two implementations.

Determinism: vertex bit indices follow the complex's canonical vertex
order, so component masks decoded lowest-bit-first reproduce exactly the
legacy ``min(vertex_sort_key)`` component ordering.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, FrozenSet, Hashable, Iterator, List, Optional, Tuple

#: values of ``REPRO_BITCORE`` that disable the packed kernels
_OFF_VALUES = frozenset({"0", "off", "false", "no", "disabled"})

_enabled: bool = os.environ.get("REPRO_BITCORE", "on").strip().lower() not in _OFF_VALUES


def bitcore_enabled() -> bool:
    """Whether the bit-packed kernels are currently dispatched to."""
    return _enabled


def set_bitcore(enabled: bool) -> bool:
    """Enable/disable the bit-packed kernels; returns the previous state.

    Disabling falls every query back to the legacy object implementations
    (networkx graphs, numpy elimination).  The two engines are
    answer-equivalent — ``tests/topology/test_bitcore.py`` asserts it
    property-by-property — so this is an ablation/verification knob, not a
    behavior switch.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def bitcore_disabled() -> Iterator[None]:
    """Context manager: run a block on the legacy object kernels."""
    previous = set_bitcore(False)
    try:
        yield
    finally:
        set_bitcore(previous)


@contextmanager
def bitcore_forced() -> Iterator[None]:
    """Context manager: run a block with the packed kernels on."""
    previous = set_bitcore(True)
    try:
        yield
    finally:
        set_bitcore(previous)


class BitComplex:
    """The 1- and 2-skeleton of a complex as packed integer bitsets.

    ``verts`` is the canonical vertex tuple of the source complex; vertex
    ``verts[i]`` owns bit ``1 << i``.  ``adj[i]`` is the neighbor mask of
    vertex ``i`` in the 1-skeleton, and ``tris`` lists every 2-simplex as
    an index triple.  Those two structures answer every connectivity and
    link-connectivity query the solvability pipeline asks, because a
    complex is connected iff its 1-skeleton is, and the 1-skeleton of
    ``link(v)`` is exactly the pairs completed to a triangle by ``v``
    (downward closure guarantees those triangles are present for faces of
    higher simplices too).
    """

    __slots__ = ("verts", "index", "n", "full", "adj", "tris", "_ladj")

    def __init__(
        self,
        verts: Tuple[Hashable, ...],
        adj: List[int],
        tris: List[Tuple[int, int, int]],
    ) -> None:
        self.verts = verts
        self.index: Dict[Hashable, int] = {v: i for i, v in enumerate(verts)}
        self.n = len(verts)
        self.full = (1 << self.n) - 1
        self.adj = adj
        self.tris = tris
        #: vertex index -> {link-vertex index: link-neighbor mask}, lazy
        self._ladj: Optional[Dict[int, Dict[int, int]]] = None

    @classmethod
    def from_complex(cls, k) -> "BitComplex":
        """Pack a :class:`SimplicialComplex`'s 1- and 2-skeleton.

        One pass over the simplex set; no simplices are constructed and no
        ordering work is done beyond the complex's own canonical vertex
        tuple.
        """
        verts = k.vertices
        index = {v: i for i, v in enumerate(verts)}
        adj = [0] * len(verts)
        tris: List[Tuple[int, int, int]] = []
        for s in k._simplices:
            size = len(s.vertices)
            if size == 2:
                a, b = s.vertices
                ia, ib = index[a], index[b]
                adj[ia] |= 1 << ib
                adj[ib] |= 1 << ia
            elif size == 3:
                it = iter(s.vertices)
                tris.append((index[next(it)], index[next(it)], index[next(it)]))
        return cls(verts, adj, tris)

    # -- connectivity ------------------------------------------------------

    def _flood(self, start: int, adj: List[int]) -> int:
        """Bitset BFS: the component mask containing the ``start`` bits."""
        comp = start
        frontier = start
        while frontier:
            reach = 0
            f = frontier
            while f:
                low = f & -f
                f ^= low
                reach |= adj[low.bit_length() - 1]
            frontier = reach & ~comp
            comp |= frontier
        return comp

    def component_masks(self) -> Tuple[int, ...]:
        """Connected components of the 1-skeleton as bit masks.

        Ordered by lowest member bit, which (bits following canonical
        vertex order) equals the legacy order by minimal vertex sort key.
        """
        remaining = self.full
        out: List[int] = []
        while remaining:
            comp = self._flood(remaining & -remaining, self.adj)
            out.append(comp)
            remaining &= ~comp
        return tuple(out)

    def is_connected(self) -> bool:
        """1-skeleton connectivity; the empty complex counts as connected."""
        if not self.n:
            return True
        return self._flood(1, self.adj) == self.full

    def connected_components(self) -> Tuple[FrozenSet[Hashable], ...]:
        """Component vertex sets, decoded, in canonical order."""
        return tuple(self._decode_mask(m) for m in self.component_masks())

    def shortest_path(self, start: Hashable, end: Hashable) -> Optional[List[Hashable]]:
        """A shortest 1-skeleton path as vertex objects, or ``None``.

        Breadth-first over the adjacency masks with per-level parent
        assignment; absent endpoints and disconnected pairs both return
        ``None``.  Paths are deterministic (lowest-bit-first expansion in
        canonical vertex order).
        """
        si = self.index.get(start)
        ti = self.index.get(end)
        if si is None or ti is None:
            return None
        if si == ti:
            return [start]
        adj = self.adj
        target = 1 << ti
        parent: Dict[int, int] = {}
        seen = 1 << si
        frontier = seen
        while frontier:
            reach = 0
            f = frontier
            while f:
                low = f & -f
                f ^= low
                i = low.bit_length() - 1
                new = adj[i] & ~seen & ~reach
                reach |= new
                while new:
                    nlow = new & -new
                    new ^= nlow
                    parent[nlow.bit_length() - 1] = i
                if reach & target:
                    path_idx = [ti]
                    while path_idx[-1] != si:
                        path_idx.append(parent[path_idx[-1]])
                    verts = self.verts
                    return [verts[i] for i in reversed(path_idx)]
            frontier = reach
            seen |= reach
        return None

    # -- links -------------------------------------------------------------

    def _link_adjacency(self) -> Dict[int, Dict[int, int]]:
        """Per-vertex adjacency of the link 1-skeleton, built once.

        For every triangle ``{i, j, k}`` the link of ``i`` gains the edge
        ``{j, k}`` (and symmetrically); edges of the complex contribute the
        link *vertices*, which are just ``adj[i]``.
        """
        ladj = self._ladj
        if ladj is None:
            ladj = {}
            for i, j, k in self.tris:
                for center, a, b in ((i, j, k), (j, i, k), (k, i, j)):
                    bucket = ladj.get(center)
                    if bucket is None:
                        bucket = ladj[center] = {}
                    bucket[a] = bucket.get(a, 0) | (1 << b)
                    bucket[b] = bucket.get(b, 0) | (1 << a)
            self._ladj = ladj
        return ladj

    def link_component_masks(self, v: Hashable) -> Tuple[int, ...]:
        """Components of ``link(v)`` as masks over the vertex universe."""
        i = self.index.get(v)
        if i is None:
            return ()
        nbrs = self.adj[i]
        if not nbrs:
            return ()
        bucket = self._link_adjacency().get(i, {})
        out: List[int] = []
        remaining = nbrs
        while remaining:
            start = remaining & -remaining
            comp = start
            frontier = start
            while frontier:
                reach = 0
                f = frontier
                while f:
                    low = f & -f
                    f ^= low
                    reach |= bucket.get(low.bit_length() - 1, 0)
                frontier = reach & ~comp
                comp |= frontier
            out.append(comp)
            remaining &= ~comp
        return tuple(out)

    def link_components(self, v: Hashable) -> Tuple[FrozenSet[Hashable], ...]:
        """Component vertex sets of ``link(v)``, decoded, canonical order."""
        return tuple(self._decode_mask(m) for m in self.link_component_masks(v))

    def is_link_connected(self) -> bool:
        """Every vertex link connected (empty links count as connected)."""
        return all(len(self.link_component_masks(v)) <= 1 for v in self.verts)

    # -- decoding ----------------------------------------------------------

    def _decode_mask(self, mask: int) -> FrozenSet[Hashable]:
        """Decode a bit mask back to a frozenset of vertex objects."""
        verts = self.verts
        out = []
        while mask:
            low = mask & -mask
            mask ^= low
            out.append(verts[low.bit_length() - 1])
        return frozenset(out)


# ---------------------------------------------------------------------------
# GF(2) linear algebra on integer-packed rows
# ---------------------------------------------------------------------------


def pack_rows(matrix) -> List[int]:
    """Pack a (numpy or nested-sequence) 0/1-reducible matrix into int rows.

    Bit ``j`` of row ``i`` is ``matrix[i][j] mod 2``; the packed form is
    what :func:`gf2_rank` and :func:`gf2_solve` operate on.
    """
    rows: List[int] = []
    for row in matrix:
        bits = 0
        for j, value in enumerate(row):
            if int(value) & 1:
                bits |= 1 << j
        rows.append(bits)
    return rows


def gf2_rank(rows: List[int]) -> int:
    """Rank over GF(2) of integer-packed rows (single-XOR row updates).

    Maintains a basis keyed by leading-bit position; each incoming row is
    reduced until it is zero (dependent) or lands on an unused leading bit
    (independent).  Reduction strictly decreases the leading bit, so the
    inner loop terminates and the basis rows stay independent.
    """
    basis: Dict[int, int] = {}
    rank = 0
    for row in rows:
        cur = row
        while cur:
            lead = cur.bit_length()
            pivot = basis.get(lead)
            if pivot is None:
                basis[lead] = cur
                rank += 1
                break
            cur ^= pivot
    return rank


def gf2_solve(rows: List[int], rhs: List[int], ncols: int) -> Optional[int]:
    """Solve ``A x = b`` over GF(2); returns a solution bitmask or ``None``.

    ``rows`` are the packed rows of ``A``; ``rhs[i]`` is the parity of
    ``b[i]``.  The returned integer has bit ``j`` set iff ``x_j = 1``.
    """
    flag = 1 << ncols
    aug = [row | (flag if b & 1 else 0) for row, b in zip(rows, rhs)]
    nrows = len(aug)
    rank = 0
    pivots: List[Tuple[int, int]] = []
    for col in range(ncols):
        bit = 1 << col
        pivot_row = None
        for r in range(rank, nrows):
            if aug[r] & bit:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        aug[rank], aug[pivot_row] = aug[pivot_row], aug[rank]
        prow = aug[rank]
        for r in range(nrows):
            if r != rank and aug[r] & bit:
                aug[r] ^= prow
        pivots.append((rank, col))
        rank += 1
    for r in range(rank, nrows):
        if aug[r] & flag:
            return None
    x = 0
    for r, col in pivots:
        if aug[r] & flag:
            x |= 1 << col
    return x


__all__ = [
    "BitComplex",
    "bitcore_disabled",
    "bitcore_enabled",
    "bitcore_forced",
    "gf2_rank",
    "gf2_solve",
    "pack_rows",
    "set_bitcore",
]
