"""Subdivisions: standard chromatic and barycentric.

The *standard chromatic subdivision* ``Ch(K)`` is the one-round
immediate-snapshot protocol complex (Section 2.4 of the paper): vertices of
``Ch(σ)`` are pairs ``(i, view)`` where ``view ⊆ σ`` is the simplex of inputs
process ``i`` saw, and facets correspond to *ordered set partitions* of the
participating ids (the order of the immediate-snapshot blocks).  For a
2-simplex it has the familiar 13 triangles.

The *barycentric subdivision* is the classical colorless subdivision whose
vertices are the simplices of ``K`` and whose facets are flags
``σ_0 ⊂ σ_1 ⊂ …``; it is used by the colorless map search as an
alternative subdivision engine.

Both constructions return a :class:`SubdivisionResult` bundling the
subdivided complex with the carrier map from the base complex (``τ ↦`` the
subdivision of ``τ``), which is exactly the data needed to express
"a simplicial map from a subdivision of I carried by Δ".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

from . import diskstore
from .carrier import CarrierMap
from .chromatic import ChromaticComplex
from .complexes import SimplicialComplex
from .simplex import Simplex, Vertex


def ordered_partitions(items: Iterable[Hashable]) -> Iterator[Tuple[FrozenSet, ...]]:
    """All ordered partitions of a finite set into nonempty blocks.

    The blocks index the concurrency classes of a one-round immediate
    snapshot: processes in the same block write together and snapshot
    together, seeing all blocks up to and including their own.

    >>> sum(1 for _ in ordered_partitions({1, 2, 3}))
    13
    """
    pool = tuple(sorted(items, key=repr))
    if not pool:
        yield ()
        return

    def rec(rest: Tuple) -> Iterator[Tuple[FrozenSet, ...]]:
        if not rest:
            yield ()
            return
        # choose the first block: any nonempty subset of the remaining items
        for k in range(1, len(rest) + 1):
            for chosen in itertools.combinations(rest, k):
                block = frozenset(chosen)
                remaining = tuple(x for x in rest if x not in block)
                for tail in rec(remaining):
                    yield (block,) + tail

    yield from rec(pool)


@dataclass(frozen=True, slots=True)
class Barycenter:
    """A barycentric-subdivision vertex: the barycenter of a base simplex."""

    simplex: Simplex

    def __repr__(self) -> str:
        return f"b{self.simplex!r}"


@dataclass(frozen=True, slots=True)
class SubdivisionResult:
    """A subdivision together with its carrier map from the base complex."""

    base: SimplicialComplex
    complex: SimplicialComplex
    carrier: CarrierMap
    #: per-instance memo for :meth:`carrier_of_vertex` (identity-neutral)
    _vcache: Dict[Hashable, Simplex] = field(
        default_factory=dict, compare=False, repr=False
    )

    def carrier_of_vertex(self, v: Hashable) -> Simplex:
        """The minimal base simplex whose subdivision contains vertex ``v``.

        Iterated subdivisions nest (a ``Ch²`` view is a simplex of ``Ch¹``),
        so resolution recurses until it reaches vertices of the base
        complex.  For the identity subdivision the carrier is the vertex
        itself.  Results are memoized per instance — the map search resolves
        every subdivision vertex many times.
        """
        cached = self._vcache.get(v)
        if cached is not None:
            return cached
        base_vertices = frozenset(self.base.vertices)

        def resolve(u: Hashable) -> frozenset:
            if u in base_vertices:
                return frozenset([u])
            if isinstance(u, Barycenter):
                inner = u.simplex
            elif isinstance(u, Vertex) and isinstance(u.value, Simplex):
                inner = u.value
            else:
                raise TypeError(f"{u!r} is not a subdivision vertex")
            out: frozenset = frozenset()
            for w in inner.vertices:
                out |= resolve(w)
            return out

        result = Simplex(resolve(v))
        self._vcache[v] = result
        return result


# ---------------------------------------------------------------------------
# Standard chromatic subdivision
# ---------------------------------------------------------------------------


def _chromatic_subdivision_facets(sigma: Simplex) -> List[Simplex]:
    """Facets of ``Ch(σ)``, one per ordered partition of ``ids(σ)``."""
    by_color = {v.color: v for v in sigma.vertices}
    facets = []
    for blocks in ordered_partitions(by_color.keys()):
        seen: set = set()
        verts = []
        for block in blocks:
            seen |= {by_color[c] for c in block}
            view = Simplex(seen)
            verts.extend(Vertex(c, view) for c in block)
        facets.append(Simplex(verts))
    return facets


def chromatic_subdivision_of_simplex(sigma: Simplex) -> ChromaticComplex:
    """``Ch(σ)`` for a single chromatic simplex."""
    if not sigma.is_chromatic():
        raise ValueError(f"{sigma!r} is not a chromatic simplex")
    return ChromaticComplex(_chromatic_subdivision_facets(sigma))


def chromatic_subdivision(k: SimplicialComplex) -> SubdivisionResult:
    """The standard chromatic subdivision of a chromatic complex.

    Returns the subdivided complex together with the carrier map sending
    each base simplex ``τ`` to ``Ch(τ)`` (a subcomplex of ``Ch(K)``).
    """
    facets: List[Simplex] = []
    for sigma in k.facets:
        facets.extend(_chromatic_subdivision_facets(sigma))
    sub = ChromaticComplex(facets, name=f"Ch({k.name})" if k.name else None)
    images: Dict[Simplex, SimplicialComplex] = {
        tau: ChromaticComplex(_chromatic_subdivision_facets(tau))
        for tau in k.simplices()
    }
    carrier = CarrierMap(k, sub, images, check=False)
    return SubdivisionResult(base=k, complex=sub, carrier=carrier)


def iterated_chromatic_subdivision(k: SimplicialComplex, rounds: int) -> SubdivisionResult:
    """``Ch^r(K)`` with the composed carrier map ``K → Ch^r(K)``.

    ``rounds = 0`` returns ``K`` with the identity carrier.  Callers that
    need several consecutive depths (iterative deepening) should use a
    :class:`SubdivisionTower`, which shares the work of the lower levels.
    """
    return SubdivisionTower(k, chromatic_subdivision).level(rounds)


# ---------------------------------------------------------------------------
# Barycentric subdivision
# ---------------------------------------------------------------------------


def _barycentric_facets(sigma: Simplex) -> List[Simplex]:
    """Facets of the barycentric subdivision of a single simplex: full flags."""
    facets = []

    def rec(chain: Tuple[Simplex, ...], top: Simplex) -> None:
        if top.dim == 0:
            facets.append(Simplex(Barycenter(s) for s in chain))
            return
        for face in top.boundary():
            rec(chain + (face,), face)

    rec((sigma,), sigma)
    return facets


def barycentric_subdivision(k: SimplicialComplex) -> SubdivisionResult:
    """The barycentric subdivision with its carrier map.

    The result is colorless even when ``K`` is chromatic; it is meant for
    the colorless (continuous-map) side of the characterization.
    """
    facets: List[Simplex] = []
    for sigma in k.facets:
        facets.extend(_barycentric_facets(sigma))
    sub = SimplicialComplex(facets, name=f"Bary({k.name})" if k.name else None)
    images: Dict[Simplex, SimplicialComplex] = {}
    for tau in k.simplices():
        tau_facets: List[Simplex] = []
        for f in tau.faces(dim=tau.dim):
            tau_facets.extend(_barycentric_facets(f))
        images[tau] = SimplicialComplex(tau_facets)
    carrier = CarrierMap(k, sub, images, check=False)
    return SubdivisionResult(base=k, complex=sub, carrier=carrier)


def iterated_barycentric_subdivision(k: SimplicialComplex, rounds: int) -> SubdivisionResult:
    """``Bary^r(K)`` with the composed carrier map."""
    return SubdivisionTower(k, barycentric_subdivision).level(rounds)


# ---------------------------------------------------------------------------
# Incremental towers of subdivisions
# ---------------------------------------------------------------------------


class SubdivisionTower:
    """Lazily computed tower ``K, Sd(K), Sd²(K), …`` with composed carriers.

    Iterative-deepening callers (the decision procedure, benchmarks) ask for
    levels ``0, 1, 2, …`` in turn; recomputing each level from scratch
    repeats all the lower subdivision and carrier-composition work.  A tower
    computes each level exactly once — ``level(r)`` extends incrementally
    from the deepest level built so far and returns cached
    :class:`SubdivisionResult` objects thereafter (so their per-vertex
    carrier memos are shared too).

    ``step`` is a one-round subdivision function such as
    :func:`chromatic_subdivision` or :func:`barycentric_subdivision`.

    Levels ``r >= 1`` are additionally cached in the persistent store of
    :mod:`repro.topology.diskstore`, keyed by ``(content hash of the base
    complex, subdivision kind, r)`` — so successive CLI runs and census
    pool workers load ``Ch^r(I)`` instead of rebuilding it.  Pass
    ``persist=False`` (or disable the store) to keep a tower purely
    in-memory.
    """

    __slots__ = ("base", "step", "_levels", "_persist", "_base_key")

    def __init__(self, base: SimplicialComplex, step, persist: bool = True) -> None:
        self.base = base
        self.step = step
        self._persist = persist
        self._base_key: Optional[str] = None
        # built lazily (r -> result): a warm-store tower asked for level r
        # loads it directly and never materializes the lower levels at all
        self._levels: Dict[int, SubdivisionResult] = {}

    @property
    def depth(self) -> int:
        """The deepest level built so far."""
        return max(self._levels, default=0)

    def _level_key(self, r: int) -> str:
        """Store key for level ``r``: base content hash + step kind + depth."""
        if self._base_key is None:
            self._base_key = diskstore.complex_key(self.base)
        kind = getattr(self.step, "__name__", type(self.step).__name__)
        return diskstore.content_hash(f"{self._base_key}:{kind}:{r}")

    def level(self, r: int) -> SubdivisionResult:
        """``Sd^r(K)`` with the composed carrier ``K → Sd^r(K)``."""
        if r < 0:
            raise ValueError("rounds must be non-negative")
        got = self._levels.get(r)
        if got is not None:
            return got
        if r == 0:
            base = self.base
            result = SubdivisionResult(
                base=base,
                complex=base,
                carrier=CarrierMap(
                    base,
                    base,
                    {s: SimplicialComplex([s]) for s in base.simplices()},
                    check=False,
                ),
            )
            self._levels[0] = result
            return result
        persisting = self._persist and diskstore.store_enabled()
        if persisting:
            cached = diskstore.load("tower", self._level_key(r))
            if isinstance(cached, SubdivisionResult):
                self._levels[r] = cached
                return cached
        prev = self.level(r - 1)
        step = self.step(prev.complex)
        result = SubdivisionResult(
            base=self.base,
            complex=step.complex,
            carrier=prev.carrier.compose(step.carrier),
        )
        self._levels[r] = result
        if persisting:
            diskstore.store("tower", self._level_key(r), result)
        return result

    def levels(self, up_to: int) -> Iterator[SubdivisionResult]:
        """Yield levels ``0 … up_to`` in order (building lazily)."""
        for r in range(up_to + 1):
            yield self.level(r)
