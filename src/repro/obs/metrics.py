"""Live service metrics: latency histograms, rate meters, exposition.

The tracing layer (:mod:`repro.obs.recorder`) answers *post-hoc*
questions — export a span tree after the run, diff it against a
baseline.  A long-running service needs the complementary *live* view:
latency **distributions** (a mean hides the bimodal cache-hit/miss
split entirely), short-window request **rates**, and a snapshot you can
scrape at any moment without stopping the world.  This module provides
the three primitives the verdict server's ``/metrics`` endpoint serves:

* :class:`LatencyHistogram` — log-bucketed (geometric bounds, base 2)
  observation counts.  Buckets make histograms **mergeable** across
  workers and scrapes the way Recorder counters are: two histograms sum
  bucket-by-bucket with no loss, which a stored list of percentiles can
  never do.  Recording is a dict increment under a lock — cheap enough
  for the request path — and quantiles are estimated conservatively
  (upper bucket bound) at read time.
* :class:`RateMeter` — a sliding window of per-second event buckets
  ("requests/s over the last 60 s"), the live complement of a monotonic
  counter.
* :class:`MetricsRegistry` — named, labelled instruments plus
  export-time gauge callbacks (uptime, queue depth: values that are
  cheaper to read at scrape time than to push on every change).

Snapshots export as schema-validated ``repro-metrics/1`` JSON
(:func:`build_metrics` / :func:`validate_metrics`) and render to the
Prometheus text exposition format (:func:`prometheus_text`); the
bundled :func:`parse_prometheus_text` is what the soak harness and the
round-trip tests read scrapes back with, keeping the format honest
without an external client library.
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: metrics snapshot format identifier; bump the suffix on breaking changes
SCHEMA = "repro-metrics/1"

#: smallest histogram bucket bound, in seconds (100 µs — below that is
#: pure event-loop noise for an HTTP request)
BUCKET_BASE = 1e-4

#: geometric growth factor between consecutive bucket bounds
BUCKET_GROWTH = 2.0

#: number of finite bucket bounds; the last finite bound is
#: ``BUCKET_BASE * BUCKET_GROWTH**(N_BUCKETS - 1)`` (~14 minutes), and
#: anything beyond lands in the ``+Inf`` overflow bucket
N_BUCKETS = 24

#: the finite bucket upper bounds, in seconds, ascending
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    BUCKET_BASE * BUCKET_GROWTH**i for i in range(N_BUCKETS)
)

#: JSON-safe spelling of the overflow bucket bound (Prometheus' ``+Inf``;
#: ``float("inf")`` is not valid strict JSON, so the export uses a string)
INF_LABEL = "+Inf"


def bucket_index(seconds: float) -> int:
    """The bucket an observation falls in: 0..N_BUCKETS (overflow last)."""
    if seconds <= 0:
        return 0
    return bisect_left(BUCKET_BOUNDS, seconds)


class LatencyHistogram:
    """Log-bucketed, mergeable, thread-safe observation histogram."""

    __slots__ = ("_lock", "_counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observation (in seconds) into the distribution."""
        value = float(seconds)
        index = bucket_index(value)
        with self._lock:
            self._counts[index] = self._counts.get(index, 0) + 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Bucket counts sum exactly — the property that makes per-worker
        histograms aggregate without loss, mirroring how Recorder
        counters merge across pool workers.
        """
        with self._lock:
            for le, n in snapshot.get("buckets", []):
                index = N_BUCKETS if le == INF_LABEL else bucket_index(float(le))
                self._counts[index] = self._counts.get(index, 0) + int(n)
            self.count += int(snapshot.get("count", 0))
            self.sum += float(snapshot.get("sum", 0.0))
            if snapshot.get("count"):
                self.min = min(self.min, float(snapshot.get("min", self.min)))
                self.max = max(self.max, float(snapshot.get("max", self.max)))

    def quantile(self, q: float) -> float:
        """A conservative quantile estimate (upper bound of the bucket).

        ``q`` is in ``[0, 1]``.  Returns 0.0 on an empty histogram.  The
        estimate never understates: the true value is at most the
        returned bucket bound (exactly the guarantee soak gates want).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, int(round(q * self.count)))
            seen = 0
            for index in sorted(self._counts):
                seen += self._counts[index]
                if seen >= rank:
                    if index >= N_BUCKETS:
                        return self.max
                    return BUCKET_BOUNDS[index]
            return self.max  # pragma: no cover - rank <= count always hits

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe, mergeable state dump (per-bucket counts, not
        cumulative; the exposition layer cumulates)."""
        with self._lock:
            buckets: List[List[Any]] = [
                [
                    INF_LABEL if index >= N_BUCKETS else BUCKET_BOUNDS[index],
                    n,
                ]
                for index, n in sorted(self._counts.items())
            ]
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else 0.0,
                "max": self.max,
                "buckets": buckets,
            }


class RateMeter:
    """Sliding-window event rate: per-second buckets over ``window`` s."""

    __slots__ = ("_lock", "_window", "_buckets", "count", "_clock", "_started")

    def __init__(
        self, window: float = 60.0, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self._lock = threading.Lock()
        self._window = float(window)
        self._buckets: Dict[int, int] = {}  # whole second -> event count
        self.count = 0
        self._clock = clock
        self._started = clock()

    def record(self, n: int = 1) -> None:
        now = self._clock()
        second = int(now)
        with self._lock:
            self._buckets[second] = self._buckets.get(second, 0) + n
            self.count += n
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = int(now - self._window)
        if len(self._buckets) > self._window + 2:
            for second in [s for s in self._buckets if s < horizon]:
                del self._buckets[second]

    def rate(self) -> float:
        """Events per second over the window (or since creation if newer)."""
        now = self._clock()
        horizon = now - self._window
        with self._lock:
            in_window = sum(
                n for second, n in self._buckets.items() if second >= horizon
            )
        span = min(self._window, max(now - self._started, 1.0))
        return in_window / span

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "rate_per_s": self.rate(),
            "window_seconds": self._window,
        }


#: one labelled instrument key: (name, sorted (label, value) pairs)
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> _Key:
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Named, labelled instruments plus export-time gauge callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[_Key, LatencyHistogram] = {}
        self._meters: Dict[_Key, RateMeter] = {}
        self._counters: Dict[_Key, float] = {}
        self._gauge_fns: Dict[str, Callable[[], float]] = {}

    def histogram(self, name: str, **labels: str) -> LatencyHistogram:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = LatencyHistogram()
            return hist

    def meter(self, name: str, **labels: str) -> RateMeter:
        key = _key(name, labels)
        with self._lock:
            meter = self._meters.get(key)
            if meter is None:
                meter = self._meters[key] = RateMeter()
            return meter

    def counter_add(self, name: str, value: float = 1.0, **labels: str) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge_fn(self, name: str, fn: Callable[[], float]) -> None:
        """Register a callable read at export time (uptime, queue depth:
        cheaper to read on scrape than to push on every change)."""
        with self._lock:
            self._gauge_fns[name] = fn

    def build(
        self, resources: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """One ``repro-metrics/1`` snapshot of every instrument."""
        with self._lock:
            histograms = [
                {"name": name, "labels": dict(labels), **hist.snapshot()}
                for (name, labels), hist in sorted(self._histograms.items())
            ]
            meters = [
                {"name": name, "labels": dict(labels), **meter.snapshot()}
                for (name, labels), meter in sorted(self._meters.items())
            ]
            counters = [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ]
            gauge_fns = dict(self._gauge_fns)
        gauges = []
        for name, fn in sorted(gauge_fns.items()):
            try:
                gauges.append({"name": name, "labels": {}, "value": float(fn())})
            except Exception:  # a broken gauge must not break the scrape
                continue
        payload: Dict[str, Any] = {
            "schema": SCHEMA,
            "created_unix": time.time(),
            "histograms": histograms,
            "meters": meters,
            "counters": counters,
            "gauges": gauges,
        }
        if resources is not None:
            payload["resources"] = resources
        return payload


def build_metrics(
    registry: MetricsRegistry, resources: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Module-level spelling of :meth:`MetricsRegistry.build`."""
    return registry.build(resources=resources)


def _validate_entry(entry: Any, where: str, fields: Dict[str, type]) -> List[str]:
    errors: List[str] = []
    if not isinstance(entry, dict):
        return [f"{where} must be an object"]
    if not (isinstance(entry.get("name"), str) and entry["name"]):
        errors.append(f"{where}.name must be a non-empty string")
    labels = entry.get("labels")
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        errors.append(f"{where}.labels must map strings to strings")
    for field, want in fields.items():
        value = entry.get(field)
        if not isinstance(value, want) or isinstance(value, bool):
            errors.append(f"{where}.{field} must be {want}")
    return errors


def validate_metrics(payload: Any) -> List[str]:
    """Check one snapshot against ``repro-metrics/1``; returns problems.

    Dependency-free and strict, in the style of
    :func:`repro.obs.store.validate_run_record` — the soak harness
    validates every scrape, so exposition drift fails fast.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["metrics snapshot must be an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    if not isinstance(payload.get("created_unix"), (int, float)):
        errors.append("created_unix must be a number")
    for section in ("histograms", "meters", "counters", "gauges"):
        entries = payload.get(section)
        if not isinstance(entries, list):
            errors.append(f"{section} must be a list")
            continue
        for i, entry in enumerate(entries):
            where = f"{section}[{i}]"
            if section == "histograms":
                errors.extend(
                    _validate_entry(
                        entry, where, {"count": int, "sum": (int, float)}
                    )
                )
                buckets = entry.get("buckets") if isinstance(entry, dict) else None
                if not isinstance(buckets, list):
                    errors.append(f"{where}.buckets must be a list")
                    continue
                total = 0
                for j, pair in enumerate(buckets):
                    if (
                        not isinstance(pair, (list, tuple))
                        or len(pair) != 2
                        or not (
                            pair[0] == INF_LABEL
                            or isinstance(pair[0], (int, float))
                        )
                        or not isinstance(pair[1], int)
                        or pair[1] < 0
                    ):
                        errors.append(
                            f"{where}.buckets[{j}] must be [bound, count]"
                        )
                        continue
                    total += pair[1]
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("count"), int)
                    and total != entry["count"]
                ):
                    errors.append(
                        f"{where}: bucket counts sum to {total}, "
                        f"count says {entry['count']}"
                    )
            elif section == "meters":
                errors.extend(
                    _validate_entry(
                        entry,
                        where,
                        {
                            "count": int,
                            "rate_per_s": (int, float),
                            "window_seconds": (int, float),
                        },
                    )
                )
            else:
                errors.extend(
                    _validate_entry(entry, where, {"value": (int, float)})
                )
    resources = payload.get("resources")
    if resources is not None:
        if not isinstance(resources, dict):
            errors.append("resources must be an object")
        elif not isinstance(resources.get("samples"), list):
            errors.append("resources.samples must be a list")
        else:
            for i, sample in enumerate(resources["samples"]):
                if (
                    not isinstance(sample, dict)
                    or not isinstance(sample.get("t"), (int, float))
                    or not isinstance(sample.get("values"), dict)
                ):
                    errors.append(
                        f"resources.samples[{i}] must be "
                        "{'t': number, 'values': object}"
                    )
    return errors


# ---------------------------------------------------------------------------
# Prometheus text exposition (version 0.0.4)
# ---------------------------------------------------------------------------


def _prom_name(*parts: str) -> str:
    """A legal Prometheus metric name from dotted/dashed fragments."""
    joined = "_".join(p for p in parts if p)
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in joined)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def prometheus_text(payload: Dict[str, Any], prefix: str = "repro") -> str:
    """Render one ``repro-metrics/1`` snapshot as Prometheus exposition.

    Histograms become the standard ``_bucket``/``_sum``/``_count``
    triplet with cumulative ``le`` buckets, meters a ``_total`` counter
    plus a ``_rate_per_s`` gauge, counters a ``_total``, gauges a bare
    sample; the newest resource sample (when present) exports each value
    as a ``<prefix>_resource_<name>`` gauge.  Deterministic output for a
    fixed payload — the JSON variant and the text variant are two
    renderings of one snapshot, pinned by the round-trip tests.
    """
    lines: List[str] = []
    seen_types: set = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in payload.get("histograms", []):
        name = _prom_name(prefix, entry["name"])
        header(name, "histogram")
        labels = entry.get("labels", {})
        cumulative = 0
        for le, n in entry.get("buckets", []):
            cumulative += n
            bound = INF_LABEL if le == INF_LABEL else _prom_value(le)
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': bound})} {cumulative}"
            )
        if entry.get("buckets") and entry["buckets"][-1][0] != INF_LABEL:
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': INF_LABEL})} "
                f"{cumulative}"
            )
        lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(entry['sum'])}")
        lines.append(f"{name}_count{_prom_labels(labels)} {entry['count']}")
    for entry in payload.get("meters", []):
        name = _prom_name(prefix, entry["name"])
        header(f"{name}_total", "counter")
        lines.append(f"{name}_total{_prom_labels(entry.get('labels', {}))} "
                     f"{entry['count']}")
        header(f"{name}_rate_per_s", "gauge")
        lines.append(
            f"{name}_rate_per_s{_prom_labels(entry.get('labels', {}))} "
            f"{_prom_value(entry['rate_per_s'])}"
        )
    for entry in payload.get("counters", []):
        name = _prom_name(prefix, entry["name"]) + "_total"
        header(name, "counter")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{_prom_value(entry['value'])}"
        )
    for entry in payload.get("gauges", []):
        name = _prom_name(prefix, entry["name"])
        header(name, "gauge")
        lines.append(
            f"{name}{_prom_labels(entry.get('labels', {}))} "
            f"{_prom_value(entry['value'])}"
        )
    samples = (payload.get("resources") or {}).get("samples") or []
    if samples:
        latest = samples[-1]
        for key, value in sorted(latest.get("values", {}).items()):
            name = _prom_name(prefix, "resource", key)
            header(name, "gauge")
            lines.append(f"{name} {_prom_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{'name{labels}': value}``.

    A deliberately small parser for the subset :func:`prometheus_text`
    emits (no timestamps, no escaped newlines in label values) — enough
    for the soak scraper and the round-trip tests to read scrapes back
    without an external client library.  Raises :class:`ValueError` on a
    malformed sample line, which is exactly what "parses as Prometheus
    text format" means for the acceptance gate.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, raw_value = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"line {lineno}: not a sample: {line!r}") from None
        series = series.strip()
        name = series.split("{", 1)[0]
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"line {lineno}: bad metric name in {line!r}")
        if "{" in series and not series.endswith("}"):
            raise ValueError(f"line {lineno}: unterminated labels in {line!r}")
        value = float(raw_value)  # "+Inf"/"NaN" parse fine via float()
        samples[series] = value
    return samples


def metrics_from_json(text: str) -> Dict[str, Any]:
    """Parse and validate one JSON-variant scrape; raises on problems."""
    payload = json.loads(text)
    problems = validate_metrics(payload)
    if problems:
        raise ValueError(f"invalid {SCHEMA} snapshot: {problems}")
    return payload


def quantile_from_snapshot(entry: Dict[str, Any], q: float) -> float:
    """Conservative quantile from one exported histogram entry."""
    count = int(entry.get("count", 0))
    if count == 0:
        return 0.0
    rank = max(1, int(round(q * count)))
    seen = 0
    for le, n in entry.get("buckets", []):
        seen += int(n)
        if seen >= rank:
            return float(entry.get("max", 0.0)) if le == INF_LABEL else float(le)
    return float(entry.get("max", 0.0))


__all__ = [
    "BUCKET_BASE",
    "BUCKET_BOUNDS",
    "BUCKET_GROWTH",
    "INF_LABEL",
    "LatencyHistogram",
    "MetricsRegistry",
    "N_BUCKETS",
    "RateMeter",
    "SCHEMA",
    "bucket_index",
    "build_metrics",
    "metrics_from_json",
    "parse_prometheus_text",
    "prometheus_text",
    "quantile_from_snapshot",
    "validate_metrics",
]
