"""The per-process trace recorder: spans, counters, gauges.

The decision pipeline is a chain of expensive stages — canonicalize
(Theorem 3.1), iterated LAP splitting (Theorem 4.3), obstruction checks,
iterative-deepening map search (Theorem 5.1) — and knowing *where* time
goes requires structure, not scattered ``time.perf_counter()`` pairs.
This module records that structure:

* **spans** — hierarchical timed regions (``span("decide")`` containing
  ``span("transform")`` containing per-facet ``span("split.facet")`` …),
  each with wall-clock and CPU seconds plus free-form attributes;
* **counters** — monotonically accumulated numbers (search nodes,
  backtracks, split steps, conformance runs per phase);
* **gauges** — last-write-wins numbers within one process (population
  sizes, worker counts), combined *across* processes by an explicit
  per-gauge merge policy (default ``"max"``; see
  :func:`merge_gauge_maps`);
* **worker snapshots** — serialized recorder state returned by
  :mod:`multiprocessing` pool workers (see :func:`capture_worker`) and
  folded into the parent with :func:`merge_worker_snapshot`, so parallel
  census/conformance runs report *aggregate* counters and cache hit
  rates instead of silently dropping everything the workers did.

Tracing is **off by default** and gated by a module-level flag, exactly
like :func:`repro.topology.cache.set_caching`: when disabled,
:func:`span` returns a shared no-op context manager and
:func:`counter_add` / :func:`gauge_set` return immediately, so the
instrumented hot paths pay one attribute load + branch per call site
(< 5 % on ``benchmarks/bench_perf_core.py``; measured by
``benchmarks/bench_obs.py``).

The recorder is deliberately per-process and single-stack; the library's
parallelism is process-based (``repro.analysis.parallel``,
``repro.runtime.conformance``), and worker processes get a fresh
recorder via :func:`capture_worker`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

_enabled: bool = False
_profile_memory: bool = False


class SpanRecord:
    """One completed (or in-flight) timed region of the span tree."""

    __slots__ = (
        "name",
        "attrs",
        "start_unix",
        "start_offset",
        "wall_seconds",
        "cpu_seconds",
        "children",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_unix = 0.0
        # seconds since the owning recorder was created (perf_counter
        # clock): lays sibling spans on one timeline for Chrome-trace
        # export without the jitter of repeated time.time() reads
        self.start_offset = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.children: List["SpanRecord"] = []

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_unix": self.start_unix,
            "start_offset": self.start_offset,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
            "children": [c.as_dict() for c in self.children],
        }

    def walk(self) -> Iterator["SpanRecord"]:
        """Depth-first iteration over this span and all its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"SpanRecord[{self.name}: {self.wall_seconds * 1e3:.2f}ms, "
            f"{len(self.children)} children]"
        )


class _ActiveSpan:
    """Context manager pushing/popping one :class:`SpanRecord`."""

    __slots__ = ("_recorder", "record", "_t0", "_c0", "_mem")

    def __init__(self, recorder: "Recorder", record: SpanRecord) -> None:
        self._recorder = recorder
        self.record = record
        self._t0 = 0.0
        self._c0 = 0.0
        self._mem = False

    def __enter__(self) -> SpanRecord:
        rec = self._recorder
        stack = rec._stack
        (stack[-1].children if stack else rec.roots).append(self.record)
        stack.append(self.record)
        if _profile_memory:
            self._mem = True
            self._mem_enter(rec)
        self.record.start_unix = time.time()
        self._c0 = time.process_time()
        self._t0 = time.perf_counter()
        self.record.start_offset = self._t0 - rec._origin_perf
        return self.record

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.record.wall_seconds = time.perf_counter() - self._t0
        self.record.cpu_seconds = time.process_time() - self._c0
        if exc is not None:
            self.record.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
        rec = self._recorder
        if self._mem and rec._mem_stack:
            self._mem_exit(rec)
        stack = rec._stack
        if stack and stack[-1] is self.record:
            stack.pop()
        return False

    def _mem_enter(self, rec: "Recorder") -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
        tracemalloc.reset_peak()
        rec._mem_stack.append(0)

    def _mem_exit(self, rec: "Recorder") -> None:
        """Per-span peak-bytes attribution (opt-in, see ``--profile-memory``).

        ``tracemalloc`` keeps one global peak, so each span resets it on
        entry and on exit takes ``max(global peak since entry, peaks its
        children reported)`` — the child bubbles its own peak up through
        ``_mem_stack`` so a parent's number always covers its subtree.
        """
        import tracemalloc

        _, peak = tracemalloc.get_traced_memory()
        own_peak = max(rec._mem_stack.pop(), peak)
        self.record.attrs["mem_peak_bytes"] = int(own_peak)
        if rec._mem_stack:
            rec._mem_stack[-1] = max(rec._mem_stack[-1], own_peak)
        tracemalloc.reset_peak()


class _NullSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def _cache_raw() -> Dict[str, Tuple[int, int]]:
    """Current-process memoization stats as ``{query: (hits, misses)}``."""
    # imported lazily: obs must stay importable below the topology layer
    from ..topology.cache import cache_info

    return {
        name: (int(stats["hits"]), int(stats["misses"]))
        for name, stats in cache_info().items()
    }


def _cache_delta(
    baseline: Dict[str, Tuple[int, int]], now: Dict[str, Tuple[int, int]]
) -> Dict[str, Dict[str, Any]]:
    """Per-query ``now - baseline``, clamped at zero (``cache_clear`` resets
    the raw counters, which would otherwise produce negative deltas)."""
    out: Dict[str, Dict[str, Any]] = {}
    for name, (hits, misses) in sorted(now.items()):
        h0, m0 = baseline.get(name, (0, 0))
        dh, dm = max(hits - h0, 0), max(misses - m0, 0)
        if dh + dm:
            out[name] = {"hits": dh, "misses": dm, "hit_rate": dh / (dh + dm)}
    return out


def merge_cache_maps(*maps: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Sum ``{query: {hits, misses, hit_rate}}`` maps; hit rates recomputed."""
    totals: Dict[str, List[int]] = {}
    for m in maps:
        for name, stats in m.items():
            pair = totals.setdefault(name, [0, 0])
            pair[0] += int(stats["hits"])
            pair[1] += int(stats["misses"])
    return {
        name: {"hits": h, "misses": m, "hit_rate": h / (h + m)}
        for name, (h, m) in sorted(totals.items())
        if h + m
    }


#: How one gauge's values combine across the parent and its pool workers.
#: ``"last"`` reproduces the old implicit dict-update behaviour — which
#: made parallel gauges depend on worker *completion order* — and is
#: therefore never the default.
GAUGE_POLICIES: Dict[str, Any] = {
    "max": max,
    "min": min,
    "sum": lambda values: sum(values),
    "last": lambda values: values[-1],
}

#: Policy applied to a gauge with no explicit entry: ``max`` is order-free
#: and matches the dominant use (high-water marks like population sizes).
DEFAULT_GAUGE_POLICY = "max"


def merge_gauge_maps(
    maps: List[Dict[str, float]],
    policies: Optional[Dict[str, str]] = None,
) -> Dict[str, float]:
    """Combine gauge maps under an explicit per-gauge policy.

    ``maps`` is ordered parent-first, then one map per worker snapshot in
    merge order.  Every policy except ``"last"`` is insensitive to that
    order, so parallel aggregates cannot depend on worker completion
    order (the bug this replaces: last-write-wins ``dict.update``).
    Unknown policy names raise :class:`ValueError` up front.
    """
    policies = policies or {}
    for name, policy in policies.items():
        if policy not in GAUGE_POLICIES:
            raise ValueError(
                f"unknown gauge policy {policy!r} for gauge {name!r}; "
                f"use one of {sorted(GAUGE_POLICIES)}"
            )
    values: Dict[str, List[float]] = {}
    for m in maps:
        for name, value in m.items():
            values.setdefault(name, []).append(float(value))
    return {
        name: GAUGE_POLICIES[policies.get(name, DEFAULT_GAUGE_POLICY)](series)
        for name, series in sorted(values.items())
    }


class Recorder:
    """Per-process trace state: span tree, counters, gauges, worker merges."""

    __slots__ = (
        "roots",
        "counters",
        "gauges",
        "gauge_policies",
        "worker_snapshots",
        "_stack",
        "_mem_stack",
        "_cache_baseline",
        "_origin_perf",
    )

    def __init__(self) -> None:
        self.roots: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.gauge_policies: Dict[str, str] = {}
        self.worker_snapshots: List[Dict[str, Any]] = []
        self._stack: List[SpanRecord] = []
        self._mem_stack: List[int] = []
        self._cache_baseline: Dict[str, Tuple[int, int]] = _cache_raw()
        self._origin_perf: float = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> _ActiveSpan:
        # positional-only so an attribute may itself be called "name"
        return _ActiveSpan(self, SpanRecord(name, attrs))

    def add_counter(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def set_gauge_policy(self, name: str, policy: str) -> None:
        """Choose how ``name`` merges across worker snapshots.

        ``policy`` is one of :data:`GAUGE_POLICIES` (``max`` — the
        default for unconfigured gauges — ``min``, ``sum``, ``last``).
        """
        if policy not in GAUGE_POLICIES:
            raise ValueError(
                f"unknown gauge policy {policy!r}; use one of "
                f"{sorted(GAUGE_POLICIES)}"
            )
        self.gauge_policies[name] = policy

    # -- inspection --------------------------------------------------------

    def walk(self) -> Iterator[SpanRecord]:
        """Depth-first iteration over every recorded span (parent only)."""
        for root in self.roots:
            yield from root.walk()

    def find_span(self, name: str) -> Optional[SpanRecord]:
        """The first span (depth-first) with the given name, or ``None``."""
        for record in self.walk():
            if record.name == name:
                return record
        return None

    def span_names(self) -> List[str]:
        return [record.name for record in self.walk()]

    def own_cache(self) -> Dict[str, Dict[str, Any]]:
        """This process's memoization activity since the recorder was created."""
        return _cache_delta(self._cache_baseline, _cache_raw())

    # -- cross-process aggregation -----------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Serializable state for crossing a process boundary."""
        return {
            "worker": os.getpid(),
            "spans": [root.as_dict() for root in self.roots],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "gauge_policies": dict(self.gauge_policies),
            "cache": self.own_cache(),
        }

    def merge_worker(
        self,
        snapshot: Dict[str, Any],
        gauge_policies: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold one worker snapshot into this (parent) recorder.

        Counters and cache stats are summed at aggregation time — those
        merges are unambiguous.  Gauges are not: before this parameter,
        parallel gauge values depended on worker completion order
        (last-write-wins by dict update).  Every gauge now merges under
        an explicit policy — ``"max"`` unless overridden here or via
        :meth:`set_gauge_policy` — so ``workers=1`` and ``workers=N``
        produce identical :meth:`aggregate_gauges`.
        """
        if gauge_policies:
            for name, policy in gauge_policies.items():
                self.set_gauge_policy(name, policy)
        # the worker's own policy choices ride back in its snapshot; an
        # explicit parent-side policy (above, or set_gauge_policy) wins
        for name, policy in snapshot.get("gauge_policies", {}).items():
            if name not in self.gauge_policies:
                self.set_gauge_policy(name, policy)
        self.worker_snapshots.append(snapshot)

    def aggregate_gauges(self) -> Dict[str, float]:
        """Parent + worker gauges merged under the per-gauge policies."""
        return merge_gauge_maps(
            [self.gauges]
            + [dict(snap.get("gauges", {})) for snap in self.worker_snapshots],
            self.gauge_policies,
        )

    def aggregate_counters(self) -> Dict[str, float]:
        """Parent counters plus the sum of every merged worker's counters."""
        totals = dict(self.counters)
        for snap in self.worker_snapshots:
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def aggregate_cache(self) -> Dict[str, Dict[str, Any]]:
        """Parent + worker memoization stats, summed per query.

        This is the number the parallel census/conformance engines could
        not report before: worker hits/misses used to vanish with the
        worker process, so parallel runs under-reported cache
        effectiveness.  ``workers=1`` and ``workers=N`` aggregates are
        equal on the same workload (pinned by
        ``tests/test_obs_integration.py``).
        """
        return merge_cache_maps(
            self.own_cache(),
            *(snap.get("cache", {}) for snap in self.worker_snapshots),
        )


_recorder = Recorder()


def get_recorder() -> Recorder:
    """The process-wide recorder currently collecting spans."""
    return _recorder


def reset_recorder() -> Recorder:
    """Install a fresh recorder (and cache baseline); returns the old one."""
    global _recorder
    previous = _recorder
    _recorder = Recorder()
    return previous


def tracing_enabled() -> bool:
    """Whether spans/counters are currently being recorded."""
    return _enabled


def set_tracing(enabled: bool) -> bool:
    """Globally enable/disable tracing; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


def memory_profiling_enabled() -> bool:
    """Whether spans attach ``mem_peak_bytes`` (tracemalloc) attributes."""
    return _profile_memory


def set_memory_profiling(enabled: bool) -> bool:
    """Opt spans in/out of tracemalloc peak-bytes attrs; returns previous.

    Off by default and independent of :func:`set_tracing` — tracemalloc
    slows allocation-heavy code by an order of magnitude, so memory
    profiling must never ride along silently with ``--trace``.  Enabling
    starts tracemalloc lazily on the first profiled span; switching from
    on to off stops tracemalloc.
    """
    global _profile_memory
    previous = _profile_memory
    _profile_memory = bool(enabled)
    if not _profile_memory and previous:
        import tracemalloc

        if tracemalloc.is_tracing():
            tracemalloc.stop()
    return previous


@contextmanager
def tracing(enabled: bool = True) -> Iterator[Recorder]:
    """Run a block with tracing switched on (or off) and restored after."""
    previous = set_tracing(enabled)
    try:
        yield _recorder
    finally:
        set_tracing(previous)


def span(name: str, /, **attrs: Any) -> Any:
    """A timed region; a no-op singleton when tracing is disabled.

    Use as ``with span("decide", task=name) as sp:`` — ``sp`` is the
    mutable :class:`SpanRecord` when tracing, ``None`` otherwise (use
    :func:`annotate` to attach attributes without branching on that).
    The span name is positional-only, so any keyword — including
    ``name=…`` — is an attribute.
    """
    if not _enabled:
        return _NULL_SPAN
    return _recorder.span(name, **attrs)


def annotate(record: Optional[SpanRecord], /, **attrs: Any) -> None:
    """Attach attributes to an active span; no-op on the disabled ``None``."""
    if record is not None:
        record.attrs.update(attrs)


def counter_add(name: str, value: float = 1.0) -> None:
    """Accumulate into a monotonic counter (no-op while disabled)."""
    if _enabled:
        _recorder.add_counter(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set a last-write-wins gauge (no-op while disabled)."""
    if _enabled:
        _recorder.set_gauge(name, value)


def set_gauge_policy(name: str, policy: str) -> None:
    """Declare how ``name`` merges across worker snapshots.

    Unlike :func:`gauge_set`, the declaration applies even while tracing
    is disabled — a merge policy is configuration, not a recording, and
    must be in place before any worker snapshot is merged.
    """
    _recorder.set_gauge_policy(name, policy)


class WorkerCapture:
    """Box carrying a worker's snapshot out of :func:`capture_worker`."""

    __slots__ = ("snapshot",)

    def __init__(self) -> None:
        self.snapshot: Optional[Dict[str, Any]] = None


@contextmanager
def capture_worker() -> Iterator[WorkerCapture]:
    """Record a pool worker's block into a fresh recorder and snapshot it.

    Used inside :mod:`multiprocessing` worker entry points (one capture
    per work item): a fresh recorder is installed (so fork-inherited
    parent state cannot leak in), tracing is enabled, and on exit the
    block's spans, counters and *cache-delta* are serialized into
    ``capture.snapshot`` for the parent to fold in with
    :func:`merge_worker_snapshot`.  The previous recorder and flag are
    always restored — pool workers are reused across work items, so each
    item's snapshot must cover exactly its own activity.
    """
    global _recorder
    previous_recorder = _recorder
    previous_flag = set_tracing(True)
    fresh = Recorder()
    _recorder = fresh
    capture = WorkerCapture()
    try:
        yield capture
    finally:
        capture.snapshot = fresh.snapshot()
        _recorder = previous_recorder
        set_tracing(previous_flag)


def merge_worker_snapshot(snapshot: Dict[str, Any]) -> None:
    """Parent-side fold of one worker snapshot into the current recorder."""
    _recorder.merge_worker(snapshot)
