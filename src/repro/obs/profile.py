"""Profiling exports from ``repro-trace/1`` span trees.

The span tree already *is* a profile — every record carries wall/CPU
seconds and its position in the call hierarchy — so standard profiling
UIs can render it without re-running anything:

* :func:`folded_stacks` emits the collapsed-stack ("folded") text format
  consumed by Brendan Gregg's ``flamegraph.pl`` and by speedscope: one
  ``frame;frame;frame count`` line per unique stack, where ``count`` is
  the stack's *self* time in integer microseconds (a span's time minus
  its children's — the flame graph's widths then sum correctly at every
  level);
* :func:`chrome_trace` emits Chrome trace-event JSON (``chrome://tracing``,
  Perfetto, speedscope): one complete ``"X"`` event per span, laid on a
  timeline by the ``start_offset`` field :class:`~repro.obs.SpanRecord`
  records at span entry.  Parent spans render as pid 0; each worker
  snapshot renders under its real worker pid, so pool skew is visible as
  staggered tracks.

Worker-snapshot spans are included in both exports, rooted under a
``worker[<pid>]`` frame in the folded output.  Worker ``start_offset``
values are measured from each worker recorder's own creation, so
cross-process alignment in the Chrome view is approximate (tracks start
at their own zero) — within one process the timeline is exact.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: span timing field used for folded-stack counts, per ``--metric``
METRICS = {"wall": "wall_seconds", "cpu": "cpu_seconds"}


def _self_micros(span: Dict[str, Any], field: str) -> int:
    own = span[field] - sum(child[field] for child in span["children"])
    return max(int(round(own * 1e6)), 0)


def _fold(
    span: Dict[str, Any],
    prefix: str,
    field: str,
    totals: Dict[str, int],
) -> None:
    # frame separators would corrupt the stack encoding: ";" splits
    # frames and " " splits the count, so both are replaced per format
    frame = span["name"].replace(";", ":").replace(" ", "_")
    stack = f"{prefix};{frame}" if prefix else frame
    count = _self_micros(span, field)
    if count:
        totals[stack] = totals.get(stack, 0) + count
    for child in span["children"]:
        _fold(child, stack, field, totals)


def folded_stacks(payload: Dict[str, Any], metric: str = "wall") -> List[str]:
    """Collapsed-stack lines (``a;b;c 1234``) for flamegraph.pl/speedscope.

    ``metric`` selects wall-clock (default) or CPU seconds; counts are
    self-time microseconds, so zero-self-time interior spans contribute
    no line of their own but still appear as frames of their children.
    Lines are sorted (the folded format is order-insensitive; sorting
    makes the output diff-stable).
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {sorted(METRICS)}, got {metric!r}")
    field = METRICS[metric]
    totals: Dict[str, int] = {}
    for span in payload.get("spans", []):
        _fold(span, "", field, totals)
    for snap in payload.get("workers", []):
        root = f"worker[{snap.get('worker', '?')}]"
        for span in snap.get("spans", []):
            _fold(span, root, field, totals)
    return [f"{stack} {count}" for stack, count in sorted(totals.items())]


def write_folded(path: str, payload: Dict[str, Any], metric: str = "wall") -> int:
    """Write folded stacks to ``path``; returns the number of lines."""
    lines = folded_stacks(payload, metric=metric)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def _events(
    span: Dict[str, Any],
    pid: int,
    events: List[Dict[str, Any]],
) -> None:
    events.append(
        {
            "name": span["name"],
            "cat": "span",
            "ph": "X",
            "ts": span["start_offset"] * 1e6,
            "dur": span["wall_seconds"] * 1e6,
            "pid": pid,
            "tid": pid,
            "args": dict(span["attrs"]),
        }
    )
    for child in span["children"]:
        _events(child, pid, events)


def chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A Chrome trace-event payload (``{"traceEvents": [...]}``).

    Durations and timestamps are microseconds, as the format requires;
    counters ride along in ``otherData`` so a loaded trace keeps the
    aggregate numbers next to the timeline.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"parent ({payload.get('meta', {}).get('command', 'trace')})"},
        }
    ]
    for span in payload.get("spans", []):
        _events(span, 0, events)
    for snap in payload.get("workers", []):
        pid = int(snap.get("worker", 0)) or 0
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": pid,
                "args": {"name": f"worker {pid}"},
            }
        )
        for span in snap.get("spans", []):
            _events(span, pid, events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": payload.get("schema"),
            "counters": dict(payload.get("aggregate", {}).get("counters", {})),
        },
    }


def write_chrome_trace(path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Write the Chrome trace-event JSON to ``path``; returns the payload."""
    trace = chrome_trace(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return trace


def format_profile(payload: Dict[str, Any], metric: str = "wall") -> str:
    """The folded stacks as one text blob (stdout-friendly)."""
    return "\n".join(folded_stacks(payload, metric=metric))


__all__ = [
    "METRICS",
    "chrome_trace",
    "folded_stacks",
    "format_profile",
    "write_chrome_trace",
    "write_folded",
]
