"""The persistent telemetry run store (``repro-run/1`` JSONL).

Traces (:mod:`repro.obs.export`) answer "where did *this* run spend its
time"; nothing answered "how has that changed since last week".  This
module closes the loop: every traced CLI invocation appends one compact,
schema-validated **run record** to an append-only JSONL store, so
decision latency, cache hit rates and campaign throughput become a
queryable trajectory across commits instead of dying with each process.

A run record is deliberately much smaller than a trace — top-level span
wall/CPU aggregated by name, aggregate counters/gauges/cache, plus
provenance (command, argv, task, git SHA, host fingerprint) — so the
store stays cheap to append to and fast to scan even after thousands of
runs.  ``python -m repro obs trend`` renders per-metric history,
``python -m repro obs diff`` compares two runs under the noise-tolerant
threshold model in :mod:`repro.obs.trend`, and
``python -m repro obs ingest`` converts the existing
``benchmarks/BENCH_*.json`` (``repro-perf/1``) reports into run records
so the bench trajectory lives in the same place.

The store path resolves ``--store`` flag > ``REPRO_TELEMETRY`` env var >
``.repro/telemetry.jsonl``.  Records are one JSON object per line,
append-only; unreadable lines are reported but never block reading the
rest (a half-written line from a crashed run must not poison history).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..service.keys import record_id

#: Run-record format identifier; bump the suffix on breaking changes.
SCHEMA = "repro-run/1"

#: Environment variable overriding the default store location.
ENV_VAR = "REPRO_TELEMETRY"

#: Default store path, relative to the working directory.
DEFAULT_PATH = os.path.join(".repro", "telemetry.jsonl")


def resolve_store_path(path: Optional[str] = None) -> str:
    """``--store`` flag > ``REPRO_TELEMETRY`` env > ``.repro/telemetry.jsonl``."""
    return path or os.environ.get(ENV_VAR) or DEFAULT_PATH


def git_sha() -> Optional[str]:
    """The current commit SHA, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def host_fingerprint() -> Dict[str, Any]:
    """Machine context + hostname: enough to read absolute numbers honestly."""
    from ..perf import machine_info

    info = machine_info()
    info["hostname"] = socket.gethostname()
    return info


def _top_spans(spans: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Root spans aggregated by name: ``{name: {wall, cpu, count}}``."""
    totals: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        entry = totals.setdefault(
            span["name"], {"wall_seconds": 0.0, "cpu_seconds": 0.0, "count": 0}
        )
        entry["wall_seconds"] += span["wall_seconds"]
        entry["cpu_seconds"] += span["cpu_seconds"]
        entry["count"] += 1
    return totals


def _run_id(record: Dict[str, Any]) -> str:
    """Content hash over everything but the id itself: stable, collision-safe.

    Delegates to :func:`repro.service.keys.record_id`, the shared
    content-hashing module — the serialization and truncation are
    byte-identical to what this function always produced, so historical
    run ids remain reproducible.
    """
    return record_id(record)


def build_run_record(
    trace_payload: Dict[str, Any],
    command: str,
    argv: Optional[List[str]] = None,
    task: Optional[str] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Condense one ``repro-trace/1`` payload into a ``repro-run/1`` record.

    ``command`` is the subcommand name (``decide``, ``census``, …) —
    trend/diff group and match runs by it.  ``task`` is the task spec
    when the command has one.  The trace's *aggregate* sections are used,
    so parallel runs record true cross-process counters and cache rates.
    """
    aggregate = trace_payload.get("aggregate", {})
    record = {
        "schema": SCHEMA,
        "created_unix": float(trace_payload.get("created_unix") or time.time()),
        "command": command,
        "argv": [str(a) for a in (argv or [])],
        "task": task,
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "spans": _top_spans(trace_payload.get("spans", [])),
        "counters": dict(aggregate.get("counters") or trace_payload.get("counters", {})),
        "gauges": dict(aggregate.get("gauges") or trace_payload.get("gauges", {})),
        "cache": {
            query: dict(stats)
            for query, stats in (
                aggregate.get("cache") or trace_payload.get("cache", {})
            ).items()
        },
        "meta": dict(meta or {}),
    }
    record["run_id"] = _run_id(record)
    return record


def bench_run_record(
    report: Dict[str, Any], source: Optional[str] = None
) -> Dict[str, Any]:
    """Convert one ``repro-perf/1`` bench report into a run record.

    Each measurement becomes a span entry (best wall seconds; the perf
    harness does not record CPU time, so ``cpu_seconds`` repeats the
    wall number) and its counters land prefixed with the measurement
    name.  Derived speedups become gauges, so ``obs trend`` charts the
    bench trajectory with the same machinery as live runs.
    """
    spans: Dict[str, Dict[str, Any]] = {}
    counters: Dict[str, float] = {}
    for entry in report.get("results", []):
        name = entry["name"]
        spans[name] = {
            "wall_seconds": float(entry["best_seconds"]),
            "cpu_seconds": float(entry["best_seconds"]),
            "count": int(entry.get("repeats", 1)),
        }
        for key, value in entry.get("counters", {}).items():
            counters[f"{name}.{key}"] = float(value)
    record = {
        "schema": SCHEMA,
        "created_unix": float(report.get("created_unix") or time.time()),
        "command": f"bench {report.get('suite', '?')}",
        "argv": [],
        "task": None,
        "git_sha": git_sha(),
        "host": dict(report.get("machine", {}), hostname=socket.gethostname()),
        "spans": spans,
        "counters": counters,
        "gauges": {k: float(v) for k, v in report.get("derived", {}).items()},
        "cache": {},
        "meta": {"source": source} if source else {},
    }
    record["run_id"] = _run_id(record)
    return record


def soak_run_record(
    report: Dict[str, Any], source: Optional[str] = None
) -> Dict[str, Any]:
    """Convert one ``repro-soak/1`` soak report into a run record.

    The run becomes a single ``serve-soak`` span (wall = soak duration),
    traffic totals land as counters, and the growth slopes/budget
    verdicts become gauges — so ``obs trend`` charts leak slopes across
    commits and ``obs diff`` can gate on them like any other metric.
    The report's latency histogram rides along under a ``histograms``
    key that ``repro-run/1`` validation ignores and trend/diff skip
    (their forward-compat contract for unknown metric kinds).

    A pure dict transform (no service import): the obs layer must not
    depend back on :mod:`repro.service`.
    """
    duration = float(report.get("duration_seconds", 0.0))
    counters = {
        "soak.requests": float(report.get("requests", 0)),
        "soak.ok": float(report.get("ok", 0)),
        "soak.errors": float(report.get("errors", 0)),
        "soak.scrapes": float(report.get("scrapes", 0)),
        "soak.scrape_failures": float(report.get("scrape_failures", 0)),
    }
    gauges: Dict[str, float] = {
        "soak.hit_rate": float(report.get("hit_rate", 0.0)),
        "soak.throughput_rps": float(report.get("throughput_rps", 0.0)),
        "soak.passed": 1.0 if report.get("passed") else 0.0,
        "soak.p50_ms": float(report.get("latency_ms", {}).get("p50", 0.0)),
        "soak.p99_ms": float(report.get("latency_ms", {}).get("p99", 0.0)),
    }
    for series, slope in (report.get("slopes") or {}).items():
        gauges[f"soak.slope.{series}"] = float(slope)
    record = {
        "schema": SCHEMA,
        "created_unix": float(report.get("created_unix") or time.time()),
        "command": "serve-soak",
        "argv": [],
        "task": None,
        "git_sha": git_sha(),
        "host": host_fingerprint(),
        "spans": {
            "serve-soak": {
                "wall_seconds": duration,
                "cpu_seconds": duration,
                "count": 1,
            }
        },
        "counters": counters,
        "gauges": gauges,
        "cache": {},
        "meta": {
            "source": source,
            "budgets": dict(report.get("budgets") or {}),
            "over_budget": list(report.get("over_budget") or []),
        },
        # deliberately outside the validated vocabulary: exercises the
        # unknown-section tolerance downstream consumers must keep
        "histograms": [dict(report.get("latency") or {}, name="soak_latency")],
    }
    record["run_id"] = _run_id(record)
    return record


def validate_run_record(record: Any) -> List[str]:
    """Check one record against ``repro-run/1``; returns problems.

    Dependency-free and strict, in the style of
    :func:`repro.obs.validate_trace` — the CI job schema-validates the
    whole store, so drift in what the CLI appends fails fast.
    """
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["run record must be an object"]
    if record.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    if not (isinstance(record.get("run_id"), str) and record["run_id"]):
        errors.append("run_id must be a non-empty string")
    if not isinstance(record.get("created_unix"), (int, float)):
        errors.append("created_unix must be a number")
    if not (isinstance(record.get("command"), str) and record["command"]):
        errors.append("command must be a non-empty string")
    argv = record.get("argv")
    if not (isinstance(argv, list) and all(isinstance(a, str) for a in argv)):
        errors.append("argv must be a list of strings")
    if not (record.get("task") is None or isinstance(record["task"], str)):
        errors.append("task must be a string or null")
    if not (record.get("git_sha") is None or isinstance(record["git_sha"], str)):
        errors.append("git_sha must be a string or null")
    host = record.get("host")
    if not isinstance(host, dict):
        errors.append("host must be an object")
    else:
        if not isinstance(host.get("python"), str):
            errors.append("host.python must be a string")
        if not isinstance(host.get("cpu_count"), int):
            errors.append("host.cpu_count must be an int")
    spans = record.get("spans")
    if not isinstance(spans, dict):
        errors.append("spans must be an object")
    else:
        for name, entry in spans.items():
            where = f"spans[{name!r}]"
            if not isinstance(entry, dict):
                errors.append(f"{where} must be an object")
                continue
            for field in ("wall_seconds", "cpu_seconds"):
                value = entry.get(field)
                if (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or value < 0
                ):
                    errors.append(f"{where}.{field} must be a non-negative number")
            if not (isinstance(entry.get("count"), int) and entry["count"] >= 1):
                errors.append(f"{where}.count must be a positive int")
    for section in ("counters", "gauges"):
        mapping = record.get(section)
        if not isinstance(mapping, dict):
            errors.append(f"{section} must be an object")
            continue
        for key, value in mapping.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{section}[{key!r}] must be a number")
    cache = record.get("cache")
    if not isinstance(cache, dict):
        errors.append("cache must be an object")
    else:
        for query, stats in cache.items():
            where = f"cache[{query!r}]"
            if not isinstance(stats, dict):
                errors.append(f"{where} must be an object")
                continue
            hits, misses = stats.get("hits"), stats.get("misses")
            if not (isinstance(hits, int) and isinstance(misses, int)):
                errors.append(f"{where} hits/misses must be ints")
                continue
            if hits < 0 or misses < 0 or hits + misses == 0:
                errors.append(f"{where} must have non-negative, non-zero totals")
                continue
            rate = stats.get("hit_rate")
            if (
                not isinstance(rate, (int, float))
                or abs(rate - hits / (hits + misses)) > 1e-9
            ):
                errors.append(f"{where}.hit_rate must equal hits/total")
    if not isinstance(record.get("meta"), dict):
        errors.append("meta must be an object")
    return errors


def append_run(record: Dict[str, Any], path: Optional[str] = None) -> str:
    """Validate and append one record to the store; returns the path used."""
    errors = validate_run_record(record)
    if errors:
        raise ValueError(f"invalid run record: {errors}")
    path = resolve_store_path(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_store(
    path: Optional[str] = None,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Read every valid record from the store (chronological file order).

    Returns ``(records, problems)``: a missing store is simply empty,
    and malformed or schema-invalid lines become problem strings instead
    of exceptions — one crashed half-written append must not make the
    whole history unreadable.
    """
    path = resolve_store_path(path)
    records: List[Dict[str, Any]] = []
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except FileNotFoundError:
        return [], []
    except OSError as exc:
        return [], [f"{path}: cannot read store: {exc}"]
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"{path}:{lineno}: not JSON: {exc}")
            continue
        errors = validate_run_record(record)
        if errors:
            problems.append(f"{path}:{lineno}: invalid record: {'; '.join(errors)}")
            continue
        records.append(record)
    return records, problems


def load_record_file(path: str) -> Dict[str, Any]:
    """Read one standalone record file (e.g. a committed baseline).

    Accepts a single ``repro-run/1`` JSON object, a ``repro-perf/1``
    bench report (converted via :func:`bench_run_record`), or a
    ``repro-soak/1`` soak report (converted via :func:`soak_run_record`).
    """
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if isinstance(payload, dict) and payload.get("schema") == "repro-perf/1":
        payload = bench_run_record(payload, source=path)
    elif isinstance(payload, dict) and payload.get("schema") == "repro-soak/1":
        payload = soak_run_record(payload, source=path)
    errors = validate_run_record(payload)
    if errors:
        raise ValueError(f"{path}: invalid run record: {errors}")
    return payload


def find_run(records: List[Dict[str, Any]], ref: str) -> Dict[str, Any]:
    """Resolve a run reference: run-id prefix, or a (possibly negative) index.

    Id matching wins over index parsing; an ambiguous prefix is an error
    rather than a silent first-match.
    """
    matches = [r for r in records if r["run_id"].startswith(ref)]
    if len(matches) == 1:
        return matches[0]
    if len(matches) > 1:
        ids = ", ".join(r["run_id"] for r in matches[:5])
        raise ValueError(f"run reference {ref!r} is ambiguous: matches {ids}")
    try:
        index = int(ref)
    except ValueError:
        raise ValueError(
            f"no run with id prefix {ref!r} (and not an index) in the store"
        ) from None
    try:
        return records[index]
    except IndexError:
        raise ValueError(
            f"run index {index} out of range for a store of {len(records)} runs"
        ) from None


def latest_run(
    records: List[Dict[str, Any]], command: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """The newest record, optionally restricted to one command."""
    pool = [r for r in records if command is None or r["command"] == command]
    if not pool:
        return None
    return max(pool, key=lambda r: (r["created_unix"],))


__all__ = [
    "DEFAULT_PATH",
    "ENV_VAR",
    "SCHEMA",
    "append_run",
    "bench_run_record",
    "build_run_record",
    "find_run",
    "git_sha",
    "host_fingerprint",
    "latest_run",
    "load_record_file",
    "load_store",
    "resolve_store_path",
    "soak_run_record",
    "validate_run_record",
]
