"""repro.obs — structured tracing, metrics, profiling and run history.

Hierarchical spans with wall/CPU timings, monotonic counters, gauges
(with explicit cross-process merge policies), a per-process recorder,
cross-process aggregation of worker snapshots, and a schema-validated
JSON export (``repro-trace/1``).  On top of the traces:

* :mod:`repro.obs.profile` — collapsed-stack ("folded") and Chrome
  trace-event exports for flamegraph.pl / speedscope / Perfetto, plus
  opt-in tracemalloc peak-bytes span attributes;
* :mod:`repro.obs.store` — the persistent ``repro-run/1`` telemetry
  store every traced CLI invocation appends to;
* :mod:`repro.obs.trend` — per-metric history rendering and the
  noise-tolerant regression sentinel behind ``python -m repro obs diff``.

See ``docs/observability.md`` for the span model, the trace/run schemas
and the threshold model, and ``python -m repro trace summary`` for the
pretty-printer.

Typical use::

    from repro import obs

    obs.reset_recorder()
    with obs.tracing():
        verdict = decide_solvability(task)      # records the span tree
    payload = obs.write_trace("trace.json", meta={"command": "decide"})

Tracing is off by default; instrumented hot paths cost one branch per
call site while disabled (same pattern as
:func:`repro.topology.cache.set_caching`).
"""

from .export import SCHEMA, build_trace, validate_trace, write_trace
from .metrics import (
    SCHEMA as METRICS_SCHEMA,
)
from .metrics import (
    LatencyHistogram,
    MetricsRegistry,
    RateMeter,
    build_metrics,
    parse_prometheus_text,
    prometheus_text,
    validate_metrics,
)
from .profile import (
    chrome_trace,
    folded_stacks,
    format_profile,
    write_chrome_trace,
    write_folded,
)
from .recorder import (
    DEFAULT_GAUGE_POLICY,
    GAUGE_POLICIES,
    Recorder,
    SpanRecord,
    WorkerCapture,
    annotate,
    capture_worker,
    counter_add,
    gauge_set,
    get_recorder,
    memory_profiling_enabled,
    merge_cache_maps,
    merge_gauge_maps,
    merge_worker_snapshot,
    reset_recorder,
    set_gauge_policy,
    set_memory_profiling,
    set_tracing,
    span,
    tracing,
    tracing_enabled,
)
from .store import (
    SCHEMA as RUN_SCHEMA,
)
from .store import (
    append_run,
    bench_run_record,
    build_run_record,
    find_run,
    latest_run,
    load_record_file,
    load_store,
    resolve_store_path,
    soak_run_record,
    validate_run_record,
)
from .sampler import ResourceSampler, fit_slope, read_rss_bytes, series_slopes
from .summary import format_trace_summary
from .trend import (
    Delta,
    Thresholds,
    diff_records,
    format_diff,
    format_trend,
    regressions,
)

__all__ = [
    "DEFAULT_GAUGE_POLICY",
    "Delta",
    "GAUGE_POLICIES",
    "LatencyHistogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "RUN_SCHEMA",
    "RateMeter",
    "Recorder",
    "ResourceSampler",
    "SCHEMA",
    "SpanRecord",
    "Thresholds",
    "WorkerCapture",
    "annotate",
    "append_run",
    "bench_run_record",
    "build_metrics",
    "build_run_record",
    "build_trace",
    "capture_worker",
    "chrome_trace",
    "counter_add",
    "diff_records",
    "find_run",
    "fit_slope",
    "folded_stacks",
    "format_diff",
    "format_profile",
    "format_trace_summary",
    "format_trend",
    "gauge_set",
    "get_recorder",
    "latest_run",
    "load_record_file",
    "load_store",
    "memory_profiling_enabled",
    "merge_cache_maps",
    "merge_gauge_maps",
    "merge_worker_snapshot",
    "parse_prometheus_text",
    "prometheus_text",
    "read_rss_bytes",
    "regressions",
    "reset_recorder",
    "resolve_store_path",
    "series_slopes",
    "set_gauge_policy",
    "set_memory_profiling",
    "set_tracing",
    "soak_run_record",
    "span",
    "tracing",
    "tracing_enabled",
    "validate_metrics",
    "validate_run_record",
    "validate_trace",
    "write_chrome_trace",
    "write_folded",
    "write_trace",
]
