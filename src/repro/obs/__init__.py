"""repro.obs — structured tracing and metrics for the decision pipeline.

Hierarchical spans with wall/CPU timings, monotonic counters, gauges, a
per-process recorder, cross-process aggregation of worker snapshots, and
a schema-validated JSON export (``repro-trace/1``).  See
``docs/observability.md`` for the span model and the trace schema, and
``python -m repro trace summary`` for the pretty-printer.

Typical use::

    from repro import obs

    obs.reset_recorder()
    with obs.tracing():
        verdict = decide_solvability(task)      # records the span tree
    payload = obs.write_trace("trace.json", meta={"command": "decide"})

Tracing is off by default; instrumented hot paths cost one branch per
call site while disabled (same pattern as
:func:`repro.topology.cache.set_caching`).
"""

from .export import SCHEMA, build_trace, validate_trace, write_trace
from .recorder import (
    Recorder,
    SpanRecord,
    WorkerCapture,
    annotate,
    capture_worker,
    counter_add,
    gauge_set,
    get_recorder,
    merge_cache_maps,
    merge_worker_snapshot,
    reset_recorder,
    set_tracing,
    span,
    tracing,
    tracing_enabled,
)
from .summary import format_trace_summary

__all__ = [
    "Recorder",
    "SCHEMA",
    "SpanRecord",
    "WorkerCapture",
    "annotate",
    "build_trace",
    "capture_worker",
    "counter_add",
    "format_trace_summary",
    "gauge_set",
    "get_recorder",
    "merge_cache_maps",
    "merge_worker_snapshot",
    "reset_recorder",
    "set_tracing",
    "span",
    "tracing",
    "tracing_enabled",
    "validate_trace",
    "write_trace",
]
