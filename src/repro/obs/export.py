"""Schema-validated JSON export of a trace (``repro-trace/1``).

Modeled on :mod:`repro.perf`'s ``repro-perf/1`` report: a fixed schema
identifier, host context from :func:`repro.perf.machine_info`, and a
dependency-free :func:`validate_trace` strict enough that the CI smoke
job catches format drift.  A trace payload carries:

* ``spans`` — the parent process's span forest (recursive records with
  ``wall_seconds`` / ``cpu_seconds`` / ``attrs`` / ``children``);
* ``counters`` / ``gauges`` — the parent's metrics;
* ``cache`` — the parent's memoization activity since its recorder was
  created (per query: hits, misses, hit rate);
* ``workers`` — one snapshot per merged pool work item (same shape,
  plus a ``worker`` pid), preserving per-worker timing skew;
* ``aggregate`` — counters and cache stats summed across the parent and
  every worker snapshot, plus gauges merged under the explicit per-gauge
  policies (``aggregate.gauge_policies``; default ``max``).  This is the
  cross-process view the parallel engines previously could not report;
  :func:`validate_trace` recomputes the sums and the policy merge, so a
  report whose aggregate drifted from its parts fails validation.

Span records additionally carry ``start_offset`` — seconds since their
recorder was created, on the ``perf_counter`` clock — which lets
:mod:`repro.obs.profile` lay spans on a Chrome-trace timeline.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

from .recorder import Recorder, get_recorder, merge_cache_maps, merge_gauge_maps

#: Trace format identifier; bump the suffix on breaking changes.
SCHEMA = "repro-trace/1"


def build_trace(
    recorder: Optional[Recorder] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Serialize a recorder (default: the process recorder) to a payload."""
    # imported lazily to keep repro.obs import-light for instrumented modules
    from ..perf import machine_info

    recorder = recorder if recorder is not None else get_recorder()
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "machine": machine_info(),
        "meta": dict(meta or {}),
        "spans": [root.as_dict() for root in recorder.roots],
        "counters": dict(recorder.counters),
        "gauges": dict(recorder.gauges),
        "cache": recorder.own_cache(),
        "workers": [dict(snap) for snap in recorder.worker_snapshots],
        "aggregate": {
            "counters": recorder.aggregate_counters(),
            "gauges": recorder.aggregate_gauges(),
            "gauge_policies": dict(recorder.gauge_policies),
            "cache": recorder.aggregate_cache(),
        },
    }


def write_trace(
    path: str,
    recorder: Optional[Recorder] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Validate and write a trace JSON file; returns the payload."""
    payload = build_trace(recorder, meta=meta)
    errors = validate_trace(payload)
    if errors:
        raise ValueError(f"invalid trace: {errors}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def _validate_span(span: Any, where: str, errors: List[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{where} must be an object")
        return
    name = span.get("name")
    if not (isinstance(name, str) and name):
        errors.append(f"{where}.name must be a non-empty string")
    for field in ("start_unix", "start_offset", "wall_seconds", "cpu_seconds"):
        value = span.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            errors.append(f"{where}.{field} must be a number")
        elif field != "start_unix" and value < 0:
            errors.append(f"{where}.{field} must be non-negative")
    if not isinstance(span.get("attrs"), dict):
        errors.append(f"{where}.attrs must be an object")
    children = span.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}.children must be a list")
        return
    for i, child in enumerate(children):
        _validate_span(child, f"{where}.children[{i}]", errors)


def _validate_numeric_map(value: Any, where: str, errors: List[str]) -> bool:
    if not isinstance(value, dict):
        errors.append(f"{where} must be an object")
        return False
    ok = True
    for key, item in value.items():
        if not isinstance(item, (int, float)) or isinstance(item, bool):
            errors.append(f"{where}[{key!r}] must be a number")
            ok = False
    return ok


def _validate_cache_map(value: Any, where: str, errors: List[str]) -> bool:
    if not isinstance(value, dict):
        errors.append(f"{where} must be an object")
        return False
    ok = True
    for query, stats in value.items():
        if not isinstance(stats, dict):
            errors.append(f"{where}[{query!r}] must be an object")
            ok = False
            continue
        hits, misses = stats.get("hits"), stats.get("misses")
        if not (isinstance(hits, int) and isinstance(misses, int)):
            errors.append(f"{where}[{query!r}] hits/misses must be ints")
            ok = False
            continue
        if hits < 0 or misses < 0 or hits + misses == 0:
            errors.append(
                f"{where}[{query!r}] must have non-negative, non-zero totals"
            )
            ok = False
            continue
        rate = stats.get("hit_rate")
        if (
            not isinstance(rate, (int, float))
            or abs(rate - hits / (hits + misses)) > 1e-9
        ):
            errors.append(f"{where}[{query!r}].hit_rate must equal hits/total")
            ok = False
    return ok


def validate_trace(payload: Any) -> List[str]:
    """Check a payload against the ``repro-trace/1`` schema; returns problems.

    An empty list means the payload is valid.  Dependency-free (no
    jsonschema in this environment), in the style of
    :func:`repro.perf.validate_report`, and strict about the aggregate:
    the summed counters and cache stats must equal parent + workers.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["trace must be an object"]
    if payload.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}")
    if not isinstance(payload.get("created_unix"), (int, float)):
        errors.append("created_unix must be a number")
    machine = payload.get("machine")
    if not isinstance(machine, dict):
        errors.append("machine must be an object")
    else:
        if not isinstance(machine.get("cpu_count"), int):
            errors.append("machine.cpu_count must be an int")
        if not isinstance(machine.get("python"), str):
            errors.append("machine.python must be a string")
    if not isinstance(payload.get("meta"), dict):
        errors.append("meta must be an object")

    spans = payload.get("spans")
    if not isinstance(spans, list):
        errors.append("spans must be a list")
    else:
        for i, span in enumerate(spans):
            _validate_span(span, f"spans[{i}]", errors)

    counters_ok = _validate_numeric_map(payload.get("counters"), "counters", errors)
    gauges_ok = _validate_numeric_map(payload.get("gauges"), "gauges", errors)
    cache_ok = _validate_cache_map(payload.get("cache"), "cache", errors)

    workers = payload.get("workers")
    workers_ok = isinstance(workers, list)
    if not workers_ok:
        errors.append("workers must be a list")
        workers = []
    for i, snap in enumerate(workers):
        where = f"workers[{i}]"
        if not isinstance(snap, dict):
            errors.append(f"{where} must be an object")
            workers_ok = False
            continue
        if not isinstance(snap.get("worker"), int):
            errors.append(f"{where}.worker must be an int (pid)")
        wspans = snap.get("spans")
        if not isinstance(wspans, list):
            errors.append(f"{where}.spans must be a list")
        else:
            for j, span in enumerate(wspans):
                _validate_span(span, f"{where}.spans[{j}]", errors)
        workers_ok = (
            _validate_numeric_map(snap.get("counters"), f"{where}.counters", errors)
            and _validate_numeric_map(snap.get("gauges", {}), f"{where}.gauges", errors)
            and _validate_cache_map(snap.get("cache"), f"{where}.cache", errors)
            and workers_ok
        )

    aggregate = payload.get("aggregate")
    if not isinstance(aggregate, dict):
        errors.append("aggregate must be an object")
        return errors
    agg_counters_ok = _validate_numeric_map(
        aggregate.get("counters"), "aggregate.counters", errors
    )
    agg_gauges_ok = _validate_numeric_map(
        aggregate.get("gauges"), "aggregate.gauges", errors
    )
    gauge_policies = aggregate.get("gauge_policies", {})
    if not isinstance(gauge_policies, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in gauge_policies.items()
    ):
        errors.append("aggregate.gauge_policies must map gauge names to policy names")
        agg_gauges_ok = False
        gauge_policies = {}
    agg_cache_ok = _validate_cache_map(aggregate.get("cache"), "aggregate.cache", errors)

    # the aggregate must actually be the sum of its parts
    if counters_ok and workers_ok and agg_counters_ok:
        expected: Dict[str, float] = dict(payload["counters"])
        for snap in workers:
            for name, value in snap.get("counters", {}).items():
                expected[name] = expected.get(name, 0.0) + value
        got = aggregate["counters"]
        if set(expected) != set(got) or any(
            abs(expected[k] - got[k]) > 1e-6 for k in expected
        ):
            errors.append("aggregate.counters must equal parent + worker sums")
    if gauges_ok and workers_ok and agg_gauges_ok:
        try:
            expected_gauges = merge_gauge_maps(
                [dict(payload.get("gauges", {}))]
                + [dict(snap.get("gauges", {})) for snap in workers],
                dict(gauge_policies),
            )
        except ValueError as exc:
            errors.append(f"aggregate.gauge_policies: {exc}")
        else:
            got_gauges = aggregate["gauges"]
            if set(expected_gauges) != set(got_gauges) or any(
                abs(expected_gauges[k] - got_gauges[k]) > 1e-9 for k in expected_gauges
            ):
                errors.append(
                    "aggregate.gauges must equal the policy-merged parent + "
                    "worker gauges"
                )
    if cache_ok and workers_ok and agg_cache_ok:
        expected_cache = merge_cache_maps(
            payload["cache"], *(snap.get("cache", {}) for snap in workers)
        )
        got_cache = aggregate["cache"]
        if set(expected_cache) != set(got_cache) or any(
            expected_cache[q]["hits"] != got_cache[q]["hits"]
            or expected_cache[q]["misses"] != got_cache[q]["misses"]
            for q in expected_cache
        ):
            errors.append("aggregate.cache must equal parent + worker sums")
    return errors
