"""Human-readable rendering of ``repro-trace/1`` payloads.

Backs ``python -m repro trace summary``: the span tree with wall/CPU
milliseconds and attributes, the top counters, the aggregate cache table,
and a per-worker skew line for parallel runs.  Pure formatting — the
payload is assumed to have passed :func:`repro.obs.validate_trace`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.2f}ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attrs[k]!r}" for k in sorted(attrs)]
    text = " ".join(parts)
    if len(text) > 72:
        text = text[:69] + "..."
    return f"  [{text}]"


def _span_lines(
    span: Dict[str, Any],
    depth: int,
    max_depth: Optional[int],
    lines: List[str],
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    lines.append(
        f"  {_fmt_ms(span['wall_seconds'])} wall {_fmt_ms(span['cpu_seconds'])} cpu"
        f"  {'  ' * depth}{span['name']}{_fmt_attrs(span['attrs'])}"
    )
    for child in span["children"]:
        _span_lines(child, depth + 1, max_depth, lines)


def format_trace_summary(
    payload: Dict[str, Any],
    max_depth: Optional[int] = None,
    max_counters: int = 20,
) -> str:
    """Render one trace payload as an indented text report."""
    lines: List[str] = []
    meta = payload.get("meta", {})
    machine = payload.get("machine", {})
    header = f"trace {payload.get('schema', '?')}"
    if meta.get("command"):
        header += f" — {meta['command']}"
    lines.append(header)
    lines.append(
        f"machine: python {machine.get('python', '?')}, "
        f"{machine.get('cpu_count', '?')} cpus"
    )

    spans = payload.get("spans", [])
    if spans:
        lines.append("")
        lines.append("spans (wall / cpu):")
        for span in spans:
            _span_lines(span, 0, max_depth, lines)

    aggregate = payload.get("aggregate", {})
    counters = aggregate.get("counters") or payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters (aggregate):")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in ranked[:max_counters]:
            text = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {text:>12}  {name}")
        if len(ranked) > max_counters:
            lines.append(f"  … {len(ranked) - max_counters} more")

    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {gauges[name]:>12g}  {name}")

    cache = aggregate.get("cache") or payload.get("cache", {})
    if cache:
        lines.append("")
        lines.append("cache (aggregate across processes):")
        width = max(len(q) for q in cache)
        for query in sorted(cache):
            stats = cache[query]
            lines.append(
                f"  {query:<{width}}  hits={stats['hits']:<8} "
                f"misses={stats['misses']:<8} hit_rate={stats['hit_rate']:.3f}"
            )

    workers = payload.get("workers", [])
    if workers:
        lines.append("")
        totals = [
            sum(s["wall_seconds"] for s in snap.get("spans", []))
            for snap in workers
        ]
        pids = sorted({snap.get("worker") for snap in workers})
        lines.append(
            f"workers: {len(workers)} work item(s) across {len(pids)} process(es); "
            f"per-item wall {min(totals):.3f}s–{max(totals):.3f}s"
            if totals
            else f"workers: {len(workers)} work item(s)"
        )
    return "\n".join(lines)
