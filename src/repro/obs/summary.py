"""Human-readable rendering of ``repro-trace/1`` payloads.

Backs ``python -m repro trace summary``: the span tree with wall/CPU
milliseconds and attributes, the top counters, the aggregate cache table,
and a per-worker skew line for parallel runs.  Pure formatting — the
payload is assumed to have passed :func:`repro.obs.validate_trace`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.2f}ms"


def _fmt_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attrs[k]!r}" for k in sorted(attrs)]
    text = " ".join(parts)
    if len(text) > 72:
        text = text[:69] + "..."
    return f"  [{text}]"


def _span_lines(
    span: Dict[str, Any],
    depth: int,
    max_depth: Optional[int],
    min_ms: float,
    lines: List[str],
    hidden: List[int],
) -> None:
    if max_depth is not None and depth > max_depth:
        return
    if span["wall_seconds"] * 1e3 < min_ms:
        # children can only be faster than their parent: prune the subtree
        hidden[0] += _subtree_size(span)
        return
    lines.append(
        f"  {_fmt_ms(span['wall_seconds'])} wall {_fmt_ms(span['cpu_seconds'])} cpu"
        f"  {'  ' * depth}{span['name']}{_fmt_attrs(span['attrs'])}"
    )
    for child in span["children"]:
        _span_lines(child, depth + 1, max_depth, min_ms, lines, hidden)


def _subtree_size(span: Dict[str, Any]) -> int:
    return 1 + sum(_subtree_size(child) for child in span["children"])


def _aggregate_by_name(payload: Dict[str, Any]) -> Dict[str, List[float]]:
    """``name -> [count, total wall, total cpu]`` over parent AND worker
    spans — the worker trees are where census/conformance bulk lives."""
    totals: Dict[str, List[float]] = {}

    def visit(span: Dict[str, Any]) -> None:
        entry = totals.setdefault(span["name"], [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span["wall_seconds"]
        entry[2] += span["cpu_seconds"]
        for child in span["children"]:
            visit(child)

    for span in payload.get("spans", []):
        visit(span)
    for snap in payload.get("workers", []):
        for span in snap.get("spans", []):
            visit(span)
    return totals


#: ``--sort`` key -> index into the ``[count, wall, cpu]`` aggregate rows
SORT_KEYS = {"wall": 1, "cpu": 2, "count": 0}


def format_trace_summary(
    payload: Dict[str, Any],
    max_depth: Optional[int] = None,
    max_counters: int = 20,
    top: Optional[int] = None,
    sort: str = "wall",
    min_ms: float = 0.0,
) -> str:
    """Render one trace payload as an indented text report.

    Census/conformance traces carry thousands of spans, which made the
    unfiltered tree useless for them; three filters fix that:

    * ``min_ms`` prunes tree nodes (and their subtrees) whose wall time
      is below the threshold, reporting how many spans were hidden;
    * ``top`` replaces the span tree with a flat per-name profile table
      (count, total wall, total cpu — parent *and* worker spans) limited
      to the ``top`` busiest names;
    * ``sort`` (``wall`` | ``cpu`` | ``count``) orders that table.
    """
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {sorted(SORT_KEYS)}, got {sort!r}")
    lines: List[str] = []
    meta = payload.get("meta", {})
    machine = payload.get("machine", {})
    header = f"trace {payload.get('schema', '?')}"
    if meta.get("command"):
        header += f" — {meta['command']}"
    lines.append(header)
    lines.append(
        f"machine: python {machine.get('python', '?')}, "
        f"{machine.get('cpu_count', '?')} cpus"
    )

    spans = payload.get("spans", [])
    if top is not None:
        totals = _aggregate_by_name(payload)
        rows = [
            (name, entry)
            for name, entry in totals.items()
            if entry[1] * 1e3 >= min_ms
        ]
        rows.sort(key=lambda kv: (-kv[1][SORT_KEYS[sort]], kv[0]))
        if rows:
            lines.append("")
            lines.append(f"top spans by name (sorted by {sort}):")
            lines.append(
                f"  {'calls':>8}  {'total wall':>11} {'total cpu':>11}  name"
            )
            for name, (count, wall, cpu) in rows[:top]:
                lines.append(
                    f"  {int(count):>8}  {_fmt_ms(wall)} {_fmt_ms(cpu)}  {name}"
                )
            if len(rows) > top:
                lines.append(f"  … {len(rows) - top} more span names")
    elif spans:
        shown: List[str] = []
        hidden = [0]
        for span in spans:
            _span_lines(span, 0, max_depth, min_ms, shown, hidden)
        if shown:
            lines.append("")
            lines.append("spans (wall / cpu):")
            lines.extend(shown)
        if hidden[0]:
            lines.append(f"  … {hidden[0]} span(s) under {min_ms:g}ms hidden")

    aggregate = payload.get("aggregate", {})
    counters = aggregate.get("counters") or payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters (aggregate):")
        ranked = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, value in ranked[:max_counters]:
            text = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
            lines.append(f"  {text:>12}  {name}")
        if len(ranked) > max_counters:
            lines.append(f"  … {len(ranked) - max_counters} more")

    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {gauges[name]:>12g}  {name}")

    cache = aggregate.get("cache") or payload.get("cache", {})
    if cache:
        lines.append("")
        lines.append("cache (aggregate across processes):")
        width = max(len(q) for q in cache)
        for query in sorted(cache):
            stats = cache[query]
            lines.append(
                f"  {query:<{width}}  hits={stats['hits']:<8} "
                f"misses={stats['misses']:<8} hit_rate={stats['hit_rate']:.3f}"
            )

    workers = payload.get("workers", [])
    if workers:
        lines.append("")
        totals = [
            sum(s["wall_seconds"] for s in snap.get("spans", []))
            for snap in workers
        ]
        pids = sorted({snap.get("worker") for snap in workers})
        lines.append(
            f"workers: {len(workers)} work item(s) across {len(pids)} process(es); "
            f"per-item wall {min(totals):.3f}s–{max(totals):.3f}s"
            if totals
            else f"workers: {len(workers)} work item(s)"
        )
    return "\n".join(lines)
