"""Per-metric history and the perf-regression sentinel.

Operates on ``repro-run/1`` records from :mod:`repro.obs.store`:

* :func:`format_trend` renders each metric's trajectory across runs —
  span wall times, counters, gauges, cache hit rates — with an ASCII
  bar per run so drift is visible in a terminal;
* :func:`diff_records` compares two runs metric-by-metric under a
  **noise-tolerant threshold model** and classifies every delta, which
  is what lets ``python -m repro obs diff`` gate CI without flaking.

The threshold model (:class:`Thresholds`):

* **min-runtime floor** — a span must exceed ``min_seconds`` in the new
  run before its growth can count as a regression; micro-spans are pure
  scheduler noise and the decision pipeline's interesting stages are
  milliseconds-to-seconds;
* **relative tolerance** — a floored span regresses only when its wall
  time grows beyond ``rel_tolerance`` (for example ``0.25`` = +25 %);
  CPU time is reported but never gates, since wall is what users feel
  and CPU skews under pool parallelism;
* **counter tolerance** — counters (search nodes, split steps, runs)
  are deterministic for a fixed workload, so they get a separate,
  usually tighter, relative tolerance; growth beyond it means the
  *algorithm* did more work, the strongest regression signal there is;
* **cache tolerance** — hit rates are bounded in ``[0, 1]``, so they
  compare by absolute drop (``cache_tolerance``), not ratio.

Metrics present on only one side classify as ``new`` / ``gone`` and
never gate — a renamed span must not masquerade as a perf win.

**Forward compatibility:** newer producers put richer entries into run
records — ``repro-soak/1`` ingestion attaches histogram payloads, and
future metric kinds will add shapes this module has never seen.  Both
:func:`diff_records` and :func:`format_trend` therefore *skip* any
entry they don't recognize (a span without a numeric ``wall_seconds``,
a non-numeric counter/gauge, a cache entry without ``hit_rate``, an
unknown top-level section) instead of raising: an old CLI reading a
newer store must keep rendering and gating what it understands.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import localtime, strftime
from typing import Any, Dict, List, Optional

#: Delta classifications that make ``obs diff`` exit non-zero.
GATING = ("regression",)


@dataclass(frozen=True, slots=True)
class Thresholds:
    """The noise-tolerance knobs for :func:`diff_records`."""

    min_seconds: float = 0.05
    rel_tolerance: float = 0.25
    counter_tolerance: float = 0.10
    cache_tolerance: float = 0.05


@dataclass(frozen=True, slots=True)
class Delta:
    """One metric compared across two runs."""

    kind: str  # "span" | "counter" | "gauge" | "cache"
    name: str
    before: Optional[float]
    after: Optional[float]
    status: str  # "ok" | "regression" | "improvement" | "new" | "gone"
    reason: str

    @property
    def ratio(self) -> Optional[float]:
        if self.before and self.after is not None and self.before > 0:
            return self.after / self.before
        return None


def _span_delta(name: str, before: float, after: float, t: Thresholds) -> Delta:
    if after < t.min_seconds and before < t.min_seconds:
        return Delta("span", name, before, after, "ok", "below min-runtime floor")
    if before <= 0 and after >= t.min_seconds:
        return Delta(
            "span", name, before, after, "regression",
            f"wall ~0s -> {after:.3f}s (baseline did no measurable work)",
        )
    if before > 0 and after > before * (1 + t.rel_tolerance) and after >= t.min_seconds:
        return Delta(
            "span",
            name,
            before,
            after,
            "regression",
            f"wall {before:.3f}s -> {after:.3f}s "
            f"(+{(after / before - 1) * 100:.0f}% > {t.rel_tolerance * 100:.0f}% tolerance)",
        )
    if before > 0 and after < before * (1 - t.rel_tolerance):
        return Delta(
            "span",
            name,
            before,
            after,
            "improvement",
            f"wall {before:.3f}s -> {after:.3f}s",
        )
    return Delta("span", name, before, after, "ok", "within tolerance")


def _counter_delta(name: str, before: float, after: float, t: Thresholds) -> Delta:
    if before > 0 and after > before * (1 + t.counter_tolerance) + 1e-9:
        return Delta(
            "counter",
            name,
            before,
            after,
            "regression",
            f"{before:g} -> {after:g} "
            f"(+{(after / before - 1) * 100:.0f}% > {t.counter_tolerance * 100:.0f}% tolerance)",
        )
    if before == 0 and after > 0:
        return Delta("counter", name, before, after, "regression", f"0 -> {after:g}")
    if after < before * (1 - t.counter_tolerance) - 1e-9:
        return Delta(
            "counter", name, before, after, "improvement", f"{before:g} -> {after:g}"
        )
    return Delta("counter", name, before, after, "ok", "within tolerance")


def _cache_delta(name: str, before: float, after: float, t: Thresholds) -> Delta:
    drop = before - after
    if drop > t.cache_tolerance:
        return Delta(
            "cache",
            name,
            before,
            after,
            "regression",
            f"hit rate {before:.3f} -> {after:.3f} "
            f"(-{drop:.3f} > {t.cache_tolerance:.3f} absolute tolerance)",
        )
    if drop < -t.cache_tolerance:
        return Delta(
            "cache", name, before, after, "improvement",
            f"hit rate {before:.3f} -> {after:.3f}",
        )
    return Delta("cache", name, before, after, "ok", "within tolerance")


def _presence(kind: str, name: str, before, after) -> Delta:
    if before is None:
        return Delta(kind, name, None, after, "new", "not in the baseline run")
    return Delta(kind, name, before, None, "gone", "not in the new run")


def _number(value: Any) -> Optional[float]:
    """A plain number, or ``None`` for any shape this module predates."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _span_wall(entry: Any) -> Optional[float]:
    """A span entry's wall seconds, or ``None`` for an unknown kind."""
    if not isinstance(entry, dict):
        return None
    return _number(entry.get("wall_seconds"))


def _cache_rate(stats: Any) -> Optional[float]:
    """A cache entry's hit rate, or ``None`` for an unknown kind."""
    if not isinstance(stats, dict):
        return None
    return _number(stats.get("hit_rate"))


def diff_records(
    before: Dict[str, Any],
    after: Dict[str, Any],
    thresholds: Optional[Thresholds] = None,
) -> List[Delta]:
    """Compare two run records; returns one :class:`Delta` per metric.

    Gauges are informational only (no gating: a gauge's direction has no
    universal "worse").  Use :func:`regressions` to extract the gating
    subset; ``diff_records(r, r)`` is all-``ok`` by construction, which
    the test suite pins (self-vs-self must exit zero).
    """
    t = thresholds or Thresholds()
    deltas: List[Delta] = []

    # Sections that aren't dicts (or are missing) read as empty, and any
    # *entry* whose shape this module doesn't recognize — a span without
    # numeric wall_seconds, a histogram smuggled into a counter slot — is
    # skipped on both sides rather than raised on or mis-gated: an entry
    # present-but-unreadable must not classify as new/gone either, since
    # downgrade-then-upgrade would then flap every unknown metric.
    def section(record: Dict[str, Any], key: str) -> Dict[str, Any]:
        value = record.get(key)
        return value if isinstance(value, dict) else {}

    b_spans, a_spans = section(before, "spans"), section(after, "spans")
    for name in sorted(set(b_spans) | set(a_spans)):
        b_wall = _span_wall(b_spans[name]) if name in b_spans else None
        a_wall = _span_wall(a_spans[name]) if name in a_spans else None
        if (name in b_spans and b_wall is None) or (
            name in a_spans and a_wall is None
        ):
            continue  # unrecognized span kind
        if name not in b_spans or name not in a_spans:
            deltas.append(_presence("span", name, b_wall, a_wall))
            continue
        assert b_wall is not None and a_wall is not None
        deltas.append(_span_delta(name, b_wall, a_wall, t))

    b_counters, a_counters = section(before, "counters"), section(after, "counters")
    for name in sorted(set(b_counters) | set(a_counters)):
        b_val = _number(b_counters[name]) if name in b_counters else None
        a_val = _number(a_counters[name]) if name in a_counters else None
        if (name in b_counters and b_val is None) or (
            name in a_counters and a_val is None
        ):
            continue  # unrecognized counter kind
        if name not in b_counters or name not in a_counters:
            deltas.append(_presence("counter", name, b_val, a_val))
            continue
        assert b_val is not None and a_val is not None
        deltas.append(_counter_delta(name, b_val, a_val, t))

    b_gauges, a_gauges = section(before, "gauges"), section(after, "gauges")
    for name in sorted(set(b_gauges) | set(a_gauges)):
        b_val = _number(b_gauges[name]) if name in b_gauges else None
        a_val = _number(a_gauges[name]) if name in a_gauges else None
        if (name in b_gauges and b_val is None) or (
            name in a_gauges and a_val is None
        ):
            continue  # unrecognized gauge kind
        if name not in b_gauges or name not in a_gauges:
            deltas.append(_presence("gauge", name, b_val, a_val))
            continue
        deltas.append(
            Delta("gauge", name, b_val, a_val, "ok", "informational")
        )

    b_cache, a_cache = section(before, "cache"), section(after, "cache")
    for query in sorted(set(b_cache) | set(a_cache)):
        b_rate = _cache_rate(b_cache[query]) if query in b_cache else None
        a_rate = _cache_rate(a_cache[query]) if query in a_cache else None
        if (query in b_cache and b_rate is None) or (
            query in a_cache and a_rate is None
        ):
            continue  # unrecognized cache-entry kind
        if query not in b_cache or query not in a_cache:
            deltas.append(_presence("cache", f"{query}.hit_rate", b_rate, a_rate))
            continue
        assert b_rate is not None and a_rate is not None
        deltas.append(_cache_delta(f"{query}.hit_rate", b_rate, a_rate, t))
    return deltas


def regressions(deltas: List[Delta]) -> List[Delta]:
    """The gating subset of a diff (what makes ``obs diff`` exit 1)."""
    return [d for d in deltas if d.status in GATING]


def _describe_run(record: Dict[str, Any]) -> str:
    when = strftime("%Y-%m-%d %H:%M", localtime(record["created_unix"]))
    sha = (record.get("git_sha") or "")[:9]
    parts = [record["run_id"], when, record["command"]]
    if record.get("task"):
        parts.append(record["task"])
    if sha:
        parts.append(f"@{sha}")
    return "  ".join(parts)


def format_diff(
    before: Dict[str, Any],
    after: Dict[str, Any],
    deltas: List[Delta],
    show_ok: bool = False,
) -> str:
    """Render a diff as text: header, notable deltas, gating verdict."""
    lines = [
        f"baseline: {_describe_run(before)}",
        f"current:  {_describe_run(after)}",
        "",
    ]
    notable = [d for d in deltas if show_ok or d.status != "ok"]
    if not notable:
        lines.append(f"no notable deltas across {len(deltas)} metrics")
    for delta in notable:
        marker = {
            "regression": "REGRESSION",
            "improvement": "improved",
            "new": "new",
            "gone": "gone",
            "ok": "ok",
        }[delta.status]
        lines.append(f"  [{marker:>10}] {delta.kind} {delta.name}: {delta.reason}")
    bad = regressions(deltas)
    lines.append("")
    lines.append(
        f"verdict: {len(bad)} regression(s) across {len(deltas)} metrics"
        + ("" if bad else " — clean")
    )
    return "\n".join(lines)


def _metric_series(records: List[Dict[str, Any]]) -> Dict[str, List[Optional[float]]]:
    """``metric -> one value per run (None where absent)``, stable order."""
    series: Dict[str, List[Optional[float]]] = {}
    keys: List[str] = []

    def touch(key: str) -> List[Optional[float]]:
        if key not in series:
            series[key] = [None] * len(records)
            keys.append(key)
        return series[key]

    def section(record: Dict[str, Any], key: str) -> Dict[str, Any]:
        value = record.get(key)
        return value if isinstance(value, dict) else {}

    # Unrecognized entry shapes are skipped (left None for that run)
    # rather than raised on — see the module docstring on forward
    # compatibility with future record kinds.
    for i, record in enumerate(records):
        for name, entry in section(record, "spans").items():
            wall = _span_wall(entry)
            if wall is not None:
                touch(f"span {name}.wall_seconds")[i] = wall
        for name, value in section(record, "counters").items():
            num = _number(value)
            if num is not None:
                touch(f"counter {name}")[i] = num
        for name, value in section(record, "gauges").items():
            num = _number(value)
            if num is not None:
                touch(f"gauge {name}")[i] = num
        for query, stats in section(record, "cache").items():
            rate = _cache_rate(stats)
            if rate is not None:
                touch(f"cache {query}.hit_rate")[i] = rate
    return {key: series[key] for key in keys}


def _bar(value: float, maximum: float, width: int = 20) -> str:
    if maximum <= 0:
        return ""
    return "#" * max(1, round(width * value / maximum))


def format_trend(
    records: List[Dict[str, Any]],
    metric: Optional[str] = None,
    last: Optional[int] = 10,
    command: Optional[str] = None,
) -> str:
    """Per-metric history across the store's runs, newest runs last.

    ``metric`` filters by case-insensitive substring; ``command``
    restricts to one subcommand's runs (mixing ``decide`` and ``census``
    histories in one series would chart apples against oranges);
    ``last`` keeps the newest N runs per series (``None`` = all).
    """
    pool = [r for r in records if command is None or r["command"] == command]
    pool.sort(key=lambda r: r["created_unix"])
    if last is not None and last > 0:
        pool = pool[-last:]
    if not pool:
        return "telemetry store is empty (record runs with --trace/--store first)"
    lines = [f"{len(pool)} run(s):"]
    for record in pool:
        lines.append(f"  {_describe_run(record)}")
    series = _metric_series(pool)
    if metric:
        needle = metric.lower()
        series = {k: v for k, v in series.items() if needle in k.lower()}
        if not series:
            lines.append("")
            lines.append(f"no metric matches {metric!r}")
            return "\n".join(lines)
    for key, values in series.items():
        present = [v for v in values if v is not None]
        maximum = max(present) if present else 0.0
        lines.append("")
        lines.append(f"{key}:")
        for record, value in zip(pool, values):
            if value is None:
                lines.append(f"  {record['run_id']}           —")
                continue
            lines.append(
                f"  {record['run_id']}  {value:>12.6g}  {_bar(value, maximum)}"
            )
    return "\n".join(lines)


__all__ = [
    "Delta",
    "GATING",
    "Thresholds",
    "diff_records",
    "format_diff",
    "format_trend",
    "regressions",
]
