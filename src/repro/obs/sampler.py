"""Background resource sampling for long-running processes.

A soak run's central question — "does memory/keymap/cache growth
flatten out or climb forever?" — needs *time series*, not two
endpoints: a pair of before/after numbers cannot distinguish a warmup
transient from a leak.  :class:`ResourceSampler` runs a daemon thread
that periodically reads a set of named sources (RSS, cache entry
counts, keymap size — any zero-arg callable returning a number) into a
bounded in-memory ring, exported as ``{"samples": [{"t", "values"}]}``
time series inside ``repro-metrics/1`` snapshots.

:func:`fit_slope` turns one series into a per-second growth rate by
ordinary least squares — the statistic the soak harness gates on.  A
least-squares slope over the post-warmup window is deliberately crude
but robust: it ignores sawtooth allocator noise that a max-minus-min
estimate would mistake for growth.

Everything here is stdlib-only and injectable (clock, sources,
interval) so tests drive :meth:`ResourceSampler.sample_once`
deterministically without sleeping.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ResourceSampler",
    "fit_slope",
    "read_rss_bytes",
    "series_slopes",
]


def read_rss_bytes() -> float:
    """Resident set size in bytes.

    Prefers ``/proc/self/statm`` (instantaneous, Linux); falls back to
    ``resource.getrusage`` peak RSS elsewhere.  A peak is a worse
    leak-detector than an instantaneous read (it never decreases), but
    its slope still bounds growth from above, so the gate stays sound.
    """
    try:
        with open("/proc/self/statm") as fh:
            resident_pages = int(fh.read().split()[1])
        return float(resident_pages * os.sysconf("SC_PAGE_SIZE"))
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return float(peak * 1024 if os.uname().sysname == "Linux" else peak)
    except Exception:
        return 0.0


class ResourceSampler:
    """Periodic reader of named numeric sources into a bounded ring.

    ``sources`` maps series names to zero-arg callables.  A source that
    raises contributes nothing to that sample (the others still record)
    — a transiently broken gauge must not kill the sampler thread.
    """

    def __init__(
        self,
        sources: Dict[str, Callable[[], float]],
        interval: float = 1.0,
        capacity: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._sources = dict(sources)
        self.interval = float(interval)
        self._clock = clock
        self._started = clock()
        self._lock = threading.Lock()
        self._ring: Deque[Tuple[float, Dict[str, float]]] = deque(maxlen=capacity)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling ----------------------------------------------------------

    def sample_once(self, at: Optional[float] = None) -> Dict[str, float]:
        """Read every source now; returns the recorded values.

        The deterministic entry point: tests call this directly with an
        explicit ``at`` timestamp instead of running the thread.
        """
        values: Dict[str, float] = {}
        for name, fn in self._sources.items():
            try:
                values[name] = float(fn())
            except Exception:
                continue
        t = (self._clock() if at is None else at) - self._started
        with self._lock:
            self._ring.append((t, values))
        return values

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self.sample_once()  # t=0 anchor so slopes have a left endpoint
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(2.0, self.interval * 2))
        self._thread = None
        self.sample_once()  # right endpoint

    def __enter__(self) -> "ResourceSampler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- export ------------------------------------------------------------

    def series(self) -> Dict[str, Any]:
        """The ring as a ``repro-metrics/1`` ``resources`` section."""
        with self._lock:
            samples = [{"t": t, "values": dict(values)} for t, values in self._ring]
        return {
            "interval_seconds": self.interval,
            "names": sorted(self._sources),
            "samples": samples,
        }

    def points(self, name: str) -> List[Tuple[float, float]]:
        """One series as ``(t, value)`` pairs (samples missing it skip)."""
        with self._lock:
            return [
                (t, values[name]) for t, values in self._ring if name in values
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


def fit_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Ordinary least-squares slope of ``(t, value)`` pairs, per second.

    Returns 0.0 for fewer than two points or a degenerate (zero
    time-variance) series — "no evidence of growth" is the right
    reading of "no data", since the soak gate treats a positive slope
    as the failure signal.
    """
    n = len(points)
    if n < 2:
        return 0.0
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    var_t = sum((t - mean_t) ** 2 for t, _ in points)
    if var_t <= 0.0:
        return 0.0
    cov = sum((t - mean_t) * (v - mean_v) for t, v in points)
    return cov / var_t


def series_slopes(
    resources: Dict[str, Any], warmup_fraction: float = 0.25
) -> Dict[str, float]:
    """Per-second growth slopes for every series in one export.

    The first ``warmup_fraction`` of the observed time span is
    excluded: caches filling and allocators reserving arenas during
    warmup is expected, steady-state growth is the leak signal.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    samples = resources.get("samples") or []
    if not samples:
        return {}
    t_min = min(s["t"] for s in samples)
    t_max = max(s["t"] for s in samples)
    cutoff = t_min + (t_max - t_min) * warmup_fraction
    by_name: Dict[str, List[Tuple[float, float]]] = {}
    for sample in samples:
        if sample["t"] < cutoff:
            continue
        for name, value in sample.get("values", {}).items():
            by_name.setdefault(name, []).append((sample["t"], float(value)))
    return {name: fit_slope(points) for name, points in sorted(by_name.items())}
