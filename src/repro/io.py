"""JSON serialization of tasks, complexes and verdicts.

Research artifacts want to be saved: a task someone analyzed, the split
form the pipeline produced, the verdict with its witness.  This module
provides a faithful round-trip encoding for everything built from the
library's hashable value vocabulary: JSON scalars, tuples, frozensets,
:class:`Simplex` views, :class:`SplitValue` branches and
:class:`Barycenter` markers — i.e. every value the pipelines themselves
generate.

Format: a tagged-JSON scheme; every non-scalar is ``{"$": tag, …}``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from .splitting.deformation import SplitValue
from .tasks.task import Task
from .topology.carrier import CarrierMap
from .topology.chromatic import ChromaticComplex
from .topology.complexes import SimplicialComplex
from .topology.simplex import Simplex, Vertex
from .topology.subdivision import Barycenter


class SerializationError(ValueError):
    """Raised when a value falls outside the supported vocabulary."""


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode a vertex value (or vertex) into tagged JSON."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Vertex):
        return {"$": "vertex", "color": value.color, "value": encode_value(value.value)}
    if isinstance(value, Simplex):
        return {"$": "simplex", "vertices": [encode_value(v) for v in value.sorted_vertices()]}
    if isinstance(value, SplitValue):
        return {"$": "split", "base": encode_value(value.base), "branch": value.branch}
    if isinstance(value, Barycenter):
        return {"$": "barycenter", "simplex": encode_value(value.simplex)}
    if isinstance(value, tuple):
        return {"$": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"$": "frozenset", "items": sorted((encode_value(v) for v in value), key=json.dumps)}
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}: {value!r}")


def decode_value(data: Any) -> Any:
    """Invert :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, dict) and "$" in data:
        tag = data["$"]
        if tag == "vertex":
            return Vertex(data["color"], decode_value(data["value"]))
        if tag == "simplex":
            return Simplex(decode_value(v) for v in data["vertices"])
        if tag == "split":
            return SplitValue(decode_value(data["base"]), data["branch"])
        if tag == "barycenter":
            return Barycenter(decode_value(data["simplex"]))
        if tag == "tuple":
            return tuple(decode_value(v) for v in data["items"])
        if tag == "frozenset":
            return frozenset(decode_value(v) for v in data["items"])
        raise SerializationError(f"unknown tag {tag!r}")
    raise SerializationError(f"cannot deserialize {data!r}")


# ---------------------------------------------------------------------------
# complexes and tasks
# ---------------------------------------------------------------------------


def complex_to_json(k: SimplicialComplex) -> Dict:
    """Encode a complex by its facets."""
    return {
        "$": "complex",
        "chromatic": isinstance(k, ChromaticComplex),
        "name": k.name,
        "facets": [encode_value(f) for f in k.facets],
    }


def complex_from_json(data: Dict) -> SimplicialComplex:
    if data.get("$") != "complex":
        raise SerializationError("not a serialized complex")
    facets = [decode_value(f) for f in data["facets"]]
    cls = ChromaticComplex if data.get("chromatic") else SimplicialComplex
    return cls(facets, name=data.get("name"))


def task_to_json(task: Task) -> Dict:
    """Encode a task: complexes plus Δ's explicit images."""
    return {
        "$": "task",
        "name": task.name,
        "input": complex_to_json(task.input_complex),
        "output": complex_to_json(task.output_complex),
        "delta": [
            {
                "simplex": encode_value(s),
                "facets": [encode_value(f) for f in img.facets],
            }
            for s, img in task.delta.items()
        ],
    }


def task_from_json(data: Dict, check: bool = True) -> Task:
    if data.get("$") != "task":
        raise SerializationError("not a serialized task")
    inputs = complex_from_json(data["input"])
    outputs = complex_from_json(data["output"])
    images = {}
    for entry in data["delta"]:
        s = decode_value(entry["simplex"])
        images[s] = SimplicialComplex(decode_value(f) for f in entry["facets"])
    delta = CarrierMap(inputs, outputs, images, check=False)
    return Task(inputs, outputs, delta, name=data.get("name"), check=check)


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------


def save_task(task: Task, fp: Union[str, IO]) -> None:
    """Write a task as JSON to a path or file object."""
    payload = task_to_json(task)
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
    else:
        json.dump(payload, fp, indent=2, sort_keys=True)


def load_task(fp: Union[str, IO], check: bool = True) -> Task:
    """Read a task from a path or file object."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    else:
        payload = json.load(fp)
    return task_from_json(payload, check=check)
