"""Unit tests for the live metrics primitives (``repro.obs.metrics``).

Pins the properties the service wiring and the soak harness lean on:
histograms merge losslessly bucket-by-bucket, quantile estimates are
conservative (never understate), snapshots validate as
``repro-metrics/1``, and the Prometheus text rendering round-trips
through the bundled parser — the "parses as Prometheus text format"
acceptance gate.
"""

import json
import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    INF_LABEL,
    N_BUCKETS,
    SCHEMA,
    LatencyHistogram,
    MetricsRegistry,
    RateMeter,
    bucket_index,
    build_metrics,
    metrics_from_json,
    parse_prometheus_text,
    prometheus_text,
    quantile_from_snapshot,
    validate_metrics,
)


class TestBucketing:
    def test_bounds_are_geometric_and_ascending(self):
        assert len(BUCKET_BOUNDS) == N_BUCKETS
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi == pytest.approx(lo * 2.0)

    def test_zero_and_negative_land_in_the_first_bucket(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-1.0) == 0

    def test_exact_bound_lands_in_that_bucket(self):
        # bisect_left: an observation equal to a bound is <= that bound
        assert bucket_index(BUCKET_BOUNDS[3]) == 3

    def test_huge_values_overflow(self):
        assert bucket_index(1e9) == N_BUCKETS


class TestLatencyHistogram:
    def test_record_updates_count_sum_min_max(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        hist.record(0.004)
        assert hist.count == 2
        assert hist.sum == pytest.approx(0.005)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.004)

    def test_snapshot_buckets_sum_to_count(self):
        hist = LatencyHistogram()
        for value in (1e-5, 1e-3, 1e-3, 0.1, 1e6):
            hist.record(value)
        snap = hist.snapshot()
        assert sum(n for _, n in snap["buckets"]) == snap["count"] == 5
        assert snap["buckets"][-1][0] == INF_LABEL  # the 1e6 overflow

    def test_empty_snapshot_is_well_formed(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {
            "count": 0,
            "sum": 0.0,
            "min": 0.0,
            "max": 0.0,
            "buckets": [],
        }

    def test_merge_is_lossless_bucket_addition(self):
        a, b, direct = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        for value in (0.001, 0.002, 0.5):
            a.record(value)
            direct.record(value)
        for value in (0.004, 1e7):
            b.record(value)
            direct.record(value)
        a.merge(b.snapshot())
        merged, expected = a.snapshot(), direct.snapshot()
        assert merged["sum"] == pytest.approx(expected["sum"])
        del merged["sum"], expected["sum"]
        assert merged == expected  # buckets/count/min/max are exact

    def test_quantile_is_conservative(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(0.001)
        hist.record(0.256)
        p50, p99 = hist.quantile(0.50), hist.quantile(0.99)
        assert p50 >= 0.001  # never understates
        assert p50 <= 0.002  # ...but stays within one bucket
        assert p99 >= 0.001
        assert hist.quantile(1.0) >= 0.256

    def test_quantile_of_overflow_returns_observed_max(self):
        hist = LatencyHistogram()
        hist.record(1e6)
        assert hist.quantile(0.99) == pytest.approx(1e6)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_quantile_of_empty_is_zero(self):
        assert LatencyHistogram().quantile(0.99) == 0.0

    def test_concurrent_recording_drops_nothing(self):
        hist = LatencyHistogram()

        def pound():
            for _ in range(1000):
                hist.record(0.001)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap["count"] == 4000
        assert sum(n for _, n in snap["buckets"]) == 4000

    def test_quantile_from_snapshot_matches_live_quantile(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.1):
            hist.record(value)
        snap = hist.snapshot()
        for q in (0.5, 0.9, 0.99):
            assert quantile_from_snapshot(snap, q) == pytest.approx(
                hist.quantile(q)
            )
        assert quantile_from_snapshot({"count": 0, "buckets": []}, 0.5) == 0.0


class TestRateMeter:
    def test_rate_over_injected_clock(self):
        now = [100.0]
        meter = RateMeter(window=10.0, clock=lambda: now[0])
        for _ in range(20):
            meter.record()
        now[0] = 105.0
        # 20 events over a 5s lifetime (< window) -> 4/s
        assert meter.rate() == pytest.approx(4.0)
        assert meter.count == 20

    def test_events_age_out_of_the_window(self):
        now = [100.0]
        meter = RateMeter(window=10.0, clock=lambda: now[0])
        meter.record(5)
        now[0] = 200.0  # far beyond the window
        assert meter.rate() == 0.0
        assert meter.count == 5  # the lifetime total is monotonic

    def test_snapshot_shape(self):
        snap = RateMeter(window=30.0).snapshot()
        assert set(snap) == {"count", "rate_per_s", "window_seconds"}
        assert snap["window_seconds"] == 30.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            RateMeter(window=0.0)


class TestMetricsRegistry:
    def test_same_name_and_labels_share_one_instrument(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat", op="decide") is reg.histogram(
            "lat", op="decide"
        )
        assert reg.histogram("lat", op="decide") is not reg.histogram(
            "lat", op="verify"
        )

    def test_build_validates_and_carries_everything(self):
        reg = MetricsRegistry()
        reg.histogram("latency", op="decide").record(0.01)
        reg.meter("requests").record()
        reg.counter_add("responses", status="200")
        reg.gauge_fn("uptime", lambda: 12.5)
        payload = build_metrics(reg)
        assert validate_metrics(payload) == []
        assert payload["schema"] == SCHEMA
        assert payload["histograms"][0]["labels"] == {"op": "decide"}
        assert payload["gauges"][0] == {
            "name": "uptime",
            "labels": {},
            "value": 12.5,
        }

    def test_broken_gauge_never_breaks_the_scrape(self):
        reg = MetricsRegistry()
        reg.gauge_fn("ok", lambda: 1.0)
        reg.gauge_fn("broken", lambda: 1 / 0)
        payload = reg.build()
        assert validate_metrics(payload) == []
        assert [g["name"] for g in payload["gauges"]] == ["ok"]

    def test_resources_ride_in_the_snapshot(self):
        reg = MetricsRegistry()
        resources = {"samples": [{"t": 0.0, "values": {"rss_bytes": 1.0}}]}
        payload = reg.build(resources=resources)
        assert validate_metrics(payload) == []
        assert payload["resources"] == resources


class TestValidateMetrics:
    def _minimal(self):
        return build_metrics(MetricsRegistry())

    def test_rejects_non_object(self):
        assert validate_metrics([]) != []

    def test_rejects_wrong_schema(self):
        bad = dict(self._minimal(), schema="repro-metrics/0")
        assert any("schema" in p for p in validate_metrics(bad))

    def test_rejects_bucket_count_mismatch(self):
        payload = self._minimal()
        payload["histograms"] = [
            {
                "name": "h",
                "labels": {},
                "count": 3,
                "sum": 1.0,
                "buckets": [[0.001, 1]],  # sums to 1, count says 3
            }
        ]
        assert any("bucket counts" in p for p in validate_metrics(payload))

    def test_rejects_malformed_bucket_pair(self):
        payload = self._minimal()
        payload["histograms"] = [
            {
                "name": "h",
                "labels": {},
                "count": 0,
                "sum": 0.0,
                "buckets": [["what", "no"]],
            }
        ]
        assert any("buckets[0]" in p for p in validate_metrics(payload))


class TestPrometheusExposition:
    def _payload(self):
        reg = MetricsRegistry()
        hist = reg.histogram("request_latency_seconds", op="decide")
        for value in (0.001, 0.002, 0.5, 1e6):
            hist.record(value)
        reg.meter("requests").record(3)
        reg.counter_add("http_responses", 7, status="200")
        reg.gauge_fn("uptime_seconds", lambda: 42.0)
        return reg.build(
            resources={"samples": [{"t": 1.0, "values": {"rss_bytes": 1024.0}}]}
        )

    def test_text_parses_and_buckets_cumulate(self):
        payload = self._payload()
        text = prometheus_text(payload)
        samples = parse_prometheus_text(text)
        count_key = 'repro_request_latency_seconds_count{op="decide"}'
        inf_key = 'repro_request_latency_seconds_bucket{le="+Inf",op="decide"}'
        assert samples[count_key] == 4.0
        assert samples[inf_key] == 4.0  # the trailing bucket is cumulative
        assert samples["repro_requests_total"] == 3.0
        assert samples['repro_http_responses_total{status="200"}'] == 7.0
        assert samples["repro_uptime_seconds"] == 42.0
        assert samples["repro_resource_rss_bytes"] == 1024.0

    def test_bucket_series_is_monotone(self):
        samples = parse_prometheus_text(prometheus_text(self._payload()))
        buckets = [
            value
            for key, value in samples.items()
            if key.startswith("repro_request_latency_seconds_bucket")
        ]
        assert buckets == sorted(buckets)

    def test_type_headers_precede_samples(self):
        text = prometheus_text(self._payload())
        lines = text.splitlines()
        first_histogram_line = next(
            i for i, l in enumerate(lines) if "request_latency" in l
        )
        assert lines[first_histogram_line].startswith("# TYPE")

    def test_json_variant_round_trips(self):
        payload = self._payload()
        recovered = metrics_from_json(json.dumps(payload))
        assert prometheus_text(recovered) == prometheus_text(payload)

    def test_metric_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter_add("service.op/decide-now")
        text = prometheus_text(reg.build())
        assert "repro_service_op_decide_now_total" in text
        parse_prometheus_text(text)  # and the result is legal

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter_add("c", path='we"ird\\label')
        samples = parse_prometheus_text(prometheus_text(reg.build()))
        assert len(samples) == 1

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("justonetoken\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("bad name{} 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('unterminated{le="0.1 1\n')

    def test_parser_skips_comments_and_blanks(self):
        assert parse_prometheus_text("# HELP x\n\nx_total 1\n") == {
            "x_total": 1.0
        }

    def test_metrics_from_json_raises_on_invalid(self):
        with pytest.raises(ValueError):
            metrics_from_json('{"schema": "nope"}')
