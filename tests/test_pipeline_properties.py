"""Property-based tests over random tasks for the full pipeline.

Hypothesis drives seeds into the random-task generators and checks the
pipeline invariants the paper's theorems promise — on tasks nobody
hand-picked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import task_from_json, task_to_json
from repro.solvability import decide_solvability
from repro.splitting import is_link_connected_task, link_connected_form
from repro.tasks.canonical import canonicalize, is_canonical
from repro.tasks.zoo import random_single_input_task, random_sparse_task

seeds = st.integers(min_value=0, max_value=5_000)


class TestCanonicalizationProperties:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_canonical_form_invariants(self, seed):
        task = random_single_input_task(seed)
        cf = canonicalize(task)
        star = cf.task
        star.validate()
        assert is_canonical(star)
        assert star.input_complex == task.input_complex
        originals = set(task.output_complex.vertices)
        for w in star.output_complex.vertices:
            assert cf.project_vertex(w) in originals

    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_facet_counts_multiply(self, seed):
        task = random_single_input_task(seed)
        star = canonicalize(task).task
        expected = sum(
            len(task.delta(sigma).facets) for sigma in task.input_complex.facets
        )
        assert len(star.output_complex.facets) == expected


class TestSplittingProperties:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_pipeline_invariants(self, seed):
        task = random_sparse_task(seed)
        res = link_connected_form(task)
        if res.task.delta.is_strict():
            res.task.validate()
        else:
            # legitimate non-strict outcome: monotonization emptied an
            # image, which certifies unsolvability (see DESIGN.md); the
            # remaining carrier-map structure must still be sound
            from repro.solvability import empty_image_obstruction

            assert res.task.delta.is_monotonic()
            assert empty_image_obstruction(res.task) is not None
        assert is_link_connected_task(res.task)
        assert res.task.input_complex == task.input_complex
        originals = set(task.output_complex.vertices)
        for v in res.task.output_complex.vertices:
            assert res.project_vertex(v) in originals

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_pipeline_deterministic(self, seed):
        task = random_sparse_task(seed)
        a = link_connected_form(task)
        b = link_connected_form(task)
        assert a.n_splits == b.n_splits
        assert a.task == b.task

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_facet_count_never_shrinks(self, seed):
        # splitting replaces facets one-for-one within σ and duplicates
        # across other facets: the output never loses facets
        task = random_sparse_task(seed)
        res = link_connected_form(task)
        assert len(res.task.output_complex.facets) >= len(
            res.canonical.task.output_complex.facets
        )


class TestDecisionProperties:
    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_verdict_deterministic(self, seed):
        task = random_single_input_task(seed)
        v1 = decide_solvability(task, max_rounds=1)
        v2 = decide_solvability(task, max_rounds=1)
        assert v1.status == v2.status

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_witnesses_verified(self, seed):
        from repro.solvability import Status, verify_map

        task = random_single_input_task(seed)
        verdict = decide_solvability(task, max_rounds=1)
        if verdict.status is Status.SOLVABLE and verdict.witness_map is not None:
            assert verify_map(
                verdict.witness_subdivision,
                verdict.transform.task.delta,
                verdict.witness_map,
            )


class TestSerializationProperties:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_random_task_roundtrip(self, seed):
        task = random_single_input_task(seed)
        assert task_from_json(task_to_json(task)) == task

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_split_task_roundtrip(self, seed):
        # check=False: the pipeline may legitimately output non-strict
        # tasks (an empty image is itself an unsolvability certificate)
        task = random_sparse_task(seed)
        split = link_connected_form(task).task
        assert task_from_json(task_to_json(split), check=False) == split
