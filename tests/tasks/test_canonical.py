"""Unit tests for canonical tasks (Section 3)."""

import pytest

from repro.tasks.canonical import (
    canonicalize,
    canonicalize_if_needed,
    chromatic_product_simplex,
    is_canonical,
    product_vertex,
    split_product_vertex,
    unique_vertex_preimage,
    vertex_preimages,
)
from repro.tasks.task import TaskError
from repro.topology.simplex import Simplex, Vertex, chrom


class TestProductConstruction:
    def test_product_simplex(self):
        x = chrom((0, "a"), (1, "b"))
        y = chrom((0, "p"), (1, "q"))
        prod = chromatic_product_simplex(x, y)
        assert prod == Simplex([Vertex(0, ("a", "p")), Vertex(1, ("b", "q"))])

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            chromatic_product_simplex(chrom((0, "a")), chrom((1, "b")))

    def test_product_vertex_roundtrip(self):
        u, v = Vertex(2, "in"), Vertex(2, "out")
        w = product_vertex(u, v)
        assert split_product_vertex(w) == (u, v)

    def test_product_vertex_color_checked(self):
        with pytest.raises(ValueError):
            product_vertex(Vertex(0, "a"), Vertex(1, "b"))


class TestIsCanonical:
    def test_hourglass_already_canonical(self, hourglass):
        assert is_canonical(hourglass)

    def test_pinwheel_already_canonical(self, pinwheel):
        assert is_canonical(pinwheel)

    def test_figure3_not_canonical(self, figure3):
        assert not is_canonical(figure3)

    def test_majority_not_canonical(self, majority):
        assert not is_canonical(majority)

    def test_canonicalized_is_canonical(self, figure3, majority):
        assert is_canonical(canonicalize(figure3).task)
        assert is_canonical(canonicalize(majority).task)


class TestCanonicalize:
    def test_input_complex_unchanged(self, figure3):
        cf = canonicalize(figure3)
        assert cf.task.input_complex == figure3.input_complex

    def test_output_vertices_are_products(self, figure3):
        cf = canonicalize(figure3)
        for w in cf.task.output_complex.vertices:
            x, y = split_product_vertex(w)
            assert x in set(figure3.input_complex.vertices)
            assert y in set(figure3.output_complex.vertices)

    def test_shared_facet_duplicated(self, figure3):
        # Figure 4: the green facet appears once per input facet in O*
        cf = canonicalize(figure3)
        green_copies = [
            f
            for f in cf.task.output_complex.facets
            if {split_product_vertex(w)[1].value for w in f.vertices}
            == {"g0", "g1", "g2"}
        ]
        assert len(green_copies) == 2

    def test_canonical_task_is_valid(self, figure3):
        cf = canonicalize(figure3)
        cf.task.validate()

    def test_delta_star_rigid_chromatic(self, majority):
        cf = canonicalize(majority)
        assert cf.task.delta.is_rigid()
        assert cf.task.delta.is_chromatic()
        assert cf.task.delta.is_monotonic()

    def test_projection_is_chromatic_simplicial(self, figure3):
        cf = canonicalize(figure3)
        cf.projection.validate()
        assert cf.projection.is_chromatic()

    def test_projection_inverts_lift(self, figure3):
        cf = canonicalize(figure3)
        x = figure3.input_complex.vertices[0]
        y = figure3.delta(Simplex([x])).vertices[0]
        lifted = cf.lift_decision(x, y)
        assert cf.project_vertex(lifted) == y

    def test_facet_count(self, figure3):
        # one O* facet per (input facet, allowed output facet) pair
        cf = canonicalize(figure3)
        expected = sum(
            len(figure3.delta(sigma).facets)
            for sigma in figure3.input_complex.facets
        )
        assert len(cf.task.output_complex.facets) == expected


class TestPreimages:
    def test_unique_preimage_in_canonical(self, figure3):
        cf = canonicalize(figure3)
        for w in cf.task.output_complex.vertices:
            x = unique_vertex_preimage(cf.task, w)
            assert x == cf.preimage_input_vertex(w)
            assert x in set(cf.task.input_complex.vertices)

    def test_ambiguous_preimage_raises(self, figure3):
        # the green facet's vertices have two preimages in the raw task
        shared = [
            w
            for w in figure3.output_complex.vertices
            if len(vertex_preimages(figure3, w)) > 1
        ]
        assert shared
        with pytest.raises(TaskError):
            unique_vertex_preimage(figure3, shared[0])

    def test_hourglass_preimages(self, hourglass):
        from repro.tasks.zoo import hourglass_articulation_vertex

        y = hourglass_articulation_vertex()
        x = unique_vertex_preimage(hourglass, y)
        assert x.color == 0


class TestCanonicalizeIfNeeded:
    def test_reuses_canonical_task(self, hourglass):
        cf = canonicalize_if_needed(hourglass)
        assert cf.task is hourglass
        w = hourglass.output_complex.vertices[0]
        assert cf.project_vertex(w) == w

    def test_transforms_non_canonical(self, figure3):
        cf = canonicalize_if_needed(figure3)
        assert cf.task is not figure3
        assert is_canonical(cf.task)


class TestSolvabilityEquivalence:
    """Theorem 3.1: T solvable iff T* solvable (checked by the decider)."""

    @pytest.mark.parametrize("seed", [3, 11, 19])
    def test_random_tasks(self, seed):
        from repro.solvability import decide_solvability
        from repro.tasks.zoo import random_single_input_task

        task = random_single_input_task(seed)
        star = canonicalize(task).task
        v1 = decide_solvability(task, max_rounds=1)
        v2 = decide_solvability(star, max_rounds=1)
        if v1.solvable is not None and v2.solvable is not None:
            assert v1.solvable == v2.solvable

    def test_majority(self, majority):
        from repro.solvability import decide_solvability

        star = canonicalize(majority).task
        assert decide_solvability(star, max_rounds=1).solvable is False


class TestIsoCanonicalText:
    """`iso_canonical_text` must equate exactly the renaming-isomorphic tasks."""

    @staticmethod
    def _renamed(task, color_maps):
        """The same task with output values renamed per color."""
        from repro.tasks.task import Task
        from repro.topology.carrier import CarrierMap
        from repro.topology.chromatic import ChromaticComplex
        from repro.topology.complexes import SimplicialComplex

        def rename_vertex(v):
            return Vertex(v.color, color_maps[v.color].get(v.value, v.value))

        def rename_complex(k, cls=SimplicialComplex):
            return cls(
                Simplex(rename_vertex(v) for v in f.vertices) for f in k.facets
            )

        outputs = rename_complex(task.output_complex, ChromaticComplex)
        images = {
            tau: rename_complex(img) for tau, img in task.delta.items()
        }
        delta = CarrierMap(task.input_complex, outputs, images, check=False)
        return Task(task.input_complex, outputs, delta, name=task.name)

    def test_value_renaming_is_invisible(self):
        from repro.tasks.canonical import iso_canonical_text
        from repro.tasks.zoo.random_tasks import random_single_input_task

        task = random_single_input_task(3)
        values = sorted(
            {v.value for v in task.output_complex.vertices}, key=repr
        )
        rolled = {a: b for a, b in zip(values, values[1:] + values[:1])}
        renamed = self._renamed(task, {0: rolled, 1: rolled, 2: rolled})
        assert renamed.output_complex != task.output_complex  # really renamed
        assert iso_canonical_text(renamed) == iso_canonical_text(task)

    def test_distinct_tasks_stay_distinct(self):
        from repro.tasks.canonical import iso_canonical_text
        from repro.tasks.zoo.random_tasks import random_single_input_task

        texts = {iso_canonical_text(random_single_input_task(s)) for s in range(12)}
        assert len(texts) > 1

    def test_cap_falls_back_to_exact_text(self):
        from repro.tasks.canonical import iso_canonical_text, task_text
        from repro.tasks.zoo.random_tasks import random_single_input_task

        task = random_single_input_task(3)
        text = iso_canonical_text(task, cap=0)
        assert text == "exact:" + task_text(task)
        # the exact fallback never merges distinct tasks
        assert text != iso_canonical_text(random_single_input_task(5), cap=0)

    def test_exact_and_iso_domains_never_collide(self):
        from repro.tasks.canonical import iso_canonical_text
        from repro.tasks.zoo.random_tasks import random_single_input_task

        task = random_single_input_task(3)
        assert iso_canonical_text(task).startswith("iso:")
        assert iso_canonical_text(task, cap=0).startswith("exact:")
