"""Unit tests for sequential task composition."""

import pytest

from repro.solvability import Status, decide_solvability
from repro.tasks.compose import (
    composable,
    compose_protocol_factories,
    sequential_composition,
)
from repro.tasks.task import TaskError
from repro.tasks.zoo import identity_task, set_agreement_task


@pytest.fixture
def identity():
    return identity_task(3, values=(0, 1))


@pytest.fixture
def identity_pair(identity):
    # identity's outputs are literally its inputs: composes with itself
    return identity, identity


class TestComposability:
    def test_identity_self_composable(self, identity):
        assert composable(identity, identity)

    def test_set_agreement_into_identity(self):
        # 3-set agreement over {0,1,2} outputs any triple over 0..2,
        # which identity over (0,1,2) accepts as input
        first = set_agreement_task(3, 3)
        second = identity_task(3, values=(0, 1, 2))
        assert composable(first, second)

    def test_incompatible_rejected(self, identity):
        other = identity_task(3, values=("a", "b"))
        assert not composable(identity, other)
        with pytest.raises(TaskError, match="compose"):
            sequential_composition(identity, other)


class TestComposedTask:
    def test_identity_is_neutral(self, identity):
        composed = sequential_composition(identity, identity)
        assert composed.input_complex == identity.input_complex
        for s in identity.input_complex.simplices():
            assert composed.delta(s) == identity.delta(s)

    def test_composition_validates(self):
        first = set_agreement_task(3, 3)
        second = identity_task(3, values=(0, 1, 2))
        composed = sequential_composition(first, second)
        composed.validate()

    def test_composed_delta_is_union(self):
        first = set_agreement_task(3, 3)
        second = set_agreement_task(3, 2, values=(0, 1, 2))
        composed = sequential_composition(first, second)
        sigma = first.input_complex.facets[0]
        # composing with 2-set agreement: at most two distinct values
        for f in composed.delta(sigma).facets:
            assert len({v.value for v in f.vertices}) <= 2

    def test_both_solvable_implies_composition_solvable(self):
        first = identity_task(3, values=(0, 1))
        second = identity_task(3, values=(0, 1))
        composed = sequential_composition(first, second)
        assert decide_solvability(composed, max_rounds=1).solvable is True

    def test_composition_with_unsolvable_second_factor(self):
        # identity ; 2-set-agreement == 2-set agreement: still unsolvable
        first = identity_task(3, values=(0, 1, 2))
        second = set_agreement_task(3, 2)
        composed = sequential_composition(first, second)
        verdict = decide_solvability(composed, max_rounds=0)
        assert verdict.status is Status.UNSOLVABLE


class TestComposedProtocols:
    def test_identity_then_identity_runs(self, identity):
        from repro import synthesize_protocol
        from repro.runtime import validate_protocol

        protocol = synthesize_protocol(identity)
        composed_task = sequential_composition(identity, identity)
        build = compose_protocol_factories(protocol.factories, protocol.factories)
        report = validate_protocol(
            composed_task, build, participation="facets", random_runs=4
        )
        assert report.ok, report.violations[:2]

    def test_stage_namespaces_do_not_collide(self):
        from repro import synthesize_protocol
        from repro.runtime import validate_protocol
        from repro.tasks.zoo import set_agreement_task

        first = set_agreement_task(3, 3)
        second = identity_task(3, values=(0, 1, 2))
        p1 = synthesize_protocol(first, prefer_direct=False)  # uses Figure 7
        p2 = synthesize_protocol(second)
        composed_task = sequential_composition(first, second)
        build = compose_protocol_factories(p1.factories, p2.factories)
        report = validate_protocol(
            composed_task, build, participation="facets", random_runs=2
        )
        assert report.ok, report.violations[:2]
